"""E7 — k and m do not significantly affect the confidence distance.

Paper Section V.B: "values for k and m have not had a significant
impact on the effectiveness of the proposed verification process which
is characterized by the confidence distance".  This sweep varies k and
m (resizing n1/n2 accordingly) and reports the variance-distinguisher
confidence distance.
"""

import pytest

from repro.core.process import ProcessParameters
from repro.experiments.runner import CampaignConfig, run_campaign

#: Sweep points: (k, m) with alpha = 10 throughout.
K_SWEEP = (25, 50, 100)
M_SWEEP = (16, 20, 32)


def campaign_for(k, m, seed=42):
    parameters = ProcessParameters(k=k, m=m, n1=8 * k, n2=10 * k * m)
    config = CampaignConfig(
        parameters=parameters, measurement_seed=seed, analysis_seed=seed + 1
    )
    return run_campaign(config)


@pytest.fixture(scope="module")
def k_outcomes():
    return {k: campaign_for(k, 20) for k in K_SWEEP}


@pytest.fixture(scope="module")
def m_outcomes():
    return {m: campaign_for(50, m) for m in M_SWEEP}


def test_bench_campaign_k25(benchmark):
    outcome = benchmark.pedantic(
        campaign_for, args=(25, 20), iterations=1, rounds=1
    )
    assert outcome.accuracy("lower-variance") == 1.0


def test_k_sweep(benchmark, k_outcomes, capsys):
    benchmark.pedantic(lambda: list(k_outcomes), rounds=1, iterations=1)
    print("\n=== E7: k sweep (m = 20, alpha = 10) ===")
    for k, outcome in k_outcomes.items():
        deltas = outcome.confidence_distances("lower-variance")
        print(
            f"k={k:>4}: var-acc={outcome.accuracy('lower-variance'):.2f} "
            f"Delta_v per row: "
            + "  ".join(f"{ref}={d:5.1f}%" for ref, d in deltas.items())
        )
        # Identification works at every k.
        assert outcome.accuracy("lower-variance") == 1.0
        assert outcome.accuracy("higher-mean") == 1.0


def test_m_sweep(benchmark, m_outcomes, capsys):
    benchmark.pedantic(lambda: list(m_outcomes), rounds=1, iterations=1)
    print("\n=== E7: m sweep (k = 50, alpha = 10) ===")
    for m, outcome in m_outcomes.items():
        deltas = outcome.confidence_distances("lower-variance")
        print(
            f"m={m:>4}: var-acc={outcome.accuracy('lower-variance'):.2f} "
            f"Delta_v per row: "
            + "  ".join(f"{ref}={d:5.1f}%" for ref, d in deltas.items())
        )
        assert outcome.accuracy("lower-variance") == 1.0


def test_mean_confidence_insensitive_to_k(benchmark, k_outcomes):
    benchmark.pedantic(lambda: list(k_outcomes), rounds=1, iterations=1)
    # Delta_mean depends on the deterministic waveform overlap, not on
    # averaging depth: it must stay flat across the k sweep.
    deltas = {
        k: min(outcome.confidence_distances("higher-mean").values())
        for k, outcome in k_outcomes.items()
    }
    values = list(deltas.values())
    assert max(values) - min(values) < 5.0
