"""E4 / Table II — variances of the correlation sets and Delta_v.

Prints the measured table next to the published one and checks the
paper's central finding: the variance distinguisher separates far
better than the mean (published Delta_v in [44.9 %, 99.2 %] against
Delta_mean in [0.52 %, 22.6 %]).
"""

from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.runner import REF_ORDER
from repro.experiments.tables import (
    PAPER_TABLE2_DELTAS,
    compare_table1,
    compare_table2,
    render_paper_table2,
    render_table2,
)


def test_bench_table2_statistics(benchmark, campaign):
    comparison = benchmark(compare_table2, campaign)
    assert comparison.diagonal_wins


def test_table2_reproduction(benchmark, campaign, capsys):
    comparison = benchmark.pedantic(
        compare_table2, args=(campaign,), rounds=1, iterations=1
    )
    print("\n=== Table II — measured (this reproduction) ===")
    print(render_table2(campaign))
    print("\n=== Table II — paper (Cyclone III testbed) ===")
    print(render_paper_table2())
    print("\nDelta_v per row (paper vs measured):")
    for ref in REF_ORDER:
        print(
            f"  {ref}: paper={PAPER_TABLE2_DELTAS[ref]:6.2f}%  "
            f"measured={comparison.measured_deltas[ref]:6.2f}%"
        )

    # Shape claim 1: the diagonal has the smallest variance everywhere.
    assert comparison.diagonal_wins
    # Shape claim 2: matching variances are tiny (paper: 1e-6..2e-5).
    for ref in REF_ORDER:
        match = EXPECTED_MATCHES[ref]
        assert campaign.variances[ref][match] < 1e-4


def test_variance_beats_mean(benchmark, campaign, capsys):
    """The headline comparison of Section V.A."""
    t1 = benchmark.pedantic(compare_table1, args=(campaign,), rounds=1, iterations=1)
    t2 = compare_table2(campaign)
    print("\n=== Distinguisher quality: Delta_v vs Delta_mean ===")
    for ref in REF_ORDER:
        print(
            f"  {ref}: Delta_mean={t1.measured_deltas[ref]:6.2f}%   "
            f"Delta_v={t2.measured_deltas[ref]:6.2f}%"
        )
        assert t2.measured_deltas[ref] > t1.measured_deltas[ref]
    # And the worst Delta_v still lands in the paper's regime.
    assert min(t2.measured_deltas.values()) > 20.0
