"""E6 — process-variation insensitivity (paper Section IV.A claim).

The paper: "the use of different FPGAs shows that the proposed work is
insensitive to the CMOS variation process" and "similar results are
obtained by using only one FPGA".  This ablation runs the campaign
with variation disabled (one-FPGA equivalent), at the default
magnitude, and at an exaggerated magnitude, comparing identification
accuracy and confidence distances.
"""

import pytest

from repro.core.process import ProcessParameters
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.power.variation import VariationModel

PARAMS = ProcessParameters(k=40, m=16, n1=320, n2=6400)


def run_with_variation(variation, seed=42):
    config = CampaignConfig(
        parameters=PARAMS,
        variation=variation,
        measurement_seed=seed,
        analysis_seed=seed + 1,
    )
    return run_campaign(config)


@pytest.fixture(scope="module")
def outcomes():
    return {
        "none (single FPGA)": run_with_variation(None),
        "default CMOS variation": run_with_variation(VariationModel()),
        "3x CMOS variation": run_with_variation(
            VariationModel(gain_sigma=0.24, offset_sigma=0.9, component_sigma=0.075)
        ),
    }


def test_bench_campaign_with_variation(benchmark):
    outcome = benchmark.pedantic(
        run_with_variation,
        args=(VariationModel(),),
        iterations=1,
        rounds=1,
    )
    assert outcome.all_correct


def test_variation_insensitivity(benchmark, outcomes, capsys):
    benchmark.pedantic(lambda: list(outcomes), rounds=1, iterations=1)
    print("\n=== E6: process-variation ablation ===")
    for label, outcome in outcomes.items():
        mean_acc = outcome.accuracy("higher-mean")
        var_acc = outcome.accuracy("lower-variance")
        var_conf = outcome.confidence_distances("lower-variance")
        print(
            f"{label:>24}: mean-acc={mean_acc:.2f} var-acc={var_acc:.2f} "
            f"min Delta_v={min(var_conf.values()):.1f}%"
        )
    # The verification works identically with and without variation.
    assert outcomes["none (single FPGA)"].all_correct
    assert outcomes["default CMOS variation"].all_correct
    # Even exaggerated variation keeps the variance distinguisher right.
    assert outcomes["3x CMOS variation"].accuracy("lower-variance") == 1.0


def test_gain_offset_do_not_move_correlation(benchmark, outcomes):
    benchmark.pedantic(lambda: list(outcomes), rounds=1, iterations=1)
    # Pearson's gain/offset invariance means the matching mean is the
    # same with and without die-to-die gain spread (to a few percent).
    none = outcomes["none (single FPGA)"]
    default = outcomes["default CMOS variation"]
    for ref in ("IP_A", "IP_B", "IP_C", "IP_D"):
        match = {
            "IP_A": "DUT#1",
            "IP_B": "DUT#2",
            "IP_C": "DUT#3",
            "IP_D": "DUT#4",
        }[ref]
        delta = abs(none.means[ref][match] - default.means[ref][match])
        assert delta < 0.05
