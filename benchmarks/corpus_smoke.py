#!/usr/bin/env python
"""Import-corpus smoke: parse and simulate every vendored circuit.

CI runs this script to prove the whole ``benchmarks/netlists/``
corpus still parses, validates and simulates bit-identically on all
three engine tiers.  It is intentionally dependency-light (numpy
only) so it can run before the test suite as a fast tripwire.

Exit status is 0 when every circuit agrees across tiers, 1 otherwise.

Usage::

    PYTHONPATH=src python benchmarks/corpus_smoke.py [cycles]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.hdl.simulator import Simulator
from repro.hdl.verilog_parse import parse_verilog_file

CORPUS_DIR = Path(__file__).resolve().parent / "netlists"
ENGINES = ("interpreted", "compiled", "vectorised")


def main(cycles: int = 64) -> int:
    paths = sorted(CORPUS_DIR.glob("*.v"))
    if not paths:
        print(f"no corpus circuits found under {CORPUS_DIR}", file=sys.stderr)
        return 1

    failures = 0
    for path in paths:
        try:
            traces = {}
            for engine in ENGINES:
                netlist = parse_verilog_file(str(path))
                netlist.validate()
                traces[engine] = Simulator(netlist, engine=engine).run(cycles)
        except Exception as error:
            print(f"FAIL {path.name}: {error}")
            failures += 1
            continue

        reference = traces["interpreted"]
        disagreeing = [
            engine
            for engine in ENGINES[1:]
            if not np.array_equal(traces[engine].matrix, reference.matrix)
        ]
        if disagreeing:
            print(f"FAIL {path.name}: tier mismatch on {disagreeing}")
            failures += 1
        else:
            print(
                f"ok   {path.name}: {len(netlist.components)} components, "
                f"{cycles} cycles bit-identical on {len(ENGINES)} tiers"
            )

    if failures:
        print(f"{failures}/{len(paths)} circuits failed", file=sys.stderr)
        return 1
    print(f"all {len(paths)} corpus circuits agree across tiers")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 64))
