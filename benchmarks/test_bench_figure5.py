"""E5 / Fig. 5 — the trace-reuse probability curve f_alpha(m).

Regenerates the closed-form curve, its limit and the 5 %-band read,
cross-validates P(zeta) by Monte-Carlo simulation of the actual
selection machinery, and exercises properties P1 and P2.
"""

import pytest

from repro.analysis.montecarlo import (
    estimate_reuse_probability,
    property_p1_numeric,
    property_p2_numeric,
)
from repro.experiments.figure5 import (
    PAPER_M,
    PAPER_MIN_M_AT_5PCT,
    PAPER_P_ZETA_AT_M20,
    figure5_data,
    figure5_shape_holds,
    render_figure5,
)


def test_bench_figure5_closed_form(benchmark):
    data = benchmark(figure5_data)
    assert figure5_shape_holds(data)


def test_figure5_reproduction(benchmark, capsys):
    data = benchmark.pedantic(figure5_data, rounds=1, iterations=1)
    print("\n=== Fig. 5 (ASCII reproduction, alpha = 10) ===")
    print(render_figure5(data))
    print(
        f"\nP(zeta) at m={PAPER_M}: paper={PAPER_P_ZETA_AT_M20}  "
        f"measured={data.p_zeta_at_paper_m:.6f}"
    )
    print(
        f"minimal m within 5% of the limit: paper~{PAPER_MIN_M_AT_5PCT} "
        f"(graphical read)  measured={data.min_m_within_5pct} (exact)"
    )
    assert data.p_zeta_at_paper_m == pytest.approx(PAPER_P_ZETA_AT_M20, abs=2e-4)
    assert abs(data.min_m_within_5pct - PAPER_MIN_M_AT_5PCT) <= 3


def test_bench_monte_carlo_validation(benchmark, capsys):
    # alpha = 2 keeps P(zeta) large enough for a fast, tight estimate;
    # the closed form is the same formula being validated.
    estimate = benchmark.pedantic(
        estimate_reuse_probability,
        kwargs={"alpha": 2.0, "k": 10, "m": 10, "trials": 400, "rng": 0},
        iterations=1,
        rounds=3,
    )
    print(
        f"\nMonte-Carlo P(zeta) @ alpha=2, m=10: closed-form="
        f"{estimate.closed_form:.5f}  estimate={estimate.estimate:.5f} "
        f"(z={estimate.z_score:+.2f})"
    )
    assert abs(estimate.z_score) < 4.0


def test_properties_p1_p2(benchmark, capsys):
    benchmark.pedantic(property_p1_numeric, kwargs={"m": 20}, rounds=1, iterations=1)
    print("\nP1 (alpha -> inf): f_alpha(m) -> 0:", property_p1_numeric(m=20))
    print("P2 (m -> inf): f_alpha(m) -> limit:", property_p2_numeric(alpha=10.0))
    assert property_p1_numeric(m=20)
    assert property_p2_numeric(alpha=10.0)


def test_paper_monte_carlo_operating_point(benchmark, capsys):
    # The paper's exact (alpha, k, m) = (10, 50, 20), lighter trials.
    estimate = benchmark.pedantic(
        estimate_reuse_probability,
        kwargs={"alpha": 10.0, "k": 50, "m": 20, "trials": 1500, "rng": 1},
        rounds=1,
        iterations=1,
    )
    print(
        f"\nMonte-Carlo P(zeta) @ paper point: closed-form="
        f"{estimate.closed_form:.5f}  estimate={estimate.estimate:.5f} "
        f"(z={estimate.z_score:+.2f}, n2={estimate.n2})"
    )
    assert estimate.n2 == 10_000
    assert abs(estimate.z_score) < 4.0
