"""Verilog frontend benchmark — parse throughput and imported circuits.

Times :func:`repro.hdl.verilog_parse.parse_verilog` on the largest
vendored corpus circuit, the full export→parse round trip of a paper
design, and the simulation throughput of an imported gate-level
netlist on all three engine tiers, then writes ``BENCH_verilog.json``
next to the repo root (gated by ``benchmarks/check_bench.py`` like
every other BENCH file).  The correctness guarantees behind these
numbers live in ``tests/test_verilog_parse.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.experiments.designs import build_paper_ip
from repro.hdl.simulator import Simulator
from repro.hdl.verilog import export_verilog
from repro.hdl.verilog_parse import parse_verilog

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_verilog.json"
CORPUS_DIR = Path(__file__).resolve().parent / "netlists"

#: The largest vendored circuit — the parse / simulate workhorse.
BIG_CIRCUIT = "c640_synth.v"

#: Cycles simulated per tier in the imported-circuit benchmark.
SIM_CYCLES = 256

#: Floor on the compiled-tier speedup over the interpreted oracle on
#: an imported gate-level netlist.  Kept deliberately conservative —
#: the gate, not this assertion, tracks the real trajectory.
MIN_ASSERTED_SPEEDUP = 2.0


def _best_of(callable_, repeats: int) -> float:
    """Best wall time over ``repeats`` calls (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_results(update: dict) -> dict:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def test_bench_parse_throughput(benchmark, capsys):
    source = (CORPUS_DIR / BIG_CIRCUIT).read_text()
    netlist = parse_verilog(source)
    n_lines = source.count("\n")

    seconds = _best_of(lambda: parse_verilog(source), 5)
    benchmark.pedantic(parse_verilog, args=(source,), rounds=5, iterations=1)

    update = {
        "parse": {
            "file": BIG_CIRCUIT,
            "lines": n_lines,
            "components": len(netlist.components),
            "lines_per_sec": n_lines / seconds,
            "chars_per_sec": len(source) / seconds,
        }
    }
    _merge_results(update)
    print(
        f"\nparse_verilog({BIG_CIRCUIT}): {n_lines} lines, "
        f"{len(netlist.components)} components in {seconds * 1e3:.1f} ms "
        f"-> {n_lines / seconds:,.0f} lines/s"
    )
    assert len(netlist.components) > 600


def test_bench_round_trip(benchmark, capsys):
    netlist = build_paper_ip("IP_A").netlist
    text = export_verilog(netlist)

    def round_trip():
        return parse_verilog(export_verilog(netlist))

    seconds = _best_of(round_trip, 10)
    benchmark.pedantic(round_trip, rounds=10, iterations=1)

    update = {
        "round_trip": {
            "design": "IP_A",
            "verilog_lines": text.count("\n"),
            "round_trips_per_sec": 1.0 / seconds,
        }
    }
    _merge_results(update)
    print(
        f"\nexport+parse round trip of IP_A: {seconds * 1e3:.2f} ms "
        f"-> {1.0 / seconds:,.0f} round trips/s"
    )
    recovered = round_trip()
    assert [c.name for c in recovered.components] == [
        c.name for c in netlist.components
    ]


def test_bench_imported_simulation(benchmark, capsys):
    """Simulation throughput of an imported gate-level circuit per tier."""
    path = str(CORPUS_DIR / BIG_CIRCUIT)
    source = Path(path).read_text()

    seconds = {}
    traces = {}
    for engine, repeats in (
        ("interpreted", 1),
        ("compiled", 5),
        ("vectorised", 5),
    ):
        simulator = Simulator(parse_verilog(source), engine=engine)
        seconds[engine] = _best_of(lambda s=simulator: s.run(SIM_CYCLES), repeats)
        traces[engine] = simulator.run(SIM_CYCLES)

    compiled_sim = Simulator(parse_verilog(source), engine="compiled")
    benchmark.pedantic(
        compiled_sim.run, args=(SIM_CYCLES,), rounds=5, iterations=1
    )

    speedup_compiled = seconds["interpreted"] / seconds["compiled"]
    speedup_vectorised = seconds["interpreted"] / seconds["vectorised"]
    update = {
        "imported_simulation": {
            "file": BIG_CIRCUIT,
            "cycles": SIM_CYCLES,
            "interpreted_cycles_per_sec": SIM_CYCLES / seconds["interpreted"],
            "compiled_cycles_per_sec": SIM_CYCLES / seconds["compiled"],
            "vectorised_cycles_per_sec": SIM_CYCLES / seconds["vectorised"],
            "compiled_speedup": speedup_compiled,
            "vectorised_speedup": speedup_vectorised,
        }
    }
    _merge_results(update)
    print(
        f"\nimported {BIG_CIRCUIT} at {SIM_CYCLES} cycles: "
        f"interpreted {SIM_CYCLES / seconds['interpreted']:,.0f} cyc/s, "
        f"compiled {SIM_CYCLES / seconds['compiled']:,.0f} cyc/s "
        f"({speedup_compiled:.1f}x), "
        f"vectorised {SIM_CYCLES / seconds['vectorised']:,.0f} cyc/s "
        f"({speedup_vectorised:.1f}x)"
    )
    assert speedup_compiled >= MIN_ASSERTED_SPEEDUP
    # Tier agreement rides along with the timing.
    for engine in ("compiled", "vectorised"):
        assert np.array_equal(
            traces[engine].matrix, traces["interpreted"].matrix
        )
