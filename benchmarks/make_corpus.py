"""Regenerate the synthetic benchmark circuits under benchmarks/netlists/.

The vendored corpus pairs the classic hand-written ``c17.v`` with
deterministic ISCAS-85-*style* synthetic circuits: random gate-level
DAGs (combinational) and register-rich sequential netlists in the
structural subset :mod:`repro.hdl.verilog_parse` accepts.  Generation
is seeded, so running this script always reproduces the committed
files byte-for-byte::

    python benchmarks/make_corpus.py

The generator builds strictly topologically ordered gate lists, so the
emitted circuits are acyclic by construction and every wire has exactly
one driver.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Tuple

NETLISTS_DIR = Path(__file__).resolve().parent / "netlists"

#: (gate type, weight) for the random draw; NAND-heavy like ISCAS-85.
GATE_WEIGHTS: Tuple[Tuple[str, int], ...] = (
    ("nand", 5),
    ("nor", 2),
    ("and", 2),
    ("or", 2),
    ("xor", 1),
    ("xnor", 1),
    ("not", 1),
)


def _draw_gate(rng: random.Random) -> str:
    total = sum(weight for _, weight in GATE_WEIGHTS)
    pick = rng.randrange(total)
    for gate, weight in GATE_WEIGHTS:
        pick -= weight
        if pick < 0:
            return gate
    raise AssertionError("unreachable")


def _decl_lines(keyword: str, names: List[str], per_line: int = 8) -> List[str]:
    lines = []
    for start in range(0, len(names), per_line):
        chunk = ", ".join(names[start : start + per_line])
        lines.append(f"  {keyword} {chunk};")
    return lines


def generate_combinational(
    name: str, n_inputs: int, n_gates: int, n_outputs: int, seed: int
) -> str:
    """A random combinational gate DAG in ISCAS-85 style."""
    rng = random.Random(seed)
    inputs = [f"G{i}" for i in range(1, n_inputs + 1)]
    available = list(inputs)
    gates: List[Tuple[str, str, str, List[str]]] = []
    internal: List[str] = []
    for index in range(n_gates):
        out = f"G{n_inputs + index + 1}"
        gate = _draw_gate(rng)
        fanin = 1 if gate == "not" else rng.choice((2, 2, 2, 3))
        # Bias toward recent wires so depth grows with size.
        pool = available[-24:] if len(available) > 24 else available
        ins = rng.sample(pool, min(fanin, len(pool)))
        if gate != "not" and len(ins) < 2:
            ins = ins + rng.sample(available, 1)
        gates.append((gate, f"U{index + 1}", out, ins))
        internal.append(out)
        available.append(out)
    outputs = internal[-n_outputs:]
    wires = [wire for wire in internal if wire not in outputs]

    lines = [
        f"// {name} — synthetic ISCAS-85-style combinational benchmark.",
        f"// {n_inputs} inputs, {n_gates} gates, {n_outputs} outputs;",
        "// regenerate with `python benchmarks/make_corpus.py`.",
        f"module {name} ({', '.join(inputs + outputs)});",
        "",
    ]
    lines.extend(_decl_lines("input", inputs))
    lines.extend(_decl_lines("output", outputs))
    lines.append("")
    lines.extend(_decl_lines("wire", wires))
    lines.append("")
    for gate, instance, out, ins in gates:
        terminals = ", ".join([out] + ins)
        lines.append(f"  {gate} {instance} ({terminals});")
    lines.append("")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def generate_sequential(
    name: str,
    n_inputs: int,
    n_gates: int,
    n_registers: int,
    n_outputs: int,
    seed: int,
) -> str:
    """A random sequential circuit: gate DAG + one-register always blocks.

    Register outputs join the combinational wire pool from the start
    (registers legally break cycles), and each register samples a late
    gate output, so state genuinely feeds back through the logic.
    """
    rng = random.Random(seed)
    inputs = [f"G{i}" for i in range(1, n_inputs + 1)]
    reg_outs = [f"R{i}" for i in range(1, n_registers + 1)]
    available = list(inputs) + list(reg_outs)
    gates: List[Tuple[str, str, str, List[str]]] = []
    internal: List[str] = []
    for index in range(n_gates):
        out = f"G{n_inputs + index + 1}"
        gate = _draw_gate(rng)
        fanin = 1 if gate == "not" else rng.choice((2, 2, 2, 3))
        pool = available[-24:] if len(available) > 24 else available
        ins = rng.sample(pool, min(fanin, len(pool)))
        if gate != "not" and len(ins) < 2:
            ins = ins + rng.sample(available, 1)
        gates.append((gate, f"U{index + 1}", out, ins))
        internal.append(out)
        available.append(out)
    # Each register's D comes from the back half of the gate list.
    tail = internal[len(internal) // 2 :]
    reg_ds = [rng.choice(tail) for _ in reg_outs]
    outputs = internal[-n_outputs:]
    wires = [wire for wire in internal if wire not in outputs]

    lines = [
        f"// {name} — synthetic sequential benchmark "
        f"({n_registers} registers, {n_gates} gates).",
        "// regenerate with `python benchmarks/make_corpus.py`.",
        f"module {name} ({', '.join(['clk', 'rst'] + inputs + outputs)});",
        "",
        "  input clk, rst;",
    ]
    lines.extend(_decl_lines("input", inputs))
    lines.extend(_decl_lines("output", outputs))
    lines.append("")
    lines.extend(_decl_lines("wire", wires))
    lines.extend(_decl_lines("reg", reg_outs))
    lines.append("")
    for gate, instance, out, ins in gates:
        terminals = ", ".join([out] + ins)
        lines.append(f"  {gate} {instance} ({terminals});")
    lines.append("")
    for reg, d in zip(reg_outs, reg_ds):
        reset_value = rng.randrange(2)
        lines.append(f"  always @(posedge clk) begin // {reg}_dff")
        lines.append("    if (rst)")
        lines.append(f"      {reg} <= 1'd{reset_value};")
        lines.append("    else")
        lines.append(f"      {reg} <= {d};")
        lines.append("  end")
    lines.append("")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


#: The committed corpus: (filename, generator call).
CORPUS = (
    ("c160_synth.v", lambda: generate_combinational("c160_synth", 12, 160, 8, 85160)),
    ("c640_synth.v", lambda: generate_combinational("c640_synth", 16, 640, 12, 85640)),
    (
        "s220_synth.v",
        lambda: generate_sequential("s220_synth", 10, 220, 16, 8, 89220),
    ),
)


def main() -> None:
    NETLISTS_DIR.mkdir(parents=True, exist_ok=True)
    for filename, build in CORPUS:
        path = NETLISTS_DIR / filename
        path.write_text(build(), encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
