"""E1 / Fig. 3 — the four designed IPs and their simulation cost.

Regenerates the design inventory of the paper's Section IV.A (four
watermarked counters on eight devices) and benchmarks the substrate:
netlist construction, one-period cycle-accurate simulation, and
deterministic-waveform synthesis.
"""


from repro.experiments.designs import (
    EXPECTED_MATCHES,
    IP_SPECS,
    PERIOD_CYCLES,
    build_device_fleet,
    build_paper_ip,
)
from repro.hdl.simulator import Simulator
from repro.power.models import PowerModel, variance_share


def test_bench_build_ip(benchmark):
    ip = benchmark(build_paper_ip, "IP_B")
    assert ip.is_watermarked


def test_bench_simulate_one_period(benchmark):
    ip = build_paper_ip("IP_B")
    simulator = Simulator(ip.netlist)
    trace = benchmark(simulator.run, PERIOD_CYCLES)
    assert trace.n_cycles == PERIOD_CYCLES


def test_bench_deterministic_waveform(benchmark):
    refds, _duts = build_device_fleet(seed=2014)
    device = refds["IP_C"]

    def synthesize():
        device._waveform_cache.clear()
        device._activity_cache.clear()
        return device.deterministic_waveform()

    waveform = benchmark(synthesize)
    assert waveform.size == PERIOD_CYCLES * device.waveform.samples_per_cycle


def test_design_inventory_matches_figure3(benchmark, capsys):
    benchmark.pedantic(build_paper_ip, args=("IP_A",), rounds=1, iterations=1)
    print("\n=== Fig. 3 design inventory (paper Section IV.A) ===")
    for name, (kind, kw) in IP_SPECS.items():
        ip = build_paper_ip(name)
        n_components = len(ip.netlist.components)
        print(
            f"{name}: 8-bit {kind} counter + leakage component "
            f"(Kw={kw:#04x}), {n_components} components, "
            f"period {PERIOD_CYCLES} cycles"
        )
    print(f"ground truth (DUT contents): {EXPECTED_MATCHES}")


def test_shared_vs_keyed_power_decomposition(benchmark):
    benchmark.pedantic(build_paper_ip, args=("IP_B",), rounds=1, iterations=1)
    # Sanity of the calibration: both the shared (counter/clock/comb)
    # and the keyed (RAM/IO) activity contribute to the power, and on
    # the *rendered waveforms* the shared structure dominates — two
    # gray-counter devices with different keys still correlate highly
    # (the regime that makes Delta_mean small), yet visibly below a
    # same-key pair (what the variance distinguisher exploits).
    ip = build_paper_ip("IP_B")
    trace = Simulator(ip.netlist).run(PERIOD_CYCLES)
    shares = variance_share(PowerModel(), trace)
    keyed = shares.get("ram", 0.0) + shares.get("io", 0.0)
    shared = shares.get("comb", 0.0) + shares.get("register", 0.0)
    assert keyed > 0.0
    assert shared > 0.0

    from repro.core.correlation import pearson

    refds, duts = build_device_fleet(seed=2014)
    cross_key = pearson(
        refds["IP_C"].deterministic_waveform(),
        duts["DUT#4"].deterministic_waveform(),
    )
    same_key = pearson(
        refds["IP_C"].deterministic_waveform(),
        duts["DUT#3"].deterministic_waveform(),
    )
    assert 0.8 < cross_key < same_key


def test_matching_waveforms_correlate_highest(benchmark):
    benchmark.pedantic(lambda: build_paper_ip("IP_D"), rounds=1, iterations=1)
    from repro.core.correlation import pearson
    from repro.power.variation import VariationModel

    refds, duts = build_device_fleet(
        variation_model=VariationModel(), seed=2014
    )
    for ref_name, dut_name in EXPECTED_MATCHES.items():
        ref_wave = refds[ref_name].deterministic_waveform()
        best = max(
            duts, key=lambda n: pearson(ref_wave, duts[n].deterministic_waveform())
        )
        assert best == dut_name
