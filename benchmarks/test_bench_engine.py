"""Engine benchmark — compiled vs interpreted simulation throughput.

Times ``Simulator.run`` under both engines on the paper's designs, the
full 4x4 device fleet at one period (256 cycles) and a wide mixed-key
fleet under batched execution, then writes ``BENCH_engine.json`` next
to the repo root so future PRs have a performance trajectory to
regress against (``benchmarks/check_bench.py`` enforces it in CI).
The equivalence guarantees behind these numbers live in
``tests/test_engine.py`` and ``tests/test_engine_batch.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.acquisition.device import clear_fleet_activity_cache
from repro.experiments.designs import (
    PERIOD_CYCLES,
    build_device_fleet,
    build_ip,
    build_paper_ip,
)
from repro.hdl.engine import clear_program_cache, compile_netlist, run_batch
from repro.hdl.simulator import Simulator

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Speedup the compiled engine must sustain on a one-period run of a
#: paper design (the acceptance floor is 10x; we assert a margin below
#: that to keep the suite robust on loaded CI machines).
MIN_ASSERTED_SPEEDUP = 5.0

#: Lanes of the batched-fleet benchmark: one gray-counter IP per
#: distinct watermark key, i.e. 48 distinct netlist structures that
#: share a single shape and ride one vectorised execution.
BATCH_FLEET_LANES = 48


def _best_of(callable_, repeats: int) -> float:
    """Best wall time over ``repeats`` calls (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _merge_results(update: dict) -> dict:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data.update(update)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def test_bench_single_design_speedup(benchmark, capsys):
    interpreted = Simulator(build_paper_ip("IP_B").netlist, engine="interpreted")
    compiled = Simulator(build_paper_ip("IP_B").netlist, engine="compiled")

    seconds_interpreted = _best_of(lambda: interpreted.run(PERIOD_CYCLES), 3)
    seconds_compiled = _best_of(lambda: compiled.run(PERIOD_CYCLES), 20)
    benchmark.pedantic(compiled.run, args=(PERIOD_CYCLES,), rounds=10, iterations=1)

    speedup = seconds_interpreted / seconds_compiled
    update = {
        "single_design": {
            "design": "IP_B",
            "cycles": PERIOD_CYCLES,
            "interpreted_cycles_per_sec": PERIOD_CYCLES / seconds_interpreted,
            "compiled_cycles_per_sec": PERIOD_CYCLES / seconds_compiled,
            "speedup": speedup,
        }
    }
    _merge_results(update)
    print(
        f"\nSimulator.run({PERIOD_CYCLES}) on IP_B: "
        f"interpreted {PERIOD_CYCLES / seconds_interpreted:,.0f} cyc/s, "
        f"compiled {PERIOD_CYCLES / seconds_compiled:,.0f} cyc/s "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= MIN_ASSERTED_SPEEDUP
    # Equivalence spot check rides along with the timing.
    assert np.array_equal(
        compiled.run(PERIOD_CYCLES).matrix,
        interpreted.run(PERIOD_CYCLES).matrix,
    )


def test_bench_fleet_simulation(benchmark, capsys):
    """Wall time to obtain activity for all eight fleet devices."""

    def fleet_interpreted() -> float:
        refds, duts = build_device_fleet(seed=2014)
        start = time.perf_counter()
        for device in (*refds.values(), *duts.values()):
            trace = Simulator(device.ip.netlist, engine="interpreted").run(
                PERIOD_CYCLES
            )
            assert trace.n_cycles == PERIOD_CYCLES
        return time.perf_counter() - start

    def fleet_compiled_shared() -> float:
        clear_fleet_activity_cache()
        refds, duts = build_device_fleet(seed=2014)
        start = time.perf_counter()
        for device in (*refds.values(), *duts.values()):
            device.activity(PERIOD_CYCLES)
        return time.perf_counter() - start

    seconds_interpreted = fleet_interpreted()
    seconds_compiled = min(fleet_compiled_shared() for _ in range(3))
    benchmark.pedantic(fleet_compiled_shared, rounds=3, iterations=1)

    speedup = seconds_interpreted / seconds_compiled
    update = {
        "fleet_4x4": {
            "devices": 8,
            "distinct_netlists": 4,
            "cycles": PERIOD_CYCLES,
            "interpreted_wall_sec": seconds_interpreted,
            "compiled_shared_wall_sec": seconds_compiled,
            "speedup": speedup,
        }
    }
    _merge_results(update)
    print(
        f"\n4x4 fleet activity at {PERIOD_CYCLES} cycles: "
        f"interpreted {seconds_interpreted * 1e3:.1f} ms, "
        f"compiled+shared {seconds_compiled * 1e3:.2f} ms -> {speedup:.0f}x"
    )
    assert speedup >= MIN_ASSERTED_SPEEDUP


def test_bench_batched_fleet(benchmark, capsys):
    """One vectorised execution for a whole mixed-key device fleet.

    48 watermarked gray counters with 48 distinct keys are 48 distinct
    netlist structures, so structural activity sharing cannot collapse
    them — exactly the fleet profile of the paper's accuracy/ROC
    experiments.  The batched engine runs them as one 48-lane program;
    the recorded ``fleet_batched`` speedup must clearly beat the
    structural-sharing-only ``fleet_4x4`` number.
    """
    keys = list(range(BATCH_FLEET_LANES))

    def lane_netlists():
        return [build_ip(f"ip_{k:02d}", "gray", k).netlist for k in keys]

    # Devices are compiled once and measured thousands of times in a
    # campaign, so the timed region is steady-state trace production on
    # a prebuilt fleet — identically for all three paths (programs are
    # generated and warmed before the clock starts).
    interpreted_sims = [
        Simulator(netlist, engine="interpreted") for netlist in lane_netlists()
    ]
    compiled_sims = [
        Simulator(netlist, engine="compiled") for netlist in lane_netlists()
    ]
    batched_engines = [compile_netlist(netlist) for netlist in lane_netlists()]
    compiled_sims[0].run(PERIOD_CYCLES)
    run_batch(batched_engines, PERIOD_CYCLES)

    def fleet_interpreted() -> float:
        start = time.perf_counter()
        for simulator in interpreted_sims:
            trace = simulator.run(PERIOD_CYCLES)
            assert trace.n_cycles == PERIOD_CYCLES
        return time.perf_counter() - start

    def fleet_compiled() -> float:
        start = time.perf_counter()
        for simulator in compiled_sims:
            simulator.run(PERIOD_CYCLES)
        return time.perf_counter() - start

    def fleet_batched() -> float:
        start = time.perf_counter()
        traces = run_batch(batched_engines, PERIOD_CYCLES)
        assert len(traces) == BATCH_FLEET_LANES
        return time.perf_counter() - start

    seconds_interpreted = fleet_interpreted()
    seconds_compiled = min(fleet_compiled() for _ in range(5))
    seconds_batched = min(fleet_batched() for _ in range(5))
    benchmark.pedantic(fleet_batched, rounds=3, iterations=1)

    speedup = seconds_interpreted / seconds_batched
    speedup_vs_compiled = seconds_compiled / seconds_batched
    update = {
        "fleet_batched": {
            "devices": BATCH_FLEET_LANES,
            "distinct_netlists": BATCH_FLEET_LANES,
            "cycles": PERIOD_CYCLES,
            "interpreted_wall_sec": seconds_interpreted,
            "per_device_compiled_wall_sec": seconds_compiled,
            "batched_wall_sec": seconds_batched,
            "speedup": speedup,
            "speedup_vs_compiled": speedup_vs_compiled,
        }
    }
    data = _merge_results(update)
    print(
        f"\n{BATCH_FLEET_LANES}-lane mixed-key fleet at {PERIOD_CYCLES} "
        f"cycles: interpreted {seconds_interpreted * 1e3:.0f} ms, "
        f"per-device compiled {seconds_compiled * 1e3:.1f} ms, "
        f"batched {seconds_batched * 1e3:.2f} ms -> {speedup:.0f}x vs "
        f"interpreted, {speedup_vs_compiled:.1f}x vs per-device compiled"
    )
    assert speedup >= MIN_ASSERTED_SPEEDUP
    assert speedup_vs_compiled >= 1.5
    # The tentpole claim: batching a wide fleet must clearly beat the
    # structural-sharing-only fleet number recorded this session.
    fleet_shared = data.get("fleet_4x4", {}).get("speedup")
    if fleet_shared:
        assert speedup > fleet_shared
    # Equivalence spot check rides along with the timing.
    clear_program_cache()
    engines = [compile_netlist(netlist) for netlist in lane_netlists()]
    batched = run_batch(engines[:3], PERIOD_CYCLES)
    for key, trace in zip(keys[:3], batched):
        reference = Simulator(
            build_ip("ref", "gray", key).netlist, engine="compiled"
        ).run(PERIOD_CYCLES)
        assert np.array_equal(trace.matrix, reference.matrix)


def test_bench_long_run_memoisation(benchmark, capsys):
    """Periodic designs tile their state cycle instead of re-stepping."""
    compiled = Simulator(build_paper_ip("IP_A").netlist, engine="compiled")
    cycles = 16 * PERIOD_CYCLES

    seconds = _best_of(lambda: compiled.run(cycles), 5)
    benchmark.pedantic(compiled.run, args=(cycles,), rounds=5, iterations=1)

    update = {
        "long_run": {
            "design": "IP_A",
            "cycles": cycles,
            "compiled_cycles_per_sec": cycles / seconds,
        }
    }
    data = _merge_results(update)
    print(
        f"\ncompiled {cycles}-cycle run: {cycles / seconds:,.0f} cyc/s "
        f"(state-memo tiling); BENCH_engine.json now has "
        f"{sorted(data)} sections"
    )
    # The memoised long run must beat the single-period rate.
    single = data.get("single_design", {}).get("compiled_cycles_per_sec")
    if single:
        assert cycles / seconds > single


def test_bench_long_run_vectorised(benchmark, capsys):
    """The cycle-axis kernel tier on a long memoised run.

    Same design as ``long_run`` but executed through the vectorised
    tier: the sequential residue steps one state period in Python,
    then every feed-forward wire column and the whole activity matrix
    are reconstructed with numpy block copies.  The recorded rate is
    the headline number for the third execution tier and must hold
    >= 5x the scalar ``long_run`` rate measured in the same session.
    """
    vectorised = Simulator(build_paper_ip("IP_A").netlist, engine="vectorised")
    scalar = Simulator(build_paper_ip("IP_A").netlist, engine="compiled")
    assert vectorised._engine.tier == "vectorised"
    cycles = 1024 * PERIOD_CYCLES

    seconds = _best_of(lambda: vectorised.run(cycles), 5)
    benchmark.pedantic(vectorised.run, args=(cycles,), rounds=5, iterations=1)

    update = {
        "long_run_vectorised": {
            "design": "IP_A",
            "cycles": cycles,
            "compiled_cycles_per_sec": cycles / seconds,
        }
    }
    data = _merge_results(update)
    scalar_rate = data.get("long_run", {}).get("compiled_cycles_per_sec")
    ratio = (cycles / seconds) / scalar_rate if scalar_rate else float("nan")
    print(
        f"\nvectorised {cycles}-cycle run: {cycles / seconds:,.0f} cyc/s "
        f"({ratio:.1f}x the scalar long_run rate)"
    )
    # The tentpole claim: the kernel tier must clearly beat the scalar
    # generated loop on long runs, not merely edge past it.
    if scalar_rate:
        assert cycles / seconds >= 5.0 * scalar_rate
    # Equivalence spot check rides along with the timing (a short run,
    # so the scalar oracle stays cheap).
    check = 4 * PERIOD_CYCLES
    assert np.array_equal(
        vectorised.run(check).matrix, scalar.run(check).matrix
    )
