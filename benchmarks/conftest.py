"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper
(or one ablation from DESIGN.md) and prints the paper-versus-measured
comparison.  Everything under ``benchmarks/`` carries the ``bench``
marker (applied below), which the default pytest run deselects — see
``[tool.pytest.ini_options]`` in pyproject.toml.  Reproduce the whole
evaluation section with::

    pytest -m bench benchmarks/ -s
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark every test collected from benchmarks/ as a benchmark.

    The hook sees the whole session's items, so filter by path —
    tests outside this directory must stay unmarked.
    """
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def campaign():
    """One full paper-parameter campaign shared by the table/figure benches."""
    from repro.experiments.runner import CampaignConfig, run_campaign

    return run_campaign(CampaignConfig(measurement_seed=42, analysis_seed=7))


@pytest.fixture(scope="session")
def fleet():
    """The eight manufactured devices (with process variation)."""
    from repro.experiments.designs import build_device_fleet
    from repro.power.variation import VariationModel

    return build_device_fleet(variation_model=VariationModel(), seed=2014)


@pytest.fixture(scope="session")
def measured_trace_sets(fleet):
    """Paper-sized trace sets: 400 per RefD, 10 000 per DUT."""
    from repro.acquisition.bench import MeasurementBench

    refds, duts = fleet
    bench = MeasurementBench(seed=42)
    t_refs = {name: bench.measure(dev, 400) for name, dev in refds.items()}
    t_duts = {name: bench.measure(dev, 10_000) for name, dev in duts.items()}
    return t_refs, t_duts


@pytest.fixture()
def rng():
    return np.random.default_rng(2014)
