"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper
(or one ablation from DESIGN.md) and prints the paper-versus-measured
comparison, so ``pytest benchmarks/ --benchmark-only -s`` reproduces
the whole evaluation section.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def campaign():
    """One full paper-parameter campaign shared by the table/figure benches."""
    from repro.experiments.runner import CampaignConfig, run_campaign

    return run_campaign(CampaignConfig(measurement_seed=42, analysis_seed=7))


@pytest.fixture(scope="session")
def fleet():
    """The eight manufactured devices (with process variation)."""
    from repro.experiments.designs import build_device_fleet
    from repro.power.variation import VariationModel

    return build_device_fleet(variation_model=VariationModel(), seed=2014)


@pytest.fixture(scope="session")
def measured_trace_sets(fleet):
    """Paper-sized trace sets: 400 per RefD, 10 000 per DUT."""
    from repro.acquisition.bench import MeasurementBench

    refds, duts = fleet
    bench = MeasurementBench(seed=42)
    t_refs = {name: bench.measure(dev, 400) for name, dev in refds.items()}
    t_duts = {name: bench.measure(dev, 10_000) for name, dev in duts.items()}
    return t_refs, t_duts


@pytest.fixture()
def rng():
    return np.random.default_rng(2014)
