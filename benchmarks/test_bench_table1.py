"""E3 / Table I — means of the correlation sets and Delta_mean.

Prints the measured table next to the published one and checks the
shape claims: the matching DUT has the highest mean on every row, and
Delta_mean is small (the paper's point is that the mean distinguisher
is weak — sub-percent on some published rows).
"""

from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.runner import REF_ORDER
from repro.experiments.tables import (
    PAPER_TABLE1_DELTAS,
    compare_table1,
    render_paper_table1,
    render_table1,
)


def test_bench_table1_statistics(benchmark, campaign):
    comparison = benchmark(compare_table1, campaign)
    assert comparison.diagonal_wins


def test_table1_reproduction(benchmark, campaign, capsys):
    comparison = benchmark.pedantic(
        compare_table1, args=(campaign,), rounds=1, iterations=1
    )
    print("\n=== Table I — measured (this reproduction) ===")
    print(render_table1(campaign))
    print("\n=== Table I — paper (Cyclone III testbed) ===")
    print(render_paper_table1())
    print("\nDelta_mean per row (paper vs measured):")
    for ref in REF_ORDER:
        print(
            f"  {ref}: paper={PAPER_TABLE1_DELTAS[ref]:6.2f}%  "
            f"measured={comparison.measured_deltas[ref]:6.2f}%"
        )

    # Shape claim 1: the diagonal wins every row.
    assert comparison.diagonal_wins
    # Shape claim 2: matching means sit in the paper's high regime.
    for ref in REF_ORDER:
        match = EXPECTED_MATCHES[ref]
        assert campaign.means[ref][match] > 0.9
    # Shape claim 3: Delta_mean is small — the mean distinguisher is
    # weak (paper max: 22.6 %).
    for ref in REF_ORDER:
        assert comparison.measured_deltas[ref] < 25.0
