#!/usr/bin/env python
"""Benchmark regression gate: enforce the BENCH_*.json perf trajectory.

CI regenerates every ``BENCH_*.json`` on each run but, until this gate,
only *uploaded* them — a silent perf regression would sail through.
This script compares freshly regenerated benchmark files against the
checked-in baselines (snapshotted before the benches run) and fails
when any throughput-like metric regresses beyond a configurable
tolerance.

Metric classification is by key name, so new benchmark sections are
gated automatically:

* **higher is better** — keys containing ``per_sec`` / ``per_second``
  or ``speedup``;
* **lower is better** — keys ending in ``_sec`` / ``_seconds`` /
  ``_bytes`` (wall times and memory footprints);
* everything else (counts, cycle totals, labels) is informational.

Dimensionless ratios (speedups) transfer across machines; absolute
wall-clock and throughput numbers do not, so they get ``--tolerance``
scaled by ``--absolute-slack`` (baselines are committed from whatever
box ran the benches last, which is rarely the CI runner).  A metric
present in the baseline but missing from the fresh results fails the
gate — deleting a benchmark must be an explicit baseline update, not
an accident.

Exit status is 0 when everything holds, 1 on any regression.  A
markdown summary is written to ``--report`` and appended to
``$GITHUB_STEP_SUMMARY`` when that variable is set (i.e. under GitHub
Actions).  Metrics present only in the fresh results are never
failures, but they are called out explicitly in a "newly tracked
metrics" section so a PR that adds a benchmark shows its new gate
entries instead of landing them silently.

``--update-baseline`` turns the gate into an *acceptance* run: every
``BENCH_*.json`` in ``--current`` is copied over its counterpart in
``--baseline`` (new files included), the report lists what was
rewritten, and regressions no longer fail the run — they have been
accepted on purpose and are now the baseline to beat.  This is how a
PR that legitimately shifts perf updates the committed numbers:
regenerate the benches, run the gate with ``--update-baseline``
pointing at the checked-in files, commit the diff.

Usage (mirrors the ``campaign-bench-smoke`` CI job)::

    cp BENCH_*.json .bench-baseline/
    pytest -m bench benchmarks/... -s        # regenerates BENCH_*.json
    python benchmarks/check_bench.py --baseline .bench-baseline --current .
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: Default relative regression tolerance (35%), per the quality gate.
DEFAULT_TOLERANCE = 0.35

#: Extra slack multiplier for machine-dependent absolute metrics
#: (wall seconds, cycles/sec): baseline and fresh numbers may come
#: from different hardware.
DEFAULT_ABSOLUTE_SLACK = 2.0

HIGHER_BETTER = "higher"
LOWER_BETTER = "lower"


def classify(key: str) -> Optional[str]:
    """Direction of one metric key, or ``None`` for informational keys."""
    name = key.lower()
    if "per_sec" in name or "per_second" in name or "speedup" in name:
        return HIGHER_BETTER
    if name.endswith(("_sec", "_seconds", "_bytes")):
        return LOWER_BETTER
    return None


def is_ratio_metric(key: str) -> bool:
    """Dimensionless metrics transfer across machines unchanged."""
    return "speedup" in key.lower()


def flatten(data: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf."""
    if isinstance(data, dict):
        for key in sorted(data):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(data[key], path)
    elif isinstance(data, bool):
        return
    elif isinstance(data, (int, float)):
        yield prefix, float(data)


def compare_file(
    name: str,
    baseline: dict,
    current: dict,
    tolerance: float,
    absolute_slack: float,
) -> List[dict]:
    """Row dicts for every gated metric of one benchmark file."""
    rows: List[dict] = []
    current_values = dict(flatten(current))
    baseline_values = dict(flatten(baseline))
    for path, base_value in baseline_values.items():
        direction = classify(path.rsplit(".", 1)[-1])
        if direction is None:
            continue
        allowed = tolerance if is_ratio_metric(path) else tolerance * absolute_slack
        row = {
            "file": name,
            "metric": path,
            "direction": direction,
            "baseline": base_value,
            "allowed": allowed,
        }
        if path not in current_values:
            row.update(current=None, change=None, status="missing")
            rows.append(row)
            continue
        value = current_values[path]
        if base_value == 0:
            change = 0.0 if value == 0 else float("inf")
        elif direction == HIGHER_BETTER:
            change = (value - base_value) / base_value
        else:
            change = (base_value - value) / base_value
        # ``change`` > 0 always means "improved" after the sign flip.
        status = "ok" if change >= -allowed else "regression"
        row.update(current=value, change=change, status=status)
        rows.append(row)
    for path, value in current_values.items():
        if classify(path.rsplit(".", 1)[-1]) is None:
            continue
        if path not in baseline_values:
            rows.append(
                {
                    "file": name,
                    "metric": path,
                    "direction": classify(path.rsplit(".", 1)[-1]),
                    "baseline": None,
                    "current": value,
                    "change": None,
                    "allowed": None,
                    "status": "new",
                }
            )
    return rows


def render_report(
    rows: List[dict],
    tolerance: float,
    absolute_slack: float,
    updated: Optional[List[str]] = None,
) -> str:
    """Markdown summary table for humans and $GITHUB_STEP_SUMMARY."""
    icons = {"ok": "✅", "regression": "❌", "missing": "❌", "new": "🆕"}
    lines = [
        "## Benchmark regression gate",
        "",
        f"Tolerance: {tolerance:.0%} on speedup ratios, "
        f"{tolerance * absolute_slack:.0%} on machine-dependent absolutes. "
        "Positive change = improvement.",
        "",
        "| | file | metric | baseline | current | change |",
        "|---|---|---|---:|---:|---:|",
    ]

    def fmt(value: Optional[float]) -> str:
        if value is None:
            return "—"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"

    def ordering(row: dict) -> tuple:
        return (row["status"] == "ok", row["file"], row["metric"])

    for row in sorted(rows, key=ordering):
        change = (
            "—" if row["change"] is None else f"{row['change']:+.1%}"
        )
        lines.append(
            f"| {icons[row['status']]} | {row['file']} | `{row['metric']}` "
            f"| {fmt(row['baseline'])} | {fmt(row['current'])} | {change} |"
        )
    failures = [r for r in rows if r["status"] in ("regression", "missing")]
    new_rows = [r for r in rows if r["status"] == "new"]
    lines.append("")
    if failures and updated:
        lines.append(
            f"**{len(failures)} regressed metric(s) accepted** — the "
            "rewritten baseline below makes the current numbers the gate."
        )
    elif failures:
        lines.append(
            f"**{len(failures)} metric(s) regressed or disappeared** — "
            "fix the regression or update the checked-in baseline on purpose."
        )
    else:
        gated = sum(1 for r in rows if r["status"] == "ok")
        lines.append(f"All {gated} gated metrics within tolerance.")
    if new_rows:
        listed = ", ".join(sorted(f"`{r['file']}:{r['metric']}`" for r in new_rows))
        lines.append("")
        lines.append(
            f"**{len(new_rows)} newly tracked metric(s):** {listed} — "
            "not gated yet; they join the gate once the baseline is updated."
        )
    if updated:
        lines.append("")
        lines.append(
            f"**Baseline updated in place:** {', '.join(sorted(updated))} — "
            "commit the rewritten files to make these numbers the new gate."
        )
    return "\n".join(lines) + "\n"


def run_gate(
    baseline_dir: Path,
    current_dir: Path,
    tolerance: float,
    absolute_slack: float,
) -> Tuple[List[dict], List[str]]:
    """Compare every baseline BENCH file; returns (rows, errors)."""
    rows: List[dict] = []
    errors: List[str] = []
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        errors.append(f"no BENCH_*.json baselines found in {baseline_dir}")
    for baseline_path in baseline_files:
        current_path = current_dir / baseline_path.name
        if not current_path.exists():
            errors.append(
                f"{baseline_path.name}: benchmark file was not regenerated"
            )
            continue
        try:
            baseline = json.loads(baseline_path.read_text())
            current = json.loads(current_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            errors.append(f"{baseline_path.name}: {err}")
            continue
        rows.extend(
            compare_file(
                baseline_path.name, baseline, current, tolerance, absolute_slack
            )
        )
    return rows, errors


def update_baselines(baseline_dir: Path, current_dir: Path) -> List[str]:
    """Rewrite the baseline ``BENCH_*.json`` files from ``current_dir``.

    Every benchmark file present in ``current_dir`` — including files
    with no baseline counterpart yet — is copied byte-for-byte over
    its baseline path.  Returns the sorted names of rewritten files.
    """
    updated: List[str] = []
    for current_path in sorted(current_dir.glob("BENCH_*.json")):
        target = baseline_dir / current_path.name
        target.write_bytes(current_path.read_bytes())
        updated.append(current_path.name)
    return updated


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        required=True,
        help="directory holding the checked-in BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("."),
        help="directory holding the freshly regenerated BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="relative regression tolerance for ratio metrics "
        f"(default {DEFAULT_TOLERANCE}, env BENCH_GATE_TOLERANCE)",
    )
    parser.add_argument(
        "--absolute-slack",
        type=float,
        default=DEFAULT_ABSOLUTE_SLACK,
        help="tolerance multiplier for machine-dependent absolute metrics "
        f"(default {DEFAULT_ABSOLUTE_SLACK})",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write the markdown summary to this path",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline BENCH_*.json files in place from "
        "--current (accepting any regressions) instead of failing on them",
    )
    args = parser.parse_args(argv)

    rows, errors = run_gate(
        args.baseline, args.current, args.tolerance, args.absolute_slack
    )
    updated: List[str] = []
    if args.update_baseline and not errors:
        updated = update_baselines(args.baseline, args.current)
    report = render_report(
        rows, args.tolerance, args.absolute_slack, updated=updated
    )
    if errors:
        report += "\n### Gate errors\n\n" + "\n".join(f"- {e}" for e in errors) + "\n"
    print(report)
    if args.report is not None:
        args.report.write_text(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report)

    failures = [r for r in rows if r["status"] in ("regression", "missing")]
    if (failures and not args.update_baseline) or errors:
        for row in failures:
            print(
                f"FAIL {row['file']} {row['metric']}: "
                f"baseline {row['baseline']}, current {row['current']}",
                file=sys.stderr,
            )
        for error in errors:
            print(f"FAIL {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
