"""E2 / Fig. 4 — the sixteen correlation-coefficient sets.

Regenerates the four panels (each RefD against all four DUTs, m = 20
coefficients per pair, k = 50) and benchmarks the correlation
computation process itself on paper-sized trace sets.
"""

import numpy as np

from repro.core.process import CorrelationProcess, ProcessParameters
from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.figure4 import (
    figure4_panels,
    figure4_shape_holds,
    render_figure4,
)
from repro.experiments.runner import REF_ORDER


def test_bench_correlation_process(benchmark, measured_trace_sets):
    t_refs, t_duts = measured_trace_sets
    process = CorrelationProcess(ProcessParameters())

    def run_one_pair():
        return process.run(
            t_refs["IP_A"], t_duts["DUT#1"], np.random.default_rng(0)
        )

    result = benchmark(run_one_pair)
    assert len(result) == 20


def test_figure4_panels_and_shape(benchmark, campaign, capsys):
    panels = benchmark.pedantic(
        figure4_panels, kwargs={"outcome": campaign}, rounds=1, iterations=1
    )
    print("\n=== Fig. 4 (ASCII reproduction) ===")
    print(render_figure4(panels))
    # The paper's reading: the matching DUT's cluster is the highest
    # and the tightest on every panel.
    assert figure4_shape_holds(panels)


def test_figure4_cluster_statistics(benchmark, campaign, capsys):
    benchmark.pedantic(
        campaign.correlation_sets, args=("IP_A",), rounds=1, iterations=1
    )
    print("\n=== Fig. 4 cluster statistics (mean / spread per DUT) ===")
    for ref in REF_ORDER:
        panel_sets = campaign.correlation_sets(ref)
        match = EXPECTED_MATCHES[ref]
        parts = []
        for dut, c in panel_sets.items():
            marker = "*" if dut == match else " "
            parts.append(f"{dut}{marker} {np.mean(c):+.3f}/{np.std(c):.4f}")
        print(f"{ref}: " + "  ".join(parts))
        # Match cluster: highest centre, smallest spread.
        means = {dut: float(np.mean(c)) for dut, c in panel_sets.items()}
        spreads = {dut: float(np.std(c)) for dut, c in panel_sets.items()}
        assert max(means, key=lambda d: means[d]) == match
        assert min(spreads, key=lambda d: spreads[d]) == match
