"""E10 — distinguisher quality over repeated campaigns.

Section V.A concludes that the variance of the correlation is the
better distinguisher.  This experiment scores the paper's two
distinguishers plus the library's extension distinguishers over
repeated noisy campaigns (fresh measurement noise each repeat, same
chips), reporting identification accuracy and worst-row confidence.
"""

import numpy as np
import pytest

from repro.core.distinguishers import ALL_DISTINGUISHERS
from repro.core.process import ProcessParameters
from repro.experiments.runner import CampaignConfig, run_campaign

PARAMS = ProcessParameters(k=40, m=16, n1=320, n2=6400)
N_REPEATS = 4


@pytest.fixture(scope="module")
def repeated_outcomes():
    outcomes = []
    for repeat in range(N_REPEATS):
        config = CampaignConfig(
            parameters=PARAMS,
            distinguishers=ALL_DISTINGUISHERS,
            measurement_seed=42 + 1000 * repeat,
            analysis_seed=7 + 1000 * repeat,
        )
        outcomes.append(run_campaign(config))
    return outcomes


def test_bench_full_distinguisher_campaign(benchmark):
    config = CampaignConfig(
        parameters=PARAMS,
        distinguishers=ALL_DISTINGUISHERS,
        measurement_seed=42,
        analysis_seed=7,
    )
    outcome = benchmark.pedantic(run_campaign, args=(config,), iterations=1, rounds=1)
    assert len(outcome.reports["IP_A"].verdicts) == len(ALL_DISTINGUISHERS)


def test_distinguisher_scoreboard(benchmark, repeated_outcomes, capsys):
    benchmark.pedantic(lambda: list(repeated_outcomes), rounds=1, iterations=1)
    print(f"\n=== E10: distinguisher quality over {N_REPEATS} campaigns ===")
    print(f"{'distinguisher':>16}  accuracy  min-confidence  mean-confidence")
    accuracies = {}
    for distinguisher in ALL_DISTINGUISHERS:
        name = distinguisher.name
        accs, confs = [], []
        for outcome in repeated_outcomes:
            accs.append(outcome.accuracy(name))
            confs.extend(outcome.confidence_distances(name).values())
        accuracy = float(np.mean(accs))
        accuracies[name] = accuracy
        print(
            f"{name:>16}  {accuracy:8.2f}  {min(confs):13.1f}%  "
            f"{np.mean(confs):14.1f}%"
        )
    # Paper's two distinguishers both identify perfectly at these
    # parameters...
    assert accuracies["higher-mean"] == 1.0
    assert accuracies["lower-variance"] == 1.0


def test_variance_confidence_dominates(benchmark, repeated_outcomes):
    benchmark.pedantic(lambda: list(repeated_outcomes), rounds=1, iterations=1)
    # ...but the variance distinguisher's confidence distance is far
    # larger than the mean's on every row of every repeat.
    for outcome in repeated_outcomes:
        mean_confs = outcome.confidence_distances("higher-mean")
        var_confs = outcome.confidence_distances("lower-variance")
        for ref in mean_confs:
            assert var_confs[ref] > mean_confs[ref]


def test_extension_distinguishers_are_sane(benchmark, repeated_outcomes):
    benchmark.pedantic(lambda: list(repeated_outcomes), rounds=1, iterations=1)
    # The extensions must at least beat chance (0.25) clearly.
    for distinguisher in ALL_DISTINGUISHERS:
        accs = [o.accuracy(distinguisher.name) for o in repeated_outcomes]
        assert np.mean(accs) >= 0.75
