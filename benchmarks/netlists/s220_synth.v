// s220_synth — synthetic sequential benchmark (16 registers, 220 gates).
// regenerate with `python benchmarks/make_corpus.py`.
module s220_synth (clk, rst, G1, G2, G3, G4, G5, G6, G7, G8, G9, G10, G223, G224, G225, G226, G227, G228, G229, G230);

  input clk, rst;
  input G1, G2, G3, G4, G5, G6, G7, G8;
  input G9, G10;
  output G223, G224, G225, G226, G227, G228, G229, G230;

  wire G11, G12, G13, G14, G15, G16, G17, G18;
  wire G19, G20, G21, G22, G23, G24, G25, G26;
  wire G27, G28, G29, G30, G31, G32, G33, G34;
  wire G35, G36, G37, G38, G39, G40, G41, G42;
  wire G43, G44, G45, G46, G47, G48, G49, G50;
  wire G51, G52, G53, G54, G55, G56, G57, G58;
  wire G59, G60, G61, G62, G63, G64, G65, G66;
  wire G67, G68, G69, G70, G71, G72, G73, G74;
  wire G75, G76, G77, G78, G79, G80, G81, G82;
  wire G83, G84, G85, G86, G87, G88, G89, G90;
  wire G91, G92, G93, G94, G95, G96, G97, G98;
  wire G99, G100, G101, G102, G103, G104, G105, G106;
  wire G107, G108, G109, G110, G111, G112, G113, G114;
  wire G115, G116, G117, G118, G119, G120, G121, G122;
  wire G123, G124, G125, G126, G127, G128, G129, G130;
  wire G131, G132, G133, G134, G135, G136, G137, G138;
  wire G139, G140, G141, G142, G143, G144, G145, G146;
  wire G147, G148, G149, G150, G151, G152, G153, G154;
  wire G155, G156, G157, G158, G159, G160, G161, G162;
  wire G163, G164, G165, G166, G167, G168, G169, G170;
  wire G171, G172, G173, G174, G175, G176, G177, G178;
  wire G179, G180, G181, G182, G183, G184, G185, G186;
  wire G187, G188, G189, G190, G191, G192, G193, G194;
  wire G195, G196, G197, G198, G199, G200, G201, G202;
  wire G203, G204, G205, G206, G207, G208, G209, G210;
  wire G211, G212, G213, G214, G215, G216, G217, G218;
  wire G219, G220, G221, G222;
  reg R1, R2, R3, R4, R5, R6, R7, R8;
  reg R9, R10, R11, R12, R13, R14, R15, R16;

  nor U1 (G11, G3, R16, R15);
  xor U2 (G12, G7, G8);
  and U3 (G13, G5, G12, G10);
  nand U4 (G14, R3, G10);
  nor U5 (G15, R16, G14);
  nand U6 (G16, R7, G10);
  nand U7 (G17, R10, G12);
  nand U8 (G18, R1, G16, G12);
  or U9 (G19, R12, G11);
  nand U10 (G20, G13, R16);
  nor U11 (G21, R4, R12);
  or U12 (G22, G15, G19, R7);
  not U13 (G23, R16);
  nand U14 (G24, G16, G20);
  xnor U15 (G25, G21, G13);
  or U16 (G26, R12, G21);
  nand U17 (G27, R16, G14);
  nor U18 (G28, R10, G27);
  nand U19 (G29, R14, G21);
  nand U20 (G30, G23, G22, R16);
  xor U21 (G31, G11, G22, G21);
  nand U22 (G32, G26, G21);
  nand U23 (G33, R16, G28, G24);
  xnor U24 (G34, G25, G26, G13);
  nor U25 (G35, G17, G18);
  or U26 (G36, G30, G31);
  and U27 (G37, G28, G21);
  nand U28 (G38, G33, G20);
  xor U29 (G39, G35, G34, G18);
  nand U30 (G40, G37, G31);
  or U31 (G41, G32, G20, G40);
  and U32 (G42, G37, G28);
  not U33 (G43, G31);
  xnor U34 (G44, G41, G33);
  nand U35 (G45, G39, G38, G22);
  and U36 (G46, G32, G39);
  or U37 (G47, G42, G37);
  and U38 (G48, G26, G43);
  xor U39 (G49, G31, G38);
  xnor U40 (G50, G47, G29, G35);
  nand U41 (G51, G27, G38);
  and U42 (G52, G31, G43);
  or U43 (G53, G40, G49);
  nor U44 (G54, G48, G51, G38);
  nand U45 (G55, G53, G40, G47);
  not U46 (G56, G44);
  and U47 (G57, G34, G36);
  or U48 (G58, G39, G51, G37);
  xnor U49 (G59, G36, G43);
  nand U50 (G60, G38, G55);
  xor U51 (G61, G59, G41);
  nor U52 (G62, G45, G42);
  or U53 (G63, G46, G49);
  xnor U54 (G64, G62, G58, G54);
  xor U55 (G65, G59, G53, G56);
  xnor U56 (G66, G48, G56);
  nand U57 (G67, G66, G57);
  not U58 (G68, G53);
  not U59 (G69, G66);
  xor U60 (G70, G68, G66, G57);
  nand U61 (G71, G50, G57);
  xnor U62 (G72, G63, G64);
  nor U63 (G73, G50, G65);
  and U64 (G74, G51, G59);
  nand U65 (G75, G60, G58);
  nand U66 (G76, G52, G70);
  and U67 (G77, G63, G58, G76);
  and U68 (G78, G77, G57);
  nor U69 (G79, G68, G60);
  and U70 (G80, G75, G56);
  or U71 (G81, G61, G77, G72);
  and U72 (G82, G60, G58);
  not U73 (G83, G73);
  or U74 (G84, G66, G65, G60);
  nor U75 (G85, G83, G81, G62);
  nand U76 (G86, G62, G65);
  not U77 (G87, G85);
  or U78 (G88, G67, G73);
  or U79 (G89, G81, G77, G83);
  or U80 (G90, G85, G81, G72);
  nand U81 (G91, G83, G85);
  xnor U82 (G92, G81, G88, G72);
  nor U83 (G93, G91, G70);
  nand U84 (G94, G75, G87);
  and U85 (G95, G94, G77);
  nor U86 (G96, G81, G77, G86);
  and U87 (G97, G96, G81);
  not U88 (G98, G82);
  nor U89 (G99, G96, G95, G77);
  not U90 (G100, G88);
  nand U91 (G101, G77, G83);
  nand U92 (G102, G99, G80);
  not U93 (G103, G88);
  nand U94 (G104, G97, G92);
  nand U95 (G105, G103, G98);
  or U96 (G106, G104, G96);
  or U97 (G107, G83, G103);
  or U98 (G108, G99, G91);
  nor U99 (G109, G104, G86);
  xor U100 (G110, G104, G105, G98);
  or U101 (G111, G107, G91);
  nand U102 (G112, G108, G93);
  not U103 (G113, G96);
  and U104 (G114, G101, G98);
  nor U105 (G115, G113, G108);
  xor U106 (G116, G109, G100);
  or U107 (G117, G116, G95);
  xnor U108 (G118, G104, G112);
  nor U109 (G119, G101, G95);
  or U110 (G120, G106, G98);
  nand U111 (G121, G107, G118);
  xnor U112 (G122, G119, G111);
  nor U113 (G123, G102, G112);
  nand U114 (G124, G121, G119);
  and U115 (G125, G104, G111);
  or U116 (G126, G112, G117);
  nand U117 (G127, G114, G119, G106);
  nand U118 (G128, G119, G107);
  nand U119 (G129, G123, G124, G112);
  not U120 (G130, G111);
  xnor U121 (G131, G116, G110);
  nor U122 (G132, G110, G113);
  xor U123 (G133, G127, G116, G126);
  xnor U124 (G134, G117, G122);
  nand U125 (G135, G129, G131);
  or U126 (G136, G134, G132);
  nor U127 (G137, G136, G135);
  nand U128 (G138, G133, G122);
  not U129 (G139, G135);
  and U130 (G140, G137, G135, G138);
  xnor U131 (G141, G138, G135);
  nand U132 (G142, G130, G141);
  and U133 (G143, G141, G123);
  nand U134 (G144, G120, G138, G131);
  nor U135 (G145, G131, G144);
  nand U136 (G146, G131, G142, G139);
  and U137 (G147, G134, G137, G125);
  or U138 (G148, G130, G137);
  xnor U139 (G149, G130, G140);
  or U140 (G150, G126, G134);
  or U141 (G151, G146, G150);
  not U142 (G152, G146);
  or U143 (G153, G135, G151, G152);
  nand U144 (G154, G135, G138, G152);
  nand U145 (G155, G132, G140);
  nand U146 (G156, G144, G134);
  nand U147 (G157, G138, G155, G135);
  or U148 (G158, G150, G147);
  nand U149 (G159, G148, G150);
  and U150 (G160, G145, G156, G152);
  nor U151 (G161, G140, G138);
  nor U152 (G162, G145, G154);
  nor U153 (G163, G159, G145, G148);
  and U154 (G164, G149, G162);
  or U155 (G165, G156, G157);
  nor U156 (G166, G156, G148);
  nand U157 (G167, G145, G165);
  nand U158 (G168, G157, G153);
  not U159 (G169, G163);
  nand U160 (G170, G161, G160);
  and U161 (G171, G153, G162);
  nand U162 (G172, G153, G156);
  nand U163 (G173, G152, G156, G169);
  nand U164 (G174, G150, G172, G156);
  or U165 (G175, G173, G155, G169);
  xnor U166 (G176, G162, G156);
  nor U167 (G177, G168, G161);
  and U168 (G178, G175, G171);
  and U169 (G179, G170, G169, G164);
  and U170 (G180, G166, G163);
  xor U171 (G181, G159, G160);
  not U172 (G182, G163);
  and U173 (G183, G176, G177, G166);
  xor U174 (G184, G161, G175);
  nand U175 (G185, G180, G165);
  nand U176 (G186, G167, G164, G169);
  and U177 (G187, G179, G164);
  xnor U178 (G188, G179, G165);
  xor U179 (G189, G188, G185);
  nand U180 (G190, G183, G173);
  or U181 (G191, G182, G172, G173);
  and U182 (G192, G183, G186, G174);
  nand U183 (G193, G185, G189);
  xor U184 (G194, G192, G179, G181);
  nor U185 (G195, G173, G172, G193);
  xor U186 (G196, G187, G182, G174);
  xor U187 (G197, G177, G185);
  nand U188 (G198, G177, G191);
  or U189 (G199, G176, G198);
  not U190 (G200, G181);
  xor U191 (G201, G184, G179);
  nor U192 (G202, G183, G182);
  or U193 (G203, G189, G184);
  xor U194 (G204, G202, G194);
  nand U195 (G205, G186, G191);
  or U196 (G206, G202, G183);
  and U197 (G207, G195, G201, G202);
  nand U198 (G208, G204, G193);
  xnor U199 (G209, G197, G203);
  nand U200 (G210, G197, G208, G191);
  xor U201 (G211, G194, G192);
  and U202 (G212, G210, G190);
  xor U203 (G213, G189, G209);
  not U204 (G214, G208);
  xor U205 (G215, G191, G210);
  or U206 (G216, G195, G198);
  nand U207 (G217, G199, G204, G196);
  nor U208 (G218, G202, G213);
  and U209 (G219, G202, G207);
  nand U210 (G220, G218, G206, G200);
  or U211 (G221, G218, G202);
  or U212 (G222, G221, G202);
  and U213 (G223, G220, G200, G205);
  nand U214 (G224, G207, G210);
  not U215 (G225, G220);
  and U216 (G226, G212, G221);
  nand U217 (G227, G208, G226, G219);
  or U218 (G228, G220, G227);
  or U219 (G229, G225, G218);
  nand U220 (G230, G216, G229);

  always @(posedge clk) begin // R1_dff
    if (rst)
      R1 <= 1'd0;
    else
      R1 <= G196;
  end
  always @(posedge clk) begin // R2_dff
    if (rst)
      R2 <= 1'd1;
    else
      R2 <= G208;
  end
  always @(posedge clk) begin // R3_dff
    if (rst)
      R3 <= 1'd1;
    else
      R3 <= G137;
  end
  always @(posedge clk) begin // R4_dff
    if (rst)
      R4 <= 1'd1;
    else
      R4 <= G222;
  end
  always @(posedge clk) begin // R5_dff
    if (rst)
      R5 <= 1'd1;
    else
      R5 <= G124;
  end
  always @(posedge clk) begin // R6_dff
    if (rst)
      R6 <= 1'd1;
    else
      R6 <= G168;
  end
  always @(posedge clk) begin // R7_dff
    if (rst)
      R7 <= 1'd1;
    else
      R7 <= G207;
  end
  always @(posedge clk) begin // R8_dff
    if (rst)
      R8 <= 1'd1;
    else
      R8 <= G213;
  end
  always @(posedge clk) begin // R9_dff
    if (rst)
      R9 <= 1'd1;
    else
      R9 <= G123;
  end
  always @(posedge clk) begin // R10_dff
    if (rst)
      R10 <= 1'd0;
    else
      R10 <= G202;
  end
  always @(posedge clk) begin // R11_dff
    if (rst)
      R11 <= 1'd0;
    else
      R11 <= G152;
  end
  always @(posedge clk) begin // R12_dff
    if (rst)
      R12 <= 1'd0;
    else
      R12 <= G167;
  end
  always @(posedge clk) begin // R13_dff
    if (rst)
      R13 <= 1'd1;
    else
      R13 <= G151;
  end
  always @(posedge clk) begin // R14_dff
    if (rst)
      R14 <= 1'd1;
    else
      R14 <= G205;
  end
  always @(posedge clk) begin // R15_dff
    if (rst)
      R15 <= 1'd1;
    else
      R15 <= G218;
  end
  always @(posedge clk) begin // R16_dff
    if (rst)
      R16 <= 1'd0;
    else
      R16 <= G178;
  end

endmodule
