"""E12/E13 (extensions) — bench-fault robustness and screening ROC.

E12 injects realistic measurement faults (clipping, ADC dropout, gain
drift, trigger jitter) into the DUT traces of a matching pair and
reports the surviving correlation: the scheme absorbs amplitude faults
(k-averaging + Pearson invariances) but requires aligned traces —
exactly why the paper resets every FSM before measuring.

E13 turns the counterfeit-screening decision into an ROC curve at this
reproduction's operating point and sweeps the genuine/counterfeit
correlation gap.
"""

import numpy as np
import pytest

from repro.acquisition.bench import MeasurementBench
from repro.acquisition.device import Device
from repro.acquisition.alignment import align_traces
from repro.acquisition.faults import (
    clip_traces,
    desynchronize,
    drop_samples,
    gain_drift,
)
from repro.analysis.roc import detection_gap_sweep, screening_roc
from repro.core.process import CorrelationProcess, ProcessParameters
from repro.experiments.designs import build_paper_ip
from repro.power.models import PowerModel

PARAMS = ProcessParameters(k=50, m=20, n1=400, n2=4000)


@pytest.fixture(scope="module")
def matching_sets():
    refd = Device("R", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
    dut = Device("D", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
    bench = MeasurementBench(seed=4)
    return bench.measure(refd, PARAMS.n1), bench.measure(dut, PARAMS.n2)


def mean_rho(t_ref, t_dut):
    process = CorrelationProcess(PARAMS, strict=False)
    return process.run(t_ref, t_dut, np.random.default_rng(0)).mean


def test_bench_fault_injection(benchmark, matching_sets, capsys):
    t_ref, t_dut = matching_sets
    baseline = mean_rho(t_ref, t_dut)
    faults = {
        "none (baseline)": lambda t: t,
        "clipping @ 2.5 sigma": lambda t: clip_traces(t, 2.5),
        "ADC dropout 5%": lambda t: drop_samples(t, 0.05, rng=5),
        "gain drift 30%": lambda t: gain_drift(t, 0.3),
        "trigger jitter ±4 samples": lambda t: desynchronize(t, 4, rng=6),
        "trigger jitter ±100 samples": lambda t: desynchronize(t, 100, rng=7),
        "jitter ±4 then realignment": lambda t: align_traces(
            desynchronize(t, 4, rng=6), max_shift=8
        )[0],
    }
    results = benchmark.pedantic(
        lambda: {
            label: mean_rho(t_ref, fault(t_dut)) for label, fault in faults.items()
        },
        rounds=1,
        iterations=1,
    )
    print("\n=== E12: bench-fault robustness (matching pair) ===")
    for label, rho in results.items():
        print(f"  {label:>28}: mean rho = {rho:+.3f}")
    # Amplitude faults are absorbed; heavy desynchronisation is fatal;
    # cross-correlation realignment rescues moderate jitter.
    assert results["clipping @ 2.5 sigma"] > baseline - 0.1
    assert results["ADC dropout 5%"] > baseline - 0.1
    assert results["gain drift 30%"] > baseline - 0.05
    assert results["trigger jitter ±100 samples"] < baseline - 0.3
    assert (
        results["jitter ±4 then realignment"]
        > results["trigger jitter ±4 samples"] + 0.1
    )


def test_bench_screening_roc(benchmark, capsys):
    curve = benchmark.pedantic(
        screening_roc, kwargs={"rng": 0}, rounds=1, iterations=1
    )
    threshold, fpr, tpr = curve.operating_point(max_fpr=0.001)
    print("\n=== E13: counterfeit-screening ROC (model-based) ===")
    print(f"operating point (genuine 0.98 vs counterfeit 0.93, m=20, l=1024):")
    print(f"  AUC = {curve.auc:.4f}")
    print(f"  at FPR <= 0.1%: threshold = {threshold:.4f}, TPR = {tpr:.3f}")
    assert curve.auc > 0.999
    assert tpr > 0.99


def test_bench_detection_gap_sweep(benchmark, capsys):
    # The mean-score std at this operating point is ~3e-4, so the
    # transition from chance to certainty happens over sub-milli gaps.
    gaps = [0.0001, 0.0003, 0.001, 0.003, 0.01]
    sweep = benchmark.pedantic(
        detection_gap_sweep,
        args=(gaps,),
        kwargs={"n_samples": 1000, "rng": 2},
        rounds=1,
        iterations=1,
    )
    print("\n=== E13': AUC vs genuine/counterfeit correlation gap ===")
    for gap, auc in sweep:
        print(f"  gap = {gap:.4f}: AUC = {auc:.4f}")
    aucs = [auc for _gap, auc in sweep]
    assert all(b >= a - 0.01 for a, b in zip(aucs, aucs[1:]))
    assert aucs[-1] > 0.999
