"""E9 — what the leakage component buys (paper Sections I, IV.A).

The paper claims the side-channel leakage component (a) keys the
signature so identical FSMs with different Kw do not collide, and
(b) adds the non-linearity needed on "worst case", extremely linear
FSMs.  This ablation removes the component and shows the Gray-counter
IPs (IP_B, IP_C, IP_D — identical FSMs) become indistinguishable.
"""

import pytest

from repro.core.process import ProcessParameters
from repro.experiments.runner import CampaignConfig, run_campaign

PARAMS = ProcessParameters(k=40, m=16, n1=320, n2=6400)
GRAY_ROWS = ("IP_B", "IP_C", "IP_D")
GRAY_DUTS = ("DUT#2", "DUT#3", "DUT#4")


def run_variant(watermarked, seed=42):
    config = CampaignConfig(
        parameters=PARAMS,
        watermarked=watermarked,
        variation=None,  # isolate the leakage component's effect
        measurement_seed=seed,
        analysis_seed=seed + 1,
    )
    return run_campaign(config)


@pytest.fixture(scope="module")
def with_wm():
    return run_variant(True)


@pytest.fixture(scope="module")
def without_wm():
    return run_variant(False)


def test_bench_unwatermarked_campaign(benchmark):
    outcome = benchmark.pedantic(run_variant, args=(False,), iterations=1, rounds=1)
    assert set(outcome.reports) == {"IP_A", "IP_B", "IP_C", "IP_D"}


def test_leakage_ablation(benchmark, with_wm, without_wm, capsys):
    benchmark.pedantic(lambda: (with_wm, without_wm), rounds=1, iterations=1)
    print("\n=== E9: with vs without the leakage component ===")
    for label, outcome in (("with", with_wm), ("without", without_wm)):
        print(f"-- {label} leakage component --")
        for ref in GRAY_ROWS:
            means = outcome.means[ref]
            row = "  ".join(f"{d}={means[d]:+.3f}" for d in GRAY_DUTS)
            print(f"  {ref}: {row}")

    # With the watermark: every gray row identified correctly.
    assert with_wm.all_correct

    # Without it, the three gray designs are byte-identical: their
    # means collide within measurement noise on every gray row.
    for ref in GRAY_ROWS:
        means = without_wm.means[ref]
        gray_means = [means[d] for d in GRAY_DUTS]
        assert max(gray_means) - min(gray_means) < 0.02


def test_keyed_separation_with_watermark(benchmark, with_wm):
    benchmark.pedantic(lambda: with_wm, rounds=1, iterations=1)
    # With Kw in place, the matching gray DUT beats the other gray DUTs
    # on the mean by a visible margin.
    expected = {"IP_B": "DUT#2", "IP_C": "DUT#3", "IP_D": "DUT#4"}
    for ref, match in expected.items():
        means = with_wm.means[ref]
        others = [means[d] for d in GRAY_DUTS if d != match]
        assert means[match] > max(others) + 0.01


def test_binary_vs_gray_distinguishable_even_unmarked(benchmark, without_wm):
    benchmark.pedantic(lambda: without_wm, rounds=1, iterations=1)
    # The FSM difference (binary vs gray counter) survives without the
    # watermark — it is the *keys* that need the component.
    means_a = without_wm.means["IP_A"]
    assert means_a["DUT#1"] > max(means_a[d] for d in GRAY_DUTS)
