"""Benchmark: cross-scenario artifact sharing on an analysis-axis grid.

The acquisition step ``Pw(device, n)`` dominates a campaign, so a
sweep over *analysis-side* axes (``parameters.k/m/n1/n2``) pays for
the same fleet manufacture and the same trace matrices once per
scenario unless artifacts are shared.  This benchmark runs one such
grid cold (no sharing) and shared (process-wide
:class:`~repro.experiments.artifacts.ArtifactCache`), verifies the two
stores are byte-identical, and records the scenario throughputs plus
the cache's peak trace-matrix footprint in ``BENCH_campaign.json``.
Future PRs must not regress these numbers (nor ``BENCH_engine.json``
or ``BENCH_sweep.json``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.experiments.artifacts import (
    ArtifactOptions,
    clear_process_artifact_cache,
    process_artifact_cache,
)
from repro.sweeps import GridAxis, SweepSpec, SweepStore, run_sweep

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

#: Robustness floor asserted by the test (the acceptance target is 5x;
#: the margin keeps the suite green on loaded CI machines).
MIN_ASSERTED_SPEEDUP = 3.0

#: Analysis-axis-only grid: k x m x n2 with the fleet/measurement tiers
#: pinned, so every scenario can share one fleet and one acquisition
#: stream (the n2=1500 scenarios slice the n2=6000 matrices by prefix).
#: The working set (4 x 6000-trace DUT matrices + references, ~203 MB)
#: stays inside the cache's default 256 MiB budget.
GRID = (
    GridAxis("parameters.k", (6, 10, 14, 18)),
    GridAxis("parameters.m", (8, 16)),
    GridAxis("parameters.n2", (6000, 1500)),
)

BASE = {
    "parameters.n1": 200,
    "fleet_seed": 2014,
    "measurement_seed": 42,
}


def _spec() -> SweepSpec:
    return SweepSpec(name="bench_campaign", grid=GRID, base=dict(BASE), seed=3)


def _store_digest(root: str) -> str:
    digest = hashlib.sha256()
    for entry in sorted(os.listdir(root)):
        digest.update(entry.encode())
        with open(os.path.join(root, entry), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def test_bench_campaign_sharing(capsys):
    n_scenarios = _spec().n_scenarios
    roots = []

    def timed_sweep(artifacts):
        root = tempfile.mkdtemp(prefix="bench_campaign_")
        roots.append(root)
        start = time.perf_counter()
        report = run_sweep(
            _spec(), SweepStore(root), n_workers=1, artifacts=artifacts
        )
        seconds = time.perf_counter() - start
        assert report.n_executed == n_scenarios
        return root, seconds

    try:
        cold_root, cold_seconds = timed_sweep(None)
        clear_process_artifact_cache()
        options = ArtifactOptions()
        shared_root, shared_seconds = timed_sweep(options)
        # Steady state: the cache is warm, a further store (e.g. an
        # extended grid or another repeat surface) pays analysis only.
        warm_root, warm_seconds = timed_sweep(options)
        stats = process_artifact_cache(options).stats

        # Sharing must be invisible in the results.
        cold_digest = _store_digest(cold_root)
        assert cold_digest == _store_digest(shared_root)
        assert cold_digest == _store_digest(warm_root)
        # One fleet, one acquisition per device; everything else reused.
        assert stats.fleet_misses == 1
        assert stats.trace_hits > 0

        speedup = cold_seconds / shared_seconds
        summary = {
            "grid": "parameters.k x m x n2 (analysis axes only)",
            "n_scenarios": n_scenarios,
            "cold_seconds": round(cold_seconds, 4),
            "shared_seconds": round(shared_seconds, 4),
            "warm_shared_seconds": round(warm_seconds, 4),
            "cold_scenarios_per_second": round(n_scenarios / cold_seconds, 4),
            "shared_scenarios_per_second": round(
                n_scenarios / shared_seconds, 4
            ),
            "warm_shared_scenarios_per_second": round(
                n_scenarios / warm_seconds, 4
            ),
            "shared_speedup": round(speedup, 2),
            "warm_shared_speedup": round(cold_seconds / warm_seconds, 2),
            "trace_acquisitions": stats.trace_misses,
            "trace_reuses": stats.trace_hits,
            "peak_trace_matrix_bytes": stats.peak_bytes,
            "bytes_acquired": stats.bytes_acquired,
        }
        RESULT_PATH.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        with capsys.disabled():
            print(f"\ncampaign bench: {summary}")
        assert speedup >= MIN_ASSERTED_SPEEDUP
    finally:
        clear_process_artifact_cache()
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)
