"""E8 — the single-reference design choice (paper Section III).

"Only one k-average trace (A_RefD) is used as reference in this
computation process; this ensures that all variations between the m
elements of the set C are due only to the DUT and not to the RefD."

This ablation quantifies the claim: drawing a fresh reference per
coefficient injects RefD selection noise into the C set and inflates
its variance — directly degrading the variance distinguisher.
"""

import numpy as np
import pytest

from repro.core.process import CorrelationProcess, ProcessParameters

PARAMS = ProcessParameters(k=50, m=20, n1=400, n2=10_000)


@pytest.fixture(scope="module")
def matching_pair(measured_trace_sets):
    t_refs, t_duts = measured_trace_sets
    return t_refs["IP_B"], t_duts["DUT#2"]


def c_set_variances(t_ref, t_dut, single_reference, n_repeats=8, seed0=0):
    process = CorrelationProcess(PARAMS, single_reference=single_reference)
    variances = []
    for repeat in range(n_repeats):
        rng = np.random.default_rng(seed0 + repeat)
        variances.append(process.run(t_ref, t_dut, rng).variance)
    return np.asarray(variances)


def test_bench_single_reference_run(benchmark, matching_pair):
    t_ref, t_dut = matching_pair
    process = CorrelationProcess(PARAMS, single_reference=True)
    result = benchmark(process.run, t_ref, t_dut, 0)
    assert len(result) == 20


def test_reference_ablation(benchmark, matching_pair, capsys):
    t_ref, t_dut = matching_pair
    single = benchmark.pedantic(
        c_set_variances,
        args=(t_ref, t_dut),
        kwargs={"single_reference": True},
        rounds=1,
        iterations=1,
    )
    fresh = c_set_variances(t_ref, t_dut, single_reference=False, seed0=100)
    print("\n=== E8: single shared A_RefD vs fresh reference per rho ===")
    print(f"single reference: median v(C) = {np.median(single):.3e}")
    print(f"fresh references: median v(C) = {np.median(fresh):.3e}")
    print(f"variance inflation factor: {np.median(fresh) / np.median(single):.2f}x")
    # The paper's design choice must strictly reduce the C-set variance.
    assert np.median(single) < np.median(fresh)


def test_reference_choice_does_not_move_the_mean(benchmark, matching_pair):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t_ref, t_dut = matching_pair
    single = CorrelationProcess(PARAMS, single_reference=True)
    fresh = CorrelationProcess(PARAMS, single_reference=False)
    mean_single = single.run(t_ref, t_dut, np.random.default_rng(1)).mean
    mean_fresh = fresh.run(t_ref, t_dut, np.random.default_rng(2)).mean
    # Both estimate the same underlying correlation level.
    assert abs(mean_single - mean_fresh) < 0.02
