"""E11 (extension) — adversarial robustness of the verification scheme.

Beyond the paper's evaluation: what does an active adversary do to the
scheme, and what does the defender see?

* **masking**: injected noise vs identification accuracy, and the
  defender's counter-move of raising k;
* **template key search**: an 8-bit Kw is recoverable by a 256-template
  CPA — quantified honestly, with the conclusion the paper itself
  draws: security rests on removal difficulty and legal proof, not key
  secrecy;
* **key collisions**: exhaustive cross-key switching correlations —
  the collision-resistance claim of Section IV.A, plus this
  reproduction's structural finding that the worst pairs are
  Hamming-neighbour keys.
"""


from repro.acquisition.bench import acquire_traces
from repro.acquisition.device import Device
from repro.analysis.collisions import collision_summary
from repro.attacks.forgery import template_key_search
from repro.attacks.masking import defender_k_escalation, masking_sweep
from repro.experiments.designs import KW1, build_paper_ip
from repro.power.models import PowerModel


def test_bench_masking_sweep_point(benchmark):
    points = benchmark.pedantic(
        masking_sweep, args=([1.0],), kwargs={"seed": 5}, rounds=1, iterations=1
    )
    assert points[0].variance_accuracy == 1.0


def test_masking_operating_curve(benchmark, capsys):
    sigmas = [0.5, 1.0, 2.0, 4.0, 8.0]
    points = benchmark.pedantic(
        masking_sweep, args=(sigmas,), kwargs={"seed": 5}, rounds=1, iterations=1
    )
    print("\n=== E11a: masking noise vs identification accuracy ===")
    print(f"{'sigma':>6}  {'mean-acc':>8}  {'var-acc':>8}  {'match rho':>9}")
    for point in points:
        print(
            f"{point.noise_sigma:>6.1f}  {point.mean_accuracy:>8.2f}  "
            f"{point.variance_accuracy:>8.2f}  {point.matching_mean:>9.3f}"
        )
    # Low noise: perfect identification; the matching correlation
    # degrades monotonically as the attacker spends more noise.
    assert points[0].mean_accuracy == 1.0
    assert points[0].variance_accuracy == 1.0
    means = [p.matching_mean for p in points]
    assert all(b < a for a, b in zip(means, means[1:]))


def test_defender_k_escalation(benchmark, capsys):
    attack_sigma = 2.0
    outcomes = benchmark.pedantic(
        defender_k_escalation,
        args=(attack_sigma, (10, 40, 160)),
        rounds=1,
        iterations=1,
    )
    print(f"\n=== E11a': defender raises k under attack sigma = {attack_sigma} ===")
    for k, point in outcomes.items():
        print(
            f"  k={k:>4}: mean-acc={point.mean_accuracy:.2f} "
            f"var-acc={point.variance_accuracy:.2f} "
            f"match rho={point.matching_mean:.3f}"
        )
    # Averaging depth wins the arms race: k >> sigma^2 restores the
    # variance distinguisher; the mean distinguisher holds throughout.
    assert outcomes[160].variance_accuracy == 1.0
    assert outcomes[160].variance_accuracy >= outcomes[10].variance_accuracy
    assert all(point.mean_accuracy == 1.0 for point in outcomes.values())


def test_bench_template_key_search(benchmark, capsys):
    device = Device("d", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
    traces = acquire_traces(device, 300, rng=1)
    result = benchmark.pedantic(
        template_key_search,
        args=(traces, list(range(256)), KW1),
        kwargs={"samples_per_cycle": 4, "n_average": 300},
        rounds=1,
        iterations=1,
    )
    print("\n=== E11b: 256-template CPA on the 8-bit watermark key ===")
    print(
        f"true key 0x{result.true_key:02X} recovered: {result.succeeded} "
        f"(rank {result.rank_of_true_key()}, margin {result.margin:.3f})"
    )
    print(
        "conclusion: Kw is not a cryptographic secret against a physical "
        "adversary; the scheme's strength is removal difficulty + legal proof."
    )
    assert result.succeeded


def test_bench_key_collision_census(benchmark, capsys):
    summary = benchmark.pedantic(
        collision_summary, args=(list(range(256)),), rounds=1, iterations=1
    )
    print("\n=== E11c: exhaustive cross-key switching correlations ===")
    print(
        f"{summary.n_pairs} key pairs: mean rho = {summary.mean:+.4f} "
        f"(std {summary.std:.4f}), range [{summary.minimum:+.3f}, "
        f"{summary.maximum:+.3f}]"
    )
    a, b = summary.worst_pair
    print(
        f"worst pair: 0x{a:02X} / 0x{b:02X} "
        f"(Hamming distance {bin(a ^ b).count('1')})"
    )
    # The paper's collision claim: no pair approaches a matching pair's
    # rho ~ 1; and the structural finding: the worst offenders are
    # Hamming-neighbour keys.
    assert summary.maximum < 0.6
    assert bin(a ^ b).count("1") == 1
