"""Benchmark: scenario-sweep throughput and store-hit latency.

Measures the sweep runner on a reduced-parameter 12-scenario grid:
cold execution throughput (scenarios/second, single worker — the
multiprocess path has identical per-scenario cost plus pool overhead)
and the warm path where every scenario is served from the
content-addressed store.  Numbers land in ``BENCH_sweep.json`` so
future orchestration PRs (batched engine execution, remote workers)
can show their effect on the same surface.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile

import pytest

from repro.sweeps import GridAxis, SweepSpec, SweepStore, run_sweep

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

BASE = {
    "parameters.k": 8,
    "parameters.m": 8,
    "parameters.n1": 64,
    "parameters.n2": 256,
}


def _spec() -> SweepSpec:
    return SweepSpec(
        name="bench",
        grid=(
            GridAxis("noise.sigma", (0.5, 1.0, 1.5)),
            GridAxis("parameters.n2", (256, 512)),
            GridAxis("attack", ("none", "strip")),
        ),
        base={k: v for k, v in BASE.items() if k != "parameters.n2"},
        seed=1,
    )


@pytest.fixture(scope="module")
def results():
    return {}


def test_bench_sweep_cold(benchmark, results):
    roots = []

    def run_cold():
        root = tempfile.mkdtemp(prefix="bench_sweep_")
        roots.append(root)
        return run_sweep(_spec(), SweepStore(root), n_workers=1)

    report = benchmark.pedantic(run_cold, rounds=3, iterations=1)
    for root in roots:
        shutil.rmtree(root, ignore_errors=True)
    assert report.n_executed == 12
    results["cold_seconds"] = benchmark.stats.stats.mean
    results["scenarios_per_second"] = 12 / benchmark.stats.stats.mean


def test_bench_sweep_warm_store(benchmark, results):
    root = tempfile.mkdtemp(prefix="bench_sweep_")
    store = SweepStore(root)
    run_sweep(_spec(), store, n_workers=1)

    report = benchmark.pedantic(
        lambda: run_sweep(_spec(), store, n_workers=1), rounds=3, iterations=1
    )
    shutil.rmtree(root, ignore_errors=True)
    assert report.n_executed == 0 and report.n_cached == 12
    results["warm_seconds"] = benchmark.stats.stats.mean

    summary = {
        "grid": "noise.sigma x parameters.n2 x attack (12 scenarios, quick)",
        **{key: round(value, 4) for key, value in results.items()},
    }
    BENCH_FILE.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\nsweep bench: {summary}")
