"""Benchmark: scenario-sweep throughput, store-hit latency, pooling.

Measures the sweep runner on reduced-parameter grids:

* cold execution throughput (scenarios/second, single worker — the
  multiprocess path has identical per-scenario cost plus pool
  overhead) and the warm path where every scenario is served from the
  content-addressed store;
* the PR 5 *pooled* executor — cross-campaign batch pool + artifact
  sharing + campaign-outcome memoisation — against the plain unpooled
  executor on a shape-homogeneous analysis grid (one fleet, one
  measurement tier, analysis axes only), cold-for-cold, plus the
  repeat-study regime where every campaign outcome is memoised.

Numbers land in ``BENCH_sweep.json``; the CI regression gate
(``benchmarks/check_bench.py``) holds future PRs to them.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile

import pytest

from repro.acquisition.device import clear_fleet_activity_cache
from repro.experiments.artifacts import (
    ArtifactOptions,
    clear_process_artifact_cache,
)
from repro.hdl.batch_pool import BatchPoolOptions
from repro.hdl.engine import clear_program_cache
from repro.sweeps import GridAxis, SweepSpec, SweepStore, run_sweep

BENCH_FILE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

BASE = {
    "parameters.k": 8,
    "parameters.m": 8,
    "parameters.n1": 64,
    "parameters.n2": 256,
}

#: The pooled comparison must be cold-for-cold: every round starts from
#: an empty process (activity, program and artifact caches), exactly
#: like a fresh worker.
def _clear_process_state():
    clear_fleet_activity_cache()
    clear_program_cache()
    clear_process_artifact_cache()


def _spec() -> SweepSpec:
    return SweepSpec(
        name="bench",
        grid=(
            GridAxis("noise.sigma", (0.5, 1.0, 1.5)),
            GridAxis("parameters.n2", (256, 512)),
            GridAxis("attack", ("none", "strip")),
        ),
        base={k: v for k, v in BASE.items() if k != "parameters.n2"},
        seed=1,
    )


def _pooled_spec() -> SweepSpec:
    """Shape-homogeneous quick grid: one fleet, analysis axes only.

    ``fleet_seed``/``measurement_seed`` are pinned so every scenario
    shares the fleet and measurement tiers — the regime the batch pool
    and the artifact/outcome tiers are built for.
    """
    return SweepSpec(
        name="bench-pooled",
        grid=(
            GridAxis("parameters.n2", (256, 512)),
            GridAxis("analysis_seed", (1, 2, 3, 4, 5, 6)),
        ),
        base=dict(BASE, **{"fleet_seed": 11, "measurement_seed": 12}),
        seed=2,
    )


@pytest.fixture(scope="module")
def results():
    return {}


def test_bench_sweep_cold(benchmark, results):
    roots = []

    def run_cold():
        root = tempfile.mkdtemp(prefix="bench_sweep_")
        roots.append(root)
        return run_sweep(_spec(), SweepStore(root), n_workers=1)

    report = benchmark.pedantic(run_cold, rounds=3, iterations=1)
    for root in roots:
        shutil.rmtree(root, ignore_errors=True)
    assert report.n_executed == 12
    results["cold_seconds"] = benchmark.stats.stats.mean
    results["scenarios_per_second"] = 12 / benchmark.stats.stats.mean


def test_bench_sweep_warm_store(benchmark, results):
    root = tempfile.mkdtemp(prefix="bench_sweep_")
    store = SweepStore(root)
    run_sweep(_spec(), store, n_workers=1)

    report = benchmark.pedantic(
        lambda: run_sweep(_spec(), store, n_workers=1), rounds=3, iterations=1
    )
    shutil.rmtree(root, ignore_errors=True)
    assert report.n_executed == 0 and report.n_cached == 12
    results["warm_seconds"] = benchmark.stats.stats.mean


def test_bench_sweep_pooled_grid_unpooled(benchmark, results):
    """Baseline for the pooled entry: same grid, plain executor."""
    roots = []

    def setup():
        _clear_process_state()
        root = tempfile.mkdtemp(prefix="bench_sweep_unpooled_")
        roots.append(root)
        return (root,), {}

    def run_unpooled(root):
        return run_sweep(_pooled_spec(), SweepStore(root), n_workers=1)

    report = benchmark.pedantic(run_unpooled, setup=setup, rounds=3, iterations=1)
    assert report.n_executed == 12
    results["_unpooled_root"] = roots[-1]
    results["_unpooled_keep"] = roots
    results["pooled_grid_unpooled_seconds"] = benchmark.stats.stats.mean


def test_bench_sweep_pooled(benchmark, results):
    """The PR 5 executor: batch pool + artifacts + outcome memo, cold."""
    roots = []

    def setup():
        _clear_process_state()
        root = tempfile.mkdtemp(prefix="bench_sweep_pooled_")
        roots.append(root)
        return (root,), {}

    def run_pooled(root):
        return run_sweep(
            _pooled_spec(),
            SweepStore(root),
            n_workers=1,
            artifacts=ArtifactOptions(),
            pool=BatchPoolOptions(),
        )

    report = benchmark.pedantic(run_pooled, setup=setup, rounds=3, iterations=1)
    assert report.n_executed == 12
    results["_pooled_root"] = roots[-1]
    results["_pooled_keep"] = roots
    results["pooled_seconds"] = benchmark.stats.stats.mean
    results["pooled_scenarios_per_second"] = 12 / benchmark.stats.stats.mean


def test_bench_sweep_pooled_repeat(benchmark, results):
    """Repeat study: fresh store, warm outcome memo — analysis skipped."""
    import hashlib
    import os

    _clear_process_state()
    warm_root = tempfile.mkdtemp(prefix="bench_sweep_repeat_warm_")
    run_sweep(
        _pooled_spec(),
        SweepStore(warm_root),
        n_workers=1,
        artifacts=ArtifactOptions(),
        pool=BatchPoolOptions(),
    )
    roots = []

    def setup():
        root = tempfile.mkdtemp(prefix="bench_sweep_repeat_")
        roots.append(root)
        return (root,), {}

    def run_repeat(root):
        return run_sweep(
            _pooled_spec(),
            SweepStore(root),
            n_workers=1,
            artifacts=ArtifactOptions(),
            pool=BatchPoolOptions(),
        )

    report = benchmark.pedantic(run_repeat, setup=setup, rounds=3, iterations=1)
    assert report.n_executed == 12
    if "_unpooled_root" not in results or "_pooled_root" not in results:
        for root in (warm_root, *roots):
            shutil.rmtree(root, ignore_errors=True)
        pytest.skip(
            "pooled summary needs the unpooled/pooled bench tests to run first"
        )

    def digests(root):
        out = {}
        for entry in sorted(os.listdir(root)):
            path = os.path.join(root, entry)
            if entry.startswith(".") or not os.path.isfile(path):
                continue
            with open(path, "rb") as handle:
                out[entry] = hashlib.sha256(handle.read()).hexdigest()
        return out

    # Pooling, sharing and memoisation never change a stored byte.
    reference = digests(results.pop("_unpooled_root"))
    assert digests(results.pop("_pooled_root")) == reference
    assert digests(roots[-1]) == reference
    for root in (
        warm_root,
        *roots,
        *results.pop("_unpooled_keep"),
        *results.pop("_pooled_keep"),
    ):
        shutil.rmtree(root, ignore_errors=True)

    results["pooled_repeat_seconds"] = benchmark.stats.stats.mean
    results["pooled_speedup"] = round(
        results["pooled_grid_unpooled_seconds"] / results["pooled_seconds"], 2
    )
    results["pooled_repeat_speedup"] = round(
        results["pooled_grid_unpooled_seconds"]
        / results["pooled_repeat_seconds"],
        2,
    )
    # No hard floor assert here: the committed pooled_speedup baseline
    # plus the check_bench gate (35% tolerance on speedup ratios) is
    # what enforces the trajectory, and it stays updatable through the
    # documented --update-baseline acceptance workflow.

    summary = {
        "grid": "noise.sigma x parameters.n2 x attack (12 scenarios, quick)",
        "pooled_grid": "parameters.n2 x analysis_seed "
        "(12 scenarios, one fleet/measurement tier)",
        **{key: round(value, 4) for key, value in results.items()},
    }
    BENCH_FILE.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"\nsweep bench: {summary}")
