"""Tests for registers, ROM and I/O components."""

import pytest

from repro.crypto.sbox import SBOX
from repro.hdl.component import KIND_CLOCK, KIND_IO, KIND_RAM, KIND_REGISTER
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.register import DRegister
from repro.hdl.wires import Wire


class TestDRegister:
    def make(self, reset_value=0):
        d, q = Wire("d", 8), Wire("q", 8)
        return DRegister("reg", d, q, reset_value=reset_value), d, q

    def test_powers_on_at_reset_value(self):
        register, _d, q = self.make(reset_value=7)
        assert q.value == 7

    def test_capture_commit_cycle(self):
        register, d, q = self.make()
        d.drive(0x42)
        register.capture()
        assert q.value == 0  # not visible until commit
        register.commit()
        assert q.value == 0x42

    def test_activity_is_hamming_distance(self):
        register, d, q = self.make()
        d.drive(0x0F)
        register.capture()
        register.commit()
        events = register.activity()
        assert events[0].kind == KIND_REGISTER
        assert events[0].amount == 4.0

    def test_reset_restores_state(self):
        register, d, q = self.make(reset_value=3)
        d.drive(0xFF)
        register.capture()
        register.commit()
        register.reset()
        assert q.value == 3
        assert register.activity()[0].amount == 0.0

    def test_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            DRegister("r", Wire("d", 8), Wire("q", 4))

    def test_rejects_reset_overflow(self):
        with pytest.raises(ValueError):
            DRegister("r", Wire("d", 4), Wire("q", 4), reset_value=16)

    def test_width_property(self):
        register, _d, _q = self.make()
        assert register.width == 8


class TestSyncROM:
    def make_sbox_rom(self):
        address, data = Wire("addr", 8), Wire("data", 8)
        return SyncROM("rom", address, data, list(SBOX)), address, data

    def test_reads_contents(self):
        rom, address, data = self.make_sbox_rom()
        address.drive(0x53)
        rom.evaluate()
        assert data.value == SBOX[0x53] == 0xED

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            SyncROM("rom", Wire("a", 8), Wire("d", 8), [0] * 255)

    def test_rejects_wide_word(self):
        with pytest.raises(ValueError):
            SyncROM("rom", Wire("a", 2), Wire("d", 4), [0, 1, 2, 16])

    def test_activity_includes_precharge(self):
        rom, address, data = self.make_sbox_rom()
        address.drive(0)
        rom.evaluate()
        address.latch_previous()
        data.latch_previous()
        rom.evaluate()
        events = rom.activity()
        assert events[0].kind == KIND_RAM
        # Same address, same data: only the precharge term remains.
        assert events[0].amount == rom.precharge_activity

    def test_activity_counts_decoder_and_bitlines(self):
        rom, address, data = self.make_sbox_rom()
        address.drive(0)
        rom.evaluate()
        address.latch_previous()
        data.latch_previous()
        address.drive(0xFF)
        rom.evaluate()
        events = rom.activity()
        expected = 8 + bin(SBOX[0] ^ SBOX[0xFF]).count("1") + 1.0
        assert events[0].amount == expected

    def test_rejects_negative_precharge(self):
        with pytest.raises(ValueError):
            SyncROM("rom", Wire("a", 1), Wire("d", 8), [0, 1], precharge_activity=-1)


class TestOutputPort:
    def test_activity_follows_source(self):
        source = Wire("s", 8)
        port = OutputPort("pads", source)
        source.drive(0xF0)
        events = port.activity()
        assert events[0].kind == KIND_IO
        assert events[0].amount == 4.0


class TestInputPort:
    def test_constant_default_stimulus(self):
        target = Wire("t", 4)
        port = InputPort("in", target)
        port.evaluate()
        assert target.value == 0

    def test_custom_stimulus_advances(self):
        target = Wire("t", 4)
        port = InputPort("in", target, stimulus=lambda cycle: cycle % 16)
        port.evaluate()
        assert target.value == 0
        port.advance_cycle()
        port.evaluate()
        assert target.value == 1

    def test_reset_rewinds_stimulus(self):
        target = Wire("t", 4)
        port = InputPort("in", target, stimulus=lambda cycle: cycle % 16)
        port.advance_cycle()
        port.advance_cycle()
        port.reset()
        port.evaluate()
        assert target.value == 0


class TestClockTree:
    def test_constant_activity(self):
        clock = ClockTree("clk", 12.0)
        events = clock.activity()
        assert events[0].kind == KIND_CLOCK
        assert events[0].amount == 12.0

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            ClockTree("clk", -1.0)
