"""Tests for trace containers, devices and the oscilloscope."""

import numpy as np
import pytest

from repro.acquisition.bench import MeasurementBench, acquire_traces, make_rng
from repro.acquisition.device import Device
from repro.acquisition.oscilloscope import ADCConfig, Oscilloscope
from repro.acquisition.traces import TraceSet
from repro.experiments.designs import build_paper_ip
from repro.power.models import PowerModel
from repro.power.noise import NoiseModel
from repro.power.variation import DeviceVariation


@pytest.fixture()
def device():
    ip = build_paper_ip("IP_A")
    return Device("dev", ip, PowerModel(), default_cycles=256)


class TestTraceSet:
    def make(self, n=4, l=8):
        return TraceSet("dev", np.arange(n * l, dtype=float).reshape(n, l))

    def test_shape_properties(self):
        traces = self.make()
        assert traces.n_traces == 4
        assert traces.trace_length == 8
        assert len(traces) == 4

    def test_indexing_and_iteration(self):
        traces = self.make()
        assert list(traces[1]) == list(traces.matrix[1])
        assert len(list(iter(traces))) == 4

    def test_subset_copies(self):
        traces = self.make()
        subset = traces.subset([0, 2])
        subset.matrix[0, 0] = -1
        assert traces.matrix[0, 0] == 0

    def test_subset_bounds(self):
        with pytest.raises(IndexError):
            self.make().subset([7])

    def test_subset_rejects_empty(self):
        with pytest.raises(ValueError):
            self.make().subset([])

    def test_mean_trace(self):
        traces = TraceSet("d", np.array([[0.0, 2.0], [2.0, 4.0]]))
        assert list(traces.mean_trace()) == [1.0, 3.0]

    def test_extend(self):
        combined = self.make().extend(self.make())
        assert combined.n_traces == 8

    def test_extend_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            self.make(l=8).extend(self.make(l=9))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            TraceSet("d", np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceSet("d", np.zeros((0, 5)))


class TestDevice:
    def test_waveform_is_deterministic(self, device):
        w1 = device.deterministic_waveform()
        w2 = device.deterministic_waveform()
        assert w1 is w2  # cached

    def test_waveform_length(self, device):
        assert device.deterministic_waveform().size == device.trace_length()

    def test_same_ip_same_waveform_without_variation(self):
        d1 = Device("a", build_paper_ip("IP_A"), PowerModel())
        d2 = Device("b", build_paper_ip("IP_A"), PowerModel())
        np.testing.assert_allclose(
            d1.deterministic_waveform(), d2.deterministic_waveform()
        )

    def test_gain_scales_waveform(self):
        nominal = Device("a", build_paper_ip("IP_A"), PowerModel())
        scaled = Device(
            "b",
            build_paper_ip("IP_A"),
            PowerModel(),
            variation=DeviceVariation(gain=2.0, offset=1.0, component_scales={}),
        )
        np.testing.assert_allclose(
            scaled.deterministic_waveform(),
            2.0 * nominal.deterministic_waveform() + 1.0,
        )

    def test_effective_model_applies_component_scales(self):
        variation = DeviceVariation(
            gain=1.0, offset=0.0, component_scales={"ctr_reg": 1.5}
        )
        device = Device("a", build_paper_ip("IP_A"), PowerModel(), variation=variation)
        assert device.effective_model.weight_for("ctr_reg", "register") == 1.5

    def test_rejects_bad_default_cycles(self):
        with pytest.raises(ValueError):
            Device("a", build_paper_ip("IP_A"), PowerModel(), default_cycles=0)

    def test_custom_cycle_count(self, device):
        assert device.deterministic_waveform(64).size == 64 * 4


class TestOscilloscope:
    def test_acquire_shape(self, device, rng):
        scope = Oscilloscope(NoiseModel(sigma=1.0))
        traces = scope.acquire(device, 7, rng)
        assert traces.n_traces == 7
        assert traces.trace_length == device.trace_length()

    def test_acquire_rejects_nonpositive(self, device, rng):
        with pytest.raises(ValueError):
            Oscilloscope().acquire(device, 0, rng)

    def test_noise_free_acquisition_equals_waveform(self, device, rng):
        scope = Oscilloscope(NoiseModel(sigma=0.0), adc=None)
        traces = scope.acquire(device, 2, rng)
        np.testing.assert_allclose(traces[0], device.deterministic_waveform())

    def test_averaging_recovers_waveform(self, device):
        scope = Oscilloscope(NoiseModel(sigma=1.0), adc=None)
        traces = scope.acquire(device, 400, np.random.default_rng(3))
        averaged = traces.mean_trace()
        base = device.deterministic_waveform()
        residual = np.std(averaged - base) / np.std(base)
        assert residual < 0.1

    def test_adc_quantises_to_grid(self, device, rng):
        scope = Oscilloscope(NoiseModel(sigma=0.5), adc=ADCConfig(bits=6))
        traces = scope.acquire(device, 3, rng)
        unique = np.unique(traces.matrix)
        assert unique.size <= 64

    def test_adc_validation(self):
        with pytest.raises(ValueError):
            ADCConfig(bits=0)
        with pytest.raises(ValueError):
            ADCConfig(headroom=-1.0)


class TestBench:
    def test_acquire_traces_function(self, device):
        traces = acquire_traces(device, 5, rng=1)
        assert traces.n_traces == 5

    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_bench_cache_reuses_prefix(self, device):
        bench = MeasurementBench(seed=0)
        big = bench.measure(device, 50)
        small = bench.measure(device, 20)
        np.testing.assert_allclose(small.matrix, big.matrix[:20])

    def test_bench_no_cache(self, device):
        bench = MeasurementBench(seed=0)
        first = bench.measure(device, 10, cache=False)
        second = bench.measure(device, 10, cache=False)
        assert not np.allclose(first.matrix, second.matrix)

    def test_measure_all(self, device):
        other = Device("dev2", build_paper_ip("IP_B"), PowerModel())
        bench = MeasurementBench(seed=0)
        result = bench.measure_all([device, other], 4)
        assert set(result) == {"dev", "dev2"}

    def test_clear_cache(self, device):
        bench = MeasurementBench(seed=0)
        bench.measure(device, 5)
        bench.clear_cache()
        assert bench._cache == {}

    def test_reproducible_with_same_seed(self, device):
        t1 = MeasurementBench(seed=9).measure(device, 5)
        t2 = MeasurementBench(seed=9).measure(device, 5)
        np.testing.assert_allclose(t1.matrix, t2.matrix)
