"""Tests for the deterministic fault-injection harness."""

import multiprocessing
import signal
import time

import pytest

from repro.sweeps.faultinject import (
    CRASH_EXIT_CODE,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_context,
    fault_point,
    install_fault_plan,
)


@pytest.fixture(autouse=True)
def _pristine_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clear_fault_plan()
    yield
    clear_fault_plan()


class TestFaultRuleValidation:
    def test_requires_site(self):
        with pytest.raises(ValueError, match="site"):
            FaultRule(site="")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(site="s", kind="meltdown")

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="s", probability=1.5)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            FaultRule(site="s", delay=-1.0)

    def test_delay_rule_needs_positive_delay(self):
        with pytest.raises(ValueError, match="delay rule"):
            FaultRule(site="s", kind="delay")

    def test_max_attempt_one_based(self):
        with pytest.raises(ValueError, match="max_attempt"):
            FaultRule(site="s", max_attempt=0)


class TestFaultPlanSerialisation:
    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="scenario.pre", kind="crash", key="abc"),
                FaultRule(site="store.put_record", probability=0.25),
            ),
            seed=7,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan

    def test_env_activation(self, monkeypatch):
        plan = FaultPlan(rules=(FaultRule(site="s"),), seed=3)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        clear_fault_plan()
        assert active_fault_plan() == plan

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, FaultPlan(rules=(FaultRule(site="s"),)).to_json()
        )
        install_fault_plan(None)
        assert active_fault_plan() is None
        fault_point("s")  # must be a no-op


class TestFaultPoint:
    def test_noop_without_plan(self):
        fault_point("anything")  # no plan active: must not raise

    def test_exception_rule_raises_with_context(self):
        install_fault_plan(FaultPlan(rules=(FaultRule(site="s"),)))
        with fault_context("scen-1", 2):
            with pytest.raises(InjectedFault, match="key=scen-1 attempt=2"):
                fault_point("s")

    def test_site_and_key_filtering(self):
        install_fault_plan(
            FaultPlan(rules=(FaultRule(site="s", key="victim"),))
        )
        fault_point("other-site")
        with fault_context("bystander"):
            fault_point("s")
        with fault_context("victim"):
            with pytest.raises(InjectedFault):
                fault_point("s")

    def test_max_attempt_scripts_transient_faults(self):
        install_fault_plan(
            FaultPlan(rules=(FaultRule(site="s", max_attempt=2),))
        )
        for attempt in (1, 2):
            with fault_context("k", attempt):
                with pytest.raises(InjectedFault):
                    fault_point("s")
        with fault_context("k", 3):
            fault_point("s")  # past the transient window

    def test_probability_draws_are_deterministic(self):
        plan = FaultPlan(
            rules=(FaultRule(site="s", probability=0.5),), seed=11
        )

        def firing_keys():
            fired = []
            for i in range(32):
                if list(plan.matching_rules("s", f"key-{i}", 1)):
                    fired.append(i)
            return fired

        first = firing_keys()
        assert first == firing_keys()
        assert 0 < len(first) < 32  # thinned, not all-or-nothing

    def test_different_seeds_differ(self):
        def fired(seed):
            plan = FaultPlan(
                rules=(FaultRule(site="s", probability=0.5),), seed=seed
            )
            return [
                i
                for i in range(64)
                if list(plan.matching_rules("s", f"key-{i}", 1))
            ]

        assert fired(1) != fired(2)

    def test_delay_rule_sleeps_then_falls_through(self):
        install_fault_plan(
            FaultPlan(
                rules=(
                    FaultRule(site="s", kind="delay", delay=0.05),
                    FaultRule(site="s"),
                )
            )
        )
        start = time.monotonic()
        with pytest.raises(InjectedFault):
            fault_point("s")
        assert time.monotonic() - start >= 0.05


def _child_hits(site, plan_json):
    clear_fault_plan()
    install_fault_plan(FaultPlan.from_json(plan_json))
    fault_point(site)


class TestProcessKillingKinds:
    @pytest.mark.parametrize(
        "kind,expected",
        [("crash", CRASH_EXIT_CODE), ("sigkill", -int(signal.SIGKILL))],
    )
    def test_kind_kills_child_with_expected_code(self, kind, expected):
        plan = FaultPlan(rules=(FaultRule(site="s", kind=kind),))
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_child_hits, args=("s", plan.to_json()))
        child.start()
        child.join(timeout=30)
        assert child.exitcode == expected
