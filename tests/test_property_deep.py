"""Deeper property-based tests across the substrate.

These complement the per-module suites with algebraic laws and
distributional checks that only make sense across module boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.averaging import k_averaged_set
from repro.core.correlation import pearson_many
from repro.core.distinguishers import max2, min2
from repro.core.parameters import reuse_probability
from repro.acquisition.traces import TraceSet
from repro.crypto.gf256 import gf_mul, gf_pow
from repro.fsm.encoding import gray_decode, gray_encode
from repro.hdl.wires import hamming_distance

bytes_ = st.integers(min_value=0, max_value=255)
small_exponents = st.integers(min_value=0, max_value=30)


class TestGFAlgebraicLaws:
    @given(bytes_, small_exponents, small_exponents)
    def test_power_addition_law(self, a, m, n):
        if a == 0 and (m == 0 or n == 0):
            return  # 0^0 convention makes the law degenerate at zero
        assert gf_pow(a, m + n) == gf_mul(gf_pow(a, m), gf_pow(a, n))

    @given(bytes_, bytes_, small_exponents)
    def test_power_distributes_over_product(self, a, b, n):
        assert gf_pow(gf_mul(a, b), n) == gf_mul(gf_pow(a, n), gf_pow(b, n))

    @given(bytes_)
    def test_frobenius_squaring_is_additive(self, a):
        # In characteristic 2: (x + y)^2 = x^2 + y^2.
        for b in (0x01, 0x35, 0xF0):
            left = gf_pow(a ^ b, 2)
            right = gf_pow(a, 2) ^ gf_pow(b, 2)
            assert left == right


class TestGrayCodeWidths:
    @given(st.integers(min_value=2, max_value=12), st.data())
    def test_roundtrip_any_width(self, width, data):
        index = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        assert gray_decode(gray_encode(index, width), width) == index

    @given(st.integers(min_value=2, max_value=12))
    def test_full_sequence_is_single_bit_any_width(self, width):
        n = 1 << width
        codes = [gray_encode(i, width) for i in range(n)]
        for a, b in zip(codes, codes[1:] + codes[:1]):
            assert hamming_distance(a, b) == 1


class TestSelectionDistribution:
    def test_k_averaged_rows_are_unbiased(self):
        # The estimator mean over many draws converges on the pool mean.
        rng = np.random.default_rng(0)
        pool = TraceSet("d", rng.normal(3.0, 1.0, size=(400, 16)))
        a_set = k_averaged_set(pool, 25, 200, rng)
        np.testing.assert_allclose(
            a_set.mean(axis=0), pool.mean_trace(), atol=0.1
        )

    def test_reuse_probability_matches_binomial_tail_identity(self):
        # 1 - P(zeta) must equal P(X <= 1) for X ~ Binomial(m, 1/(alpha m)).
        from scipy.stats import binom

        for alpha, m in ((3.0, 7), (10.0, 20), (50.0, 4)):
            p = 1.0 / (alpha * m)
            expected = float(binom.cdf(1, m, p))
            assert 1 - reuse_probability(alpha, m) == pytest.approx(expected)


class TestDistinguisherHelpers:
    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=30))
    def test_max2_min2_duality(self, values):
        negated = [-v for v in values]
        assert max2(values) == pytest.approx(-min2(negated))

    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=30))
    def test_max2_is_max_of_remainder(self, values):
        top_index = int(np.argmax(values))
        remainder = values[:top_index] + values[top_index + 1 :]
        assert max2(values) == pytest.approx(max(remainder))


class TestPearsonManyLaws:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_row_permutation_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=24)
        traces = rng.normal(size=(6, 24))
        base = pearson_many(reference, traces)
        order = rng.permutation(6)
        permuted = pearson_many(reference, traces[order])
        np.testing.assert_allclose(permuted, base[order], atol=1e-12)

    @settings(max_examples=20)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.1, max_value=5.0),
    )
    def test_row_scale_invariance(self, seed, scale):
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=24)
        traces = rng.normal(size=(4, 24))
        np.testing.assert_allclose(
            pearson_many(reference, traces * scale),
            pearson_many(reference, traces),
            atol=1e-9,
        )
