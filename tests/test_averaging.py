"""Tests for k-averaged trace construction."""

import numpy as np
import pytest

from repro.acquisition.traces import TraceSet
from repro.core.averaging import (
    averaging_noise_reduction,
    k_averaged_set,
    k_averaged_trace,
)


def noisy_traces(n=200, l=64, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    signal = np.sin(np.linspace(0, 8 * np.pi, l))
    matrix = signal[np.newaxis, :] + rng.normal(0, sigma, size=(n, l))
    return TraceSet("dev", matrix), signal


class TestKAveragedTrace:
    def test_shape(self, rng):
        traces, _signal = noisy_traces()
        averaged = k_averaged_trace(traces, 10, rng)
        assert averaged.shape == (64,)

    def test_k_equals_n_gives_global_mean(self, rng):
        traces, _signal = noisy_traces(n=20)
        averaged = k_averaged_trace(traces, 20, rng)
        np.testing.assert_allclose(averaged, traces.mean_trace())

    def test_k_one_returns_a_member_trace(self, rng):
        traces, _signal = noisy_traces(n=5)
        averaged = k_averaged_trace(traces, 1, rng)
        assert any(np.allclose(averaged, row) for row in traces.matrix)

    def test_averaging_reduces_noise(self):
        traces, signal = noisy_traces(n=500, sigma=1.0)
        rng = np.random.default_rng(1)
        residual_1 = np.std(k_averaged_trace(traces, 1, rng) - signal)
        residual_100 = np.std(k_averaged_trace(traces, 100, rng) - signal)
        assert residual_100 < residual_1 / 5  # ~ sqrt(100)/2 margin


class TestKAveragedSet:
    def test_shape(self, rng):
        traces, _signal = noisy_traces()
        a_set = k_averaged_set(traces, 10, 7, rng)
        assert a_set.shape == (7, 64)

    def test_rows_differ(self, rng):
        traces, _signal = noisy_traces()
        a_set = k_averaged_set(traces, 10, 5, rng)
        assert not np.allclose(a_set[0], a_set[1])

    def test_rows_concentrate_around_signal(self, rng):
        traces, signal = noisy_traces(n=2000, sigma=1.0)
        a_set = k_averaged_set(traces, 100, 10, rng)
        residuals = np.std(a_set - signal, axis=1)
        assert np.all(residuals < 0.3)

    def test_rejects_k_too_large(self, rng):
        traces, _signal = noisy_traces(n=5)
        with pytest.raises(ValueError):
            k_averaged_set(traces, 6, 2, rng)


class TestNoiseReduction:
    def test_sqrt_law(self):
        assert averaging_noise_reduction(1) == 1.0
        assert averaging_noise_reduction(4) == 2.0
        assert averaging_noise_reduction(50) == pytest.approx(np.sqrt(50))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            averaging_noise_reduction(0)

    def test_empirical_sqrt_k(self):
        # Noise amplitude after k-averaging falls like 1/sqrt(k).
        traces, signal = noisy_traces(n=4000, sigma=1.0, seed=2)
        rng = np.random.default_rng(3)
        residuals = {}
        for k in (4, 64):
            a_set = k_averaged_set(traces, k, 30, rng)
            residuals[k] = float(np.mean(np.std(a_set - signal, axis=1)))
        ratio = residuals[4] / residuals[64]
        assert ratio == pytest.approx(4.0, rel=0.25)
