"""Unit and property tests for GF(2^8) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.gf256 import (
    RIJNDAEL_POLY,
    gf_add,
    gf_inverse,
    gf_mul,
    gf_pow,
    gf_xtime,
    inverse_table,
    is_generator,
)

bytes_ = st.integers(min_value=0, max_value=255)


class TestAdd:
    def test_add_is_xor(self):
        assert gf_add(0x57, 0x83) == 0xD4

    def test_add_identity(self):
        assert gf_add(0x42, 0) == 0x42

    @given(bytes_)
    def test_self_inverse(self, a):
        assert gf_add(a, a) == 0

    @given(bytes_, bytes_)
    def test_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gf_add(256, 0)
        with pytest.raises(ValueError):
            gf_add(0, -1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            gf_add(1.5, 2)
        with pytest.raises(TypeError):
            gf_add(True, 2)


class TestMul:
    def test_fips_worked_example(self):
        # FIPS-197 Section 4.2: {57} * {83} = {c1}.
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_xtime_example(self):
        # {57} * {02} = {ae}.
        assert gf_mul(0x57, 0x02) == 0xAE
        assert gf_xtime(0x57) == 0xAE

    def test_xtime_with_reduction(self):
        # {ae} * {02} overflows and reduces: {47}.
        assert gf_xtime(0xAE) == 0x47

    def test_multiply_by_zero(self):
        assert gf_mul(0xFF, 0) == 0

    def test_multiply_by_one(self):
        assert gf_mul(0xAB, 1) == 0xAB

    @given(bytes_, bytes_)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(bytes_, bytes_, bytes_)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(bytes_, bytes_, bytes_)
    def test_distributive_over_add(self, a, b, c):
        left = gf_mul(a, gf_add(b, c))
        right = gf_add(gf_mul(a, b), gf_mul(a, c))
        assert left == right

    @given(bytes_)
    def test_result_is_a_byte(self, a):
        assert 0 <= gf_mul(a, 0xFF) <= 255

    def test_no_zero_divisors(self):
        for a in range(1, 256):
            assert gf_mul(a, 0x03) != 0


class TestPow:
    def test_power_zero_is_one(self):
        assert gf_pow(0x42, 0) == 1
        assert gf_pow(0, 0) == 1

    def test_power_one_is_identity(self):
        assert gf_pow(0x42, 1) == 0x42

    @given(bytes_)
    def test_square_matches_mul(self, a):
        assert gf_pow(a, 2) == gf_mul(a, a)

    @given(st.integers(min_value=1, max_value=255))
    def test_fermat_order_divides_255(self, a):
        assert gf_pow(a, 255) == 1

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            gf_pow(2, -1)


class TestInverse:
    def test_zero_maps_to_zero(self):
        assert gf_inverse(0) == 0

    def test_one_is_self_inverse(self):
        assert gf_inverse(1) == 1

    @given(st.integers(min_value=1, max_value=255))
    def test_inverse_property(self, a):
        assert gf_mul(a, gf_inverse(a)) == 1

    def test_table_is_an_involution(self):
        table = inverse_table()
        for a in range(256):
            assert table[table[a]] == a

    def test_table_is_a_permutation(self):
        assert sorted(inverse_table()) == list(range(256))


class TestGenerator:
    def test_three_is_a_generator(self):
        # 0x03 generates GF(2^8)* under the Rijndael polynomial.
        assert is_generator(0x03)

    def test_one_is_not_a_generator(self):
        assert not is_generator(1)

    def test_zero_is_not_a_generator(self):
        assert not is_generator(0)

    def test_generator_count_is_phi_255(self):
        # phi(255) = phi(3) phi(5) phi(17) = 2 * 4 * 16 = 128.
        count = sum(1 for a in range(256) if is_generator(a))
        assert count == 128


def test_rijndael_polynomial_value():
    assert RIJNDAEL_POLY == 0x11B
