"""Tests for lease-based scheduling, retry/quarantine, store hygiene,
and the byte-identity invariant under injected faults."""

import os
import threading
import time

import numpy as np
import pytest

from repro.sweeps import (
    FailureLog,
    FaultPlan,
    FaultRule,
    GridAxis,
    LeaseManager,
    RetryPolicy,
    SchedulerOptions,
    SweepSpec,
    SweepStore,
    clear_fault_plan,
    expand_scenarios,
    install_fault_plan,
    run_scheduled_sweep,
    run_sweep,
)
from repro.sweeps.faultinject import FAULT_PLAN_ENV

from tests.test_sweeps import QUICK, store_digests

#: No backoff sleeps: recovery tests already pay for child processes.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)
FAST_OPTS = SchedulerOptions(
    lease_ttl=10.0, poll_interval=0.01, retry=FAST_RETRY
)


@pytest.fixture(autouse=True)
def _pristine_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    clear_fault_plan()
    yield
    clear_fault_plan()


def spec_of(sigmas, name="sched", seed=5):
    return SweepSpec(
        name=name,
        grid=(GridAxis("noise.sigma", tuple(sigmas)),),
        base=dict(QUICK),
        seed=seed,
    )


def set_env_plan(monkeypatch, *rules, seed=0):
    """Activate a plan for this process *and* forked attempt children."""
    plan = FaultPlan(rules=tuple(rules), seed=seed)
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
    clear_fault_plan()
    return plan


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3
        )
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(backoff_base=-1.0)


class TestSchedulerOptions:
    def test_validation(self):
        with pytest.raises(ValueError, match="lease_ttl"):
            SchedulerOptions(lease_ttl=0.0)
        with pytest.raises(ValueError, match="scenario_timeout"):
            SchedulerOptions(scenario_timeout=0.0)

    def test_heartbeat_defaults_to_quarter_ttl(self):
        assert SchedulerOptions(lease_ttl=20.0).effective_heartbeat == 5.0
        assert (
            SchedulerOptions(heartbeat_interval=1.5).effective_heartbeat == 1.5
        )


class TestLeaseManager:
    def test_acquire_is_exclusive_until_released(self, tmp_path):
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="a")
        b = LeaseManager(str(tmp_path), ttl=30.0, owner="b")
        assert a.acquire("x")
        assert not b.acquire("x")
        a.release("x")
        assert b.acquire("x")

    def test_stale_lease_is_stolen(self, tmp_path):
        dead = LeaseManager(str(tmp_path), ttl=0.05, owner="dead")
        live = LeaseManager(str(tmp_path), ttl=30.0, owner="live")
        assert dead.acquire("x")
        time.sleep(0.1)
        assert live.acquire("x")
        assert live.read("x")["owner"] == "live"

    def test_heartbeat_requires_ownership(self, tmp_path):
        a = LeaseManager(str(tmp_path), ttl=30.0, owner="a")
        b = LeaseManager(str(tmp_path), ttl=30.0, owner="b")
        assert a.acquire("x")
        assert a.heartbeat("x")
        assert not b.heartbeat("x")
        assert not a.heartbeat("never-leased")

    def test_heartbeat_keeps_lease_fresh(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl=30.0, owner="a")
        mgr.acquire("x")
        before = mgr.read("x")["heartbeat"]
        time.sleep(0.02)
        mgr.heartbeat("x")
        assert mgr.read("x")["heartbeat"] > before

    def test_corrupt_lease_treated_as_stale(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl=30.0, owner="a")
        with open(mgr.path("x"), "w") as handle:
            handle.write("{torn")
        assert mgr.acquire("x")

    def test_scrub_removes_expired_and_scratch(self, tmp_path):
        mgr = LeaseManager(str(tmp_path), ttl=0.05, owner="a")
        mgr.acquire("expired")
        with open(mgr.path("x") + ".stale-dead", "w") as handle:
            handle.write("{}")
        time.sleep(0.1)
        fresh = LeaseManager(str(tmp_path), ttl=30.0, owner="b")
        fresh.acquire("held")
        removed = fresh.scrub()
        assert len(removed) == 2
        assert fresh.read("held") is not None
        assert fresh.read("expired") is None


class TestFailureLog:
    def test_attempt_numbers_are_persistent(self, tmp_path):
        log = FailureLog(str(tmp_path))
        assert log.record_attempt("x", "owner-1") == 1
        assert log.record_attempt("x", "owner-1") == 2
        # A fresh instance (new process / new run) continues the count.
        assert FailureLog(str(tmp_path)).record_attempt("x", "owner-2") == 3
        owners = [entry["owner"] for entry in log.history("x")]
        assert owners == ["owner-1", "owner-1", "owner-2"]

    def test_record_error_attaches_to_latest(self, tmp_path):
        log = FailureLog(str(tmp_path))
        log.record_attempt("x", "o")
        log.record_attempt("x", "o")
        log.record_error("x", {"type": "Boom", "message": "m", "traceback": ""})
        history = log.history("x")
        assert history[0]["error"] is None
        assert history[1]["error"]["type"] == "Boom"

    def test_quarantine_round_trip_and_clear(self, tmp_path):
        log = FailureLog(str(tmp_path))
        scenario = expand_scenarios(spec_of((0.5,)))[0]
        log.quarantine(
            scenario,
            {"type": "Boom", "message": "m", "traceback": "tb"},
            attempts=3,
            owner="o",
        )
        assert log.quarantined_ids() == [scenario.scenario_id]
        record = log.load_quarantine(scenario.scenario_id)
        assert record["attempts"] == 3
        assert record["error"]["type"] == "Boom"
        assert record["overrides"] == dict(scenario.overrides)
        log.clear_quarantine(scenario.scenario_id)
        assert log.quarantined_ids() == []

    def test_scrub_drops_scratch_and_satisfied_quarantines(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        log = FailureLog(store.root)
        scenario = expand_scenarios(spec_of((0.5,)))[0]
        log.record_attempt(scenario.scenario_id, "o")
        with open(log.error_scratch_path(scenario.scenario_id, 1), "w") as f:
            f.write("{}")
        log.quarantine(scenario, {"type": "Boom"}, attempts=1, owner="o")
        store.put(scenario.scenario_id, {"ok": True})  # later success
        removed = log.scrub(store)
        assert len(removed) == 2
        assert log.quarantined_ids() == []
        assert log.history(scenario.scenario_id)  # history is kept


class TestStoreScrub:
    def test_removes_tmp_and_orphaned_bundles_only(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        store.put("done", {"v": 1}, {"x": np.ones(2)})
        with open(os.path.join(store.root, ".tmp-stale"), "w") as f:
            f.write("junk")
        with open(store.arrays_path("orphan"), "wb") as f:
            f.write(b"junk")
        removed = store.scrub()
        assert sorted(os.path.basename(p) for p in removed) == [
            ".tmp-stale",
            "orphan.npz",
        ]
        assert store.ids() == ["done"]
        assert os.path.exists(store.arrays_path("done"))

    def test_crash_between_bundle_and_record_is_recoverable(self, tmp_path):
        # A fault at the commit point leaves an orphaned bundle; scrub
        # removes it and a re-put converges to the clean bytes.
        clean = SweepStore(str(tmp_path / "clean"))
        clean.put("abc", {"v": 1}, {"x": np.arange(3.0)})
        store = SweepStore(str(tmp_path / "store"))
        install_fault_plan(
            FaultPlan(rules=(FaultRule(site="store.put_record"),))
        )
        with pytest.raises(Exception, match="injected"):
            store.put("abc", {"v": 1}, {"x": np.arange(3.0)})
        assert not store.has("abc")  # bundle orphaned, record absent
        clear_fault_plan()
        store.scrub()
        store.put("abc", {"v": 1}, {"x": np.arange(3.0)})
        assert store_digests(store.root) == store_digests(clean.root)


class TestExecutorFaultTolerance:
    def test_transient_fault_retried_byte_identically(self, tmp_path):
        spec = spec_of((0.5, 1.0))
        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)

        victim = expand_scenarios(spec)[0].scenario_id
        install_fault_plan(
            FaultPlan(
                rules=(
                    FaultRule(site="scenario.pre", key=victim, max_attempt=2),
                )
            )
        )
        store = SweepStore(str(tmp_path / "store"))
        report = run_sweep(spec, store, n_workers=1, retry=FAST_RETRY)
        assert report.failed_ids == []
        assert report.retried_ids == [victim]
        assert store_digests(store.root) == store_digests(clean.root)

    def test_commit_point_fault_retried_byte_identically(self, tmp_path):
        spec = spec_of((0.5,))
        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)

        install_fault_plan(
            FaultPlan(
                rules=(FaultRule(site="store.put_record", max_attempt=1),)
            )
        )
        store = SweepStore(str(tmp_path / "store"))
        report = run_sweep(spec, store, n_workers=1, retry=FAST_RETRY)
        assert report.failed_ids == []
        assert store_digests(store.root) == store_digests(clean.root)

    def test_quarantined_scenario_reattempted_on_resume(self, tmp_path):
        spec = spec_of((0.5, 1.0))
        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)

        victim = expand_scenarios(spec)[0].scenario_id
        install_fault_plan(
            FaultPlan(rules=(FaultRule(site="scenario.pre", key=victim),))
        )
        store = SweepStore(str(tmp_path / "store"))
        report = run_sweep(
            spec,
            store,
            n_workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        assert report.failed_ids == [victim]
        assert len(store) == 1  # the sibling completed
        assert FailureLog(store.root).load_quarantine(victim)["attempts"] == 2

        clear_fault_plan()  # the cause is gone; resume converges
        resumed = run_sweep(spec, store, n_workers=1, retry=FAST_RETRY)
        assert resumed.executed_ids == [victim]
        assert resumed.n_cached == 1
        assert FailureLog(store.root).load_quarantine(victim) is None
        assert store_digests(store.root) == store_digests(clean.root)


class TestScheduledSweep:
    def test_clean_run_matches_plain_executor(self, tmp_path):
        spec = spec_of((0.5, 1.0))
        serial = SweepStore(str(tmp_path / "serial"))
        run_sweep(spec, serial, n_workers=1)
        scheduled = SweepStore(str(tmp_path / "sched"))
        report = run_scheduled_sweep(
            spec, scheduled, options=FAST_OPTS, n_workers=2
        )
        assert report.n_executed == 2
        assert report.failed_ids == [] and report.retried_ids == []
        assert store_digests(scheduled.root) == store_digests(serial.root)
        assert os.listdir(os.path.join(scheduled.root, ".leases")) == []

    def test_sigkilled_worker_recovered_byte_identically(
        self, tmp_path, monkeypatch
    ):
        spec = spec_of((0.5, 1.0))
        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)

        # Every scenario's first attempt dies by SIGKILL mid-scenario.
        set_env_plan(
            monkeypatch,
            FaultRule(site="scenario.pre", kind="sigkill", max_attempt=1),
        )
        store = SweepStore(str(tmp_path / "store"))
        report = run_scheduled_sweep(spec, store, options=FAST_OPTS, n_workers=2)
        assert report.failed_ids == []
        assert sorted(report.retried_ids) == sorted(report.scenario_ids)
        assert store_digests(store.root) == store_digests(clean.root)
        for scenario_id in report.scenario_ids:
            history = FailureLog(store.root).history(scenario_id)
            assert history[0]["error"]["type"] == "WorkerCrash"
            assert len(history) == 2

    def test_crash_then_rerun_converges(self, tmp_path, monkeypatch):
        # Budget of 1: the crash quarantines the scenario.  The rerun
        # (same plan still active!) sees persistent attempt 2, so the
        # rule no longer fires and the store converges byte-identically.
        spec = spec_of((0.5,))
        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)
        scenario_id = expand_scenarios(spec)[0].scenario_id

        set_env_plan(
            monkeypatch,
            FaultRule(site="scenario.post", kind="crash", max_attempt=1),
        )
        store = SweepStore(str(tmp_path / "store"))
        options = SchedulerOptions(
            lease_ttl=10.0,
            poll_interval=0.01,
            retry=RetryPolicy(max_attempts=1, backoff_base=0.0),
        )
        first = run_scheduled_sweep(spec, store, options=options)
        assert first.failed_ids == [scenario_id]
        assert not store.has(scenario_id)

        second = run_scheduled_sweep(spec, store, options=options)
        assert second.executed_ids == [scenario_id]
        assert FailureLog(store.root).load_quarantine(scenario_id) is None
        assert store_digests(store.root) == store_digests(clean.root)

    def test_timeout_kills_and_retries(self, tmp_path, monkeypatch):
        spec = spec_of((0.5,))
        scenario_id = expand_scenarios(spec)[0].scenario_id
        set_env_plan(
            monkeypatch,
            FaultRule(
                site="scenario.pre", kind="delay", delay=60.0, max_attempt=1
            ),
        )
        store = SweepStore(str(tmp_path / "store"))
        options = SchedulerOptions(
            lease_ttl=10.0,
            poll_interval=0.01,
            scenario_timeout=0.5,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        report = run_scheduled_sweep(spec, store, options=options)
        assert report.executed_ids == [scenario_id]
        assert report.retried_ids == [scenario_id]
        history = FailureLog(store.root).history(scenario_id)
        assert history[0]["error"]["type"] == "ScenarioTimeout"

    def test_expired_lease_is_reclaimed(self, tmp_path):
        spec = spec_of((0.5,))
        scenario_id = expand_scenarios(spec)[0].scenario_id
        store = SweepStore(str(tmp_path / "store"))
        # A dead worker's lease, long expired.
        dead = LeaseManager(store.root, ttl=0.05, owner="dead-worker")
        assert dead.acquire(scenario_id)
        time.sleep(0.1)
        report = run_scheduled_sweep(spec, store, options=FAST_OPTS)
        assert report.executed_ids == [scenario_id]
        assert store.has(scenario_id)

    def test_live_lease_is_respected(self, tmp_path):
        # A fresh lease held by someone else: the scheduler must wait,
        # then treat the externally-published result as cached.
        spec = spec_of((0.5,))
        scenario = expand_scenarios(spec)[0]
        store = SweepStore(str(tmp_path / "store"))
        other = LeaseManager(store.root, ttl=30.0, owner="other")
        assert other.acquire(scenario.scenario_id)

        def finish_externally():
            time.sleep(0.2)
            from repro.sweeps.scenario import run_scenario

            result = run_scenario(scenario)
            store.put(scenario.scenario_id, result["record"], result["arrays"])
            other.release(scenario.scenario_id)

        thread = threading.Thread(target=finish_externally)
        thread.start()
        report = run_scheduled_sweep(spec, store, options=FAST_OPTS)
        thread.join()
        assert report.cached_ids == [scenario.scenario_id]
        assert report.executed_ids == []
        # The waiting scheduler never attempted it.
        assert FailureLog(store.root).history(scenario.scenario_id) == []

    def test_concurrent_schedulers_execute_each_digest_once(self, tmp_path):
        spec = spec_of((0.4, 0.8, 1.2, 1.6))
        store = SweepStore(str(tmp_path / "store"))
        reports = [None, None]

        def go(i):
            reports[i] = run_scheduled_sweep(
                spec, store, options=FAST_OPTS, n_workers=2
            )

        threads = [
            threading.Thread(target=go, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        log = FailureLog(store.root)
        for scenario in expand_scenarios(spec):
            assert len(log.history(scenario.scenario_id)) == 1
        executed = reports[0].executed_ids + reports[1].executed_ids
        assert sorted(executed) == sorted(reports[0].scenario_ids)

        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)
        assert store_digests(store.root) == store_digests(clean.root)


class TestChaosInvariant:
    def test_mixed_fault_soup_converges(self, tmp_path, monkeypatch):
        """The acceptance scenario: seeded exceptions, a SIGKILL'd
        worker and an expired lease together still yield a store
        byte-identical to a clean 1-worker run."""
        spec = spec_of((0.5, 1.0, 1.5))
        clean = SweepStore(str(tmp_path / "clean"))
        run_sweep(spec, clean, n_workers=1)

        scenarios = expand_scenarios(spec)
        set_env_plan(
            monkeypatch,
            FaultRule(
                site="scenario.pre",
                kind="sigkill",
                key=scenarios[0].scenario_id,
                max_attempt=1,
            ),
            FaultRule(site="scenario.post", probability=0.5, max_attempt=1),
            FaultRule(site="store.put_record", probability=0.5, max_attempt=2),
            seed=13,
        )
        store = SweepStore(str(tmp_path / "store"))
        # One scenario already carries an expired foreign lease.
        dead = LeaseManager(store.root, ttl=0.05, owner="dead-worker")
        assert dead.acquire(scenarios[1].scenario_id)
        time.sleep(0.1)

        options = SchedulerOptions(
            lease_ttl=10.0,
            poll_interval=0.01,
            retry=RetryPolicy(max_attempts=5, backoff_base=0.0),
        )
        report = run_scheduled_sweep(spec, store, options=options, n_workers=2)
        assert report.failed_ids == []
        assert sorted(report.executed_ids) == sorted(report.scenario_ids)
        assert store_digests(store.root) == store_digests(clean.root)
