"""Tests for the Pearson correlation machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.correlation import (
    DegenerateTraceError,
    expected_correlation_variance,
    expected_match_correlation,
    fisher_z,
    pearson,
    pearson_many,
)

finite_traces = arrays(
    dtype=float,
    shape=st.integers(min_value=3, max_value=64),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_signals_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=10_000)
        y = rng.normal(size=10_000)
        assert abs(pearson(x, y)) < 0.05

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        y = rng.normal(size=100) + 0.5 * x
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    @given(finite_traces)
    def test_self_correlation_is_one(self, x):
        try:
            value = pearson(x, x)
        except DegenerateTraceError:
            return  # constant traces are legitimately rejected
        assert value == pytest.approx(1.0)

    @given(finite_traces)
    def test_bounded(self, x):
        try:
            value = pearson(x, np.cos(x))
        except DegenerateTraceError:
            return
        assert -1.0 <= value <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_gain_offset_invariance(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert pearson(x, 5 * y + 7) == pytest.approx(pearson(x, y))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(5), np.zeros(6))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            pearson(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([2.0]))

    def test_degenerate_raises(self):
        with pytest.raises(DegenerateTraceError):
            pearson(np.ones(10), np.arange(10.0))


class TestPearsonMany:
    def test_matches_scalar(self):
        rng = np.random.default_rng(4)
        reference = rng.normal(size=30)
        traces = rng.normal(size=(6, 30))
        vectorised = pearson_many(reference, traces)
        scalar = [pearson(reference, t) for t in traces]
        np.testing.assert_allclose(vectorised, scalar)

    def test_shape(self):
        rng = np.random.default_rng(5)
        out = pearson_many(rng.normal(size=10), rng.normal(size=(8, 10)))
        assert out.shape == (8,)

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            pearson_many(np.zeros(5), np.zeros((2, 6)))

    def test_rejects_1d_traces(self):
        with pytest.raises(ValueError):
            pearson_many(np.zeros(5), np.zeros(5))

    def test_degenerate_row_raises(self):
        rng = np.random.default_rng(6)
        traces = rng.normal(size=(3, 10))
        traces[1] = 1.0
        with pytest.raises(DegenerateTraceError):
            pearson_many(rng.normal(size=10), traces)


class TestFisherZ:
    def test_zero_maps_to_zero(self):
        assert fisher_z(np.array([0.0]))[0] == 0.0

    def test_monotone(self):
        rhos = np.array([-0.9, -0.5, 0.0, 0.5, 0.9])
        z = fisher_z(rhos)
        assert np.all(np.diff(z) > 0)

    def test_stays_finite_at_extremes(self):
        z = fisher_z(np.array([1.0, -1.0]))
        assert np.all(np.isfinite(z))

    def test_stretches_tails(self):
        # The gap 0.99 vs 0.94 grows under the z-transform.
        raw_gap = 0.99 - 0.94
        z_gap = float(fisher_z(np.array([0.99]))[0] - fisher_z(np.array([0.94]))[0])
        assert z_gap > 3 * raw_gap


class TestTheoreticalFormulas:
    def test_match_correlation_increases_with_k(self):
        values = [expected_match_correlation(k, 1.5) for k in (1, 10, 50, 500)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_match_correlation_paper_operating_point(self):
        # sigma ~ 1.8, k = 50 lands near the paper's 0.94.
        assert expected_match_correlation(50, 1.8) == pytest.approx(0.939, abs=0.005)

    def test_zero_noise_gives_unity(self):
        assert expected_match_correlation(50, 0.0) == 1.0

    def test_variance_vanishes_at_unity_rho(self):
        assert expected_correlation_variance(1.0, 1024) == 0.0

    def test_variance_peaks_at_zero_rho(self):
        low = expected_correlation_variance(0.9, 1024)
        high = expected_correlation_variance(0.0, 1024)
        assert high > low

    def test_variance_scales_inverse_length(self):
        v1 = expected_correlation_variance(0.5, 100)
        v2 = expected_correlation_variance(0.5, 400)
        assert v1 == pytest.approx(4 * v2)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_correlation_variance(1.5, 100)
        with pytest.raises(ValueError):
            expected_correlation_variance(0.5, 1)
        with pytest.raises(ValueError):
            expected_match_correlation(0, 1.0)
        with pytest.raises(ValueError):
            expected_match_correlation(5, -1.0)

    def test_empirical_variance_matches_asymptotic(self):
        # Sample Pearson variance ~ (1 - rho^2)^2 / l.
        rng = np.random.default_rng(7)
        l, rho = 2000, 0.8
        estimates = []
        for _ in range(300):
            x = rng.normal(size=l)
            y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=l)
            estimates.append(pearson(x, y))
        empirical = np.var(estimates)
        theory = expected_correlation_variance(rho, l)
        assert empirical == pytest.approx(theory, rel=0.3)
