"""Tests for the end-to-end WatermarkVerifier."""

import numpy as np
import pytest

from repro.acquisition.traces import TraceSet
from repro.core.distinguishers import ALL_DISTINGUISHERS
from repro.core.process import ProcessParameters
from repro.core.verification import WatermarkVerifier


def make_trace_sets(seed=0, l=256, sigma=0.8):
    """A reference plus three DUTs; DUT#2 carries the same signal."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 10 * np.pi, l)
    signal_ref = np.sin(t) + 0.8 * np.sin(3.1 * t)
    signal_other = 0.3 * np.sin(t) + np.sin(5.7 * t + 1.0)
    signal_third = 0.3 * np.sin(t) + np.cos(2.3 * t)

    def build(name, signal, n):
        return TraceSet(name, signal + rng.normal(0, sigma, size=(n, l)))

    t_ref = make = build("REF", signal_ref, 80)
    duts = {
        "DUT#1": build("DUT#1", signal_other, 600),
        "DUT#2": build("DUT#2", signal_ref, 600),
        "DUT#3": build("DUT#3", signal_third, 600),
    }
    return t_ref, duts


PARAMS = ProcessParameters(k=15, m=10, n1=80, n2=600)


class TestIdentify:
    def test_both_paper_distinguishers_pick_the_match(self):
        t_ref, duts = make_trace_sets()
        verifier = WatermarkVerifier(PARAMS)
        report = verifier.identify(t_ref, duts, rng=1)
        for verdict in report.verdicts:
            assert verdict.chosen_dut == "DUT#2"
        assert report.unanimous

    def test_report_contains_all_duts(self):
        t_ref, duts = make_trace_sets()
        report = WatermarkVerifier(PARAMS).identify(t_ref, duts, rng=1)
        assert set(report.results) == set(duts)
        assert set(report.means) == set(duts)
        assert set(report.variances) == set(duts)

    def test_verdict_lookup(self):
        t_ref, duts = make_trace_sets()
        report = WatermarkVerifier(PARAMS).identify(t_ref, duts, rng=1)
        assert report.verdict_of("higher-mean").distinguisher == "higher-mean"
        with pytest.raises(KeyError):
            report.verdict_of("nonexistent")

    def test_all_distinguishers_available(self):
        t_ref, duts = make_trace_sets()
        verifier = WatermarkVerifier(PARAMS, distinguishers=ALL_DISTINGUISHERS)
        report = verifier.identify(t_ref, duts, rng=1)
        assert len(report.verdicts) == len(ALL_DISTINGUISHERS)

    def test_match_mean_is_highest(self):
        t_ref, duts = make_trace_sets()
        report = WatermarkVerifier(PARAMS).identify(t_ref, duts, rng=1)
        means = report.means
        assert means["DUT#2"] == max(means.values())

    def test_match_variance_is_lowest(self):
        t_ref, duts = make_trace_sets()
        report = WatermarkVerifier(PARAMS).identify(t_ref, duts, rng=1)
        variances = report.variances
        assert variances["DUT#2"] == min(variances.values())

    def test_requires_duts(self):
        t_ref, _duts = make_trace_sets()
        with pytest.raises(ValueError):
            WatermarkVerifier(PARAMS).identify(t_ref, {}, rng=1)

    def test_requires_distinguishers(self):
        with pytest.raises(ValueError):
            WatermarkVerifier(PARAMS, distinguishers=())

    def test_reproducible_with_seed(self):
        t_ref, duts = make_trace_sets()
        verifier = WatermarkVerifier(PARAMS)
        r1 = verifier.identify(t_ref, duts, rng=5)
        r2 = verifier.identify(t_ref, duts, rng=5)
        for name in duts:
            np.testing.assert_allclose(
                r1.results[name].coefficients, r2.results[name].coefficients
            )

    def test_shared_reference_across_duts(self):
        # With a single reference, rerunning with only the matching DUT
        # changes nothing about its coefficients' dependence structure;
        # here we just verify the correlate() path honours it.
        t_ref, duts = make_trace_sets()
        verifier = WatermarkVerifier(PARAMS)
        results = verifier.correlate(t_ref, duts, rng=3)
        assert set(results) == set(duts)


class TestCalibration:
    def test_floor_below_genuine_level(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        verifier = WatermarkVerifier(PARAMS)
        floor = verifier.calibrate_mean_floor(t_ref, duts["DUT#2"], rng=1)
        genuine = verifier.correlate(t_ref, {"DUT#2": duts["DUT#2"]}, rng=2)
        assert floor < genuine["DUT#2"].mean

    def test_more_sigmas_lower_floor(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        verifier = WatermarkVerifier(PARAMS)
        tight = verifier.calibrate_mean_floor(t_ref, duts["DUT#2"], rng=1, n_sigmas=2)
        loose = verifier.calibrate_mean_floor(t_ref, duts["DUT#2"], rng=1, n_sigmas=20)
        assert loose < tight

    def test_rejects_nonpositive_sigmas(self):
        t_ref, duts = make_trace_sets()
        with pytest.raises(ValueError):
            WatermarkVerifier(PARAMS).calibrate_mean_floor(
                t_ref, duts["DUT#2"], rng=1, n_sigmas=0
            )

    def test_calibrated_floor_separates_lot(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        verifier = WatermarkVerifier(PARAMS)
        floor = verifier.calibrate_mean_floor(t_ref, duts["DUT#2"], rng=1)
        screenings = verifier.screen(t_ref, duts, rng=2, mean_floor=floor)
        by_name = {s.device_name: s.authentic for s in screenings}
        assert by_name["DUT#2"]
        assert not by_name["DUT#1"]


class TestScreen:
    def test_authentic_device_passes(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        verifier = WatermarkVerifier(PARAMS)
        screenings = verifier.screen(
            t_ref, {"DUT#2": duts["DUT#2"]}, rng=1, mean_floor=0.5
        )
        assert screenings[0].authentic

    def test_counterfeit_fails_on_mean_floor(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        verifier = WatermarkVerifier(PARAMS)
        screenings = verifier.screen(
            t_ref, {"DUT#1": duts["DUT#1"]}, rng=1, mean_floor=0.8
        )
        assert not screenings[0].authentic
        assert "below floor" in screenings[0].reason

    def test_mixed_lot(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        verifier = WatermarkVerifier(PARAMS)
        screenings = verifier.screen(t_ref, duts, rng=1, mean_floor=0.8)
        by_name = {s.device_name: s.authentic for s in screenings}
        assert by_name["DUT#2"]
        assert not by_name["DUT#1"]
        assert not by_name["DUT#3"]

    def test_screening_reports_statistics(self):
        t_ref, duts = make_trace_sets(sigma=0.5)
        screenings = WatermarkVerifier(PARAMS).screen(t_ref, duts, rng=1)
        for screening in screenings:
            assert -1 <= screening.mean <= 1
            assert screening.variance >= 0
            assert screening.reason
