"""Tests for the power model."""

import numpy as np
import pytest

from repro.fsm.counters import build_binary_counter
from repro.hdl.component import KIND_COMB, KIND_IO, KIND_REGISTER
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.power.models import (
    DEFAULT_KIND_WEIGHTS,
    PowerModel,
    cycle_power_breakdown,
    variance_share,
)


def counter_activity(width=8, cycles=64):
    netlist = Netlist("ctr")
    build_binary_counter(netlist, width)
    return Simulator(netlist).run(cycles)


class TestPowerModel:
    def test_default_weights_cover_all_kinds(self):
        model = PowerModel()
        for kind in ("register", "comb", "ram", "io", "clock"):
            assert model.weight_for("x", kind) >= 0

    def test_io_heavier_than_comb_by_default(self):
        assert DEFAULT_KIND_WEIGHTS[KIND_IO] > DEFAULT_KIND_WEIGHTS[KIND_COMB]

    def test_cycle_power_includes_static(self):
        model = PowerModel(static_power=2.5)
        trace = counter_activity()
        power = model.cycle_power(trace)
        assert np.all(power >= 2.5)

    def test_component_scale_multiplies(self):
        model = PowerModel(component_scale={"ctr_reg": 2.0})
        assert model.weight_for("ctr_reg", KIND_REGISTER) == 2.0
        assert model.weight_for("other", KIND_REGISTER) == 1.0

    def test_with_component_scales_composes(self):
        model = PowerModel(component_scale={"a": 2.0})
        scaled = model.with_component_scales({"a": 3.0, "b": 0.5})
        assert scaled.weight_for("a", KIND_REGISTER) == 6.0
        assert scaled.weight_for("b", KIND_REGISTER) == 0.5

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            PowerModel(kind_weights={"register": -1.0})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            PowerModel(kind_weights={"magic": 1.0})

    def test_rejects_negative_static(self):
        with pytest.raises(ValueError):
            PowerModel(static_power=-0.1)

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            PowerModel(component_scale={"a": -1.0})

    def test_weight_for_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            PowerModel().weight_for("a", "bogus")

    def test_channel_weights_align_with_channels(self):
        trace = counter_activity()
        model = PowerModel()
        weights = model.channel_weights(trace)
        assert weights.shape == (trace.n_channels,)

    def test_cycle_power_is_linear_in_weights(self):
        trace = counter_activity()
        base = PowerModel(static_power=0.0)
        doubled = PowerModel(
            kind_weights={k: 2 * v for k, v in DEFAULT_KIND_WEIGHTS.items()},
            static_power=0.0,
        )
        np.testing.assert_allclose(
            doubled.cycle_power(trace), 2 * base.cycle_power(trace)
        )


class TestBreakdown:
    def test_breakdown_sums_to_dynamic_power(self):
        trace = counter_activity()
        model = PowerModel(static_power=0.0)
        breakdown = cycle_power_breakdown(model, trace)
        total = sum(breakdown.values())
        np.testing.assert_allclose(total, model.cycle_power(trace))

    def test_variance_share_sums_near_one_for_uncorrelated(self):
        trace = counter_activity()
        shares = variance_share(PowerModel(), trace)
        assert all(share >= 0 for share in shares.values())

    def test_clock_share_is_zero(self):
        # The clock is constant, so it contributes no variance.
        trace = counter_activity()
        shares = variance_share(PowerModel(), trace)
        assert shares["clock"] == 0.0

    def test_zero_variance_trace(self):
        from repro.hdl.activity import ActivityTrace, Channel

        trace = ActivityTrace([Channel("c", "clock")], np.ones((4, 1)))
        shares = variance_share(PowerModel(static_power=0.0), trace)
        assert shares == {"clock": 0.0}
