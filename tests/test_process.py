"""Tests for the correlation computation process (Fig. 2)."""

import numpy as np
import pytest

from repro.acquisition.traces import TraceSet
from repro.core.process import (
    CorrelationProcess,
    CorrelationResult,
    ParameterError,
    ProcessParameters,
)


def synthetic_sets(seed=0, n1=60, n2=400, l=128, sigma=1.0, same_signal=True):
    rng = np.random.default_rng(seed)
    signal_ref = np.sin(np.linspace(0, 6 * np.pi, l))
    signal_dut = signal_ref if same_signal else np.cos(np.linspace(0, 6 * np.pi, l))
    t_ref = TraceSet("ref", signal_ref + rng.normal(0, sigma, size=(n1, l)))
    t_dut = TraceSet("dut", signal_dut + rng.normal(0, sigma, size=(n2, l)))
    return t_ref, t_dut


SMALL = ProcessParameters(k=10, m=8, n1=60, n2=400)


class TestProcessParameters:
    def test_paper_defaults(self):
        p = ProcessParameters()
        assert (p.k, p.m, p.n1, p.n2) == (50, 20, 400, 10_000)
        assert p.alpha == 10.0

    def test_expression_1_enforced(self):
        with pytest.raises(ParameterError, match="expression \\(1\\)"):
            ProcessParameters(k=50, m=2, n1=40, n2=10_000)

    def test_expression_2_enforced(self):
        with pytest.raises(ParameterError, match="expression \\(2\\)"):
            ProcessParameters(k=50, m=20, n1=400, n2=999)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            ProcessParameters(k=0)

    def test_alpha_computation(self):
        p = ProcessParameters(k=10, m=10, n1=10, n2=500)
        assert p.alpha == 5.0


class TestCorrelationProcess:
    def test_produces_m_coefficients(self, rng):
        t_ref, t_dut = synthetic_sets()
        result = CorrelationProcess(SMALL).run(t_ref, t_dut, rng)
        assert len(result) == SMALL.m
        assert result.coefficients.shape == (8,)

    def test_coefficients_bounded(self, rng):
        t_ref, t_dut = synthetic_sets()
        result = CorrelationProcess(SMALL).run(t_ref, t_dut, rng)
        assert np.all(result.coefficients >= -1)
        assert np.all(result.coefficients <= 1)

    def test_metadata(self, rng):
        t_ref, t_dut = synthetic_sets()
        result = CorrelationProcess(SMALL).run(t_ref, t_dut, rng)
        assert result.ref_name == "ref"
        assert result.dut_name == "dut"
        assert result.parameters is SMALL

    def test_same_signal_correlates_high(self, rng):
        t_ref, t_dut = synthetic_sets(same_signal=True)
        result = CorrelationProcess(SMALL).run(t_ref, t_dut, rng)
        assert result.mean > 0.7

    def test_different_signal_correlates_low(self, rng):
        t_ref, t_dut = synthetic_sets(same_signal=False)
        result = CorrelationProcess(SMALL).run(t_ref, t_dut, rng)
        assert abs(result.mean) < 0.4

    def test_match_variance_smaller_than_mismatch(self):
        # The heart of the paper's variance distinguisher.
        t_ref, t_dut_match = synthetic_sets(seed=1, same_signal=True, sigma=0.5)
        _t, t_dut_other = synthetic_sets(seed=2, same_signal=False, sigma=0.5)
        process = CorrelationProcess(SMALL)
        match = process.run(t_ref, t_dut_match, np.random.default_rng(3))
        other = process.run(t_ref, t_dut_other, np.random.default_rng(3))
        assert match.variance < other.variance

    def test_strict_checks_declared_sizes(self, rng):
        t_ref, t_dut = synthetic_sets(n1=30)
        with pytest.raises(ParameterError, match="n1"):
            CorrelationProcess(SMALL).run(t_ref, t_dut, rng)

    def test_non_strict_allows_smaller_pools(self, rng):
        t_ref, t_dut = synthetic_sets(n1=30, n2=100)
        process = CorrelationProcess(SMALL, strict=False)
        result = process.run(t_ref, t_dut, rng)
        assert len(result) == SMALL.m

    def test_non_strict_still_requires_k(self, rng):
        t_ref, t_dut = synthetic_sets(n1=5)
        with pytest.raises(ParameterError, match="k"):
            CorrelationProcess(SMALL, strict=False).run(t_ref, t_dut, rng)

    def test_trace_length_mismatch(self, rng):
        t_ref, _ = synthetic_sets(l=128)
        _, t_dut = synthetic_sets(l=64)
        with pytest.raises(ParameterError, match="length"):
            CorrelationProcess(SMALL).run(t_ref, t_dut, rng)

    def test_precomputed_reference_is_used(self):
        t_ref, t_dut = synthetic_sets()
        process = CorrelationProcess(SMALL)
        reference = process.reference_trace(t_ref, np.random.default_rng(1))
        r1 = process.run(t_ref, t_dut, np.random.default_rng(2), reference=reference)
        r2 = process.run(t_ref, t_dut, np.random.default_rng(2), reference=reference)
        np.testing.assert_allclose(r1.coefficients, r2.coefficients)

    def test_single_reference_reduces_variance(self):
        # E8 ablation: a fresh reference per coefficient inflates the
        # spread of the C set (RefD noise leaks into it).
        t_ref, t_dut = synthetic_sets(sigma=1.5)
        single = CorrelationProcess(SMALL, single_reference=True)
        fresh = CorrelationProcess(SMALL, single_reference=False)
        variances_single = []
        variances_fresh = []
        for seed in range(10):
            variances_single.append(
                single.run(t_ref, t_dut, np.random.default_rng(seed)).variance
            )
            variances_fresh.append(
                fresh.run(t_ref, t_dut, np.random.default_rng(100 + seed)).variance
            )
        assert np.median(variances_single) < np.median(variances_fresh)

    def test_reproducible_given_seed(self):
        t_ref, t_dut = synthetic_sets()
        process = CorrelationProcess(SMALL)
        r1 = process.run(t_ref, t_dut, 99)
        r2 = process.run(t_ref, t_dut, 99)
        np.testing.assert_allclose(r1.coefficients, r2.coefficients)

    def test_fresh_reference_branch_matches_historical_loop(self):
        # Golden test for the vectorised E8 branch: same RNG stream,
        # bit-identical coefficients as the per-coefficient loop it
        # replaced.
        from repro.core.averaging import k_averaged_trace
        from repro.core.correlation import pearson

        t_ref, t_dut = synthetic_sets(sigma=1.2)
        p = SMALL
        generator = np.random.default_rng(41)
        expected = np.empty(p.m)
        for i in range(p.m):
            a_ref = k_averaged_trace(t_ref, p.k, generator)
            a_dut_one = k_averaged_trace(t_dut, p.k, generator)
            expected[i] = pearson(a_ref, a_dut_one)

        process = CorrelationProcess(SMALL, single_reference=False)
        result = process.run(t_ref, t_dut, np.random.default_rng(41))
        np.testing.assert_array_equal(result.coefficients, expected)

    def test_fresh_reference_branch_tolerates_readonly_matrices(self):
        t_ref, t_dut = synthetic_sets()
        t_ref.matrix.flags.writeable = False
        t_dut.matrix.flags.writeable = False
        process = CorrelationProcess(SMALL, single_reference=False)
        result = process.run(t_ref, t_dut, 5)
        assert result.coefficients.shape == (SMALL.m,)


class TestCorrelationResult:
    def test_mean_and_variance(self):
        result = CorrelationResult(
            ref_name="r",
            dut_name="d",
            parameters=SMALL,
            coefficients=np.array([0.5, 0.7, 0.9]),
        )
        assert result.mean == pytest.approx(0.7)
        assert result.variance == pytest.approx(np.var([0.5, 0.7, 0.9]))
