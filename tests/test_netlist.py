"""Tests for netlist assembly, validation and topological ordering."""

import pytest

from repro.hdl.combinational import Constant, Incrementer, LookupLogic, XorArray
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.register import DRegister


def make_counter_netlist(width=4):
    netlist = Netlist("counter")
    state = netlist.wire("state", width)
    nxt = netlist.wire("next", width)
    netlist.add(Incrementer("inc", state, nxt))
    netlist.add(DRegister("reg", nxt, state))
    return netlist


class TestAssembly:
    def test_duplicate_wire_rejected(self):
        netlist = Netlist("n")
        netlist.wire("w", 8)
        with pytest.raises(NetlistError):
            netlist.wire("w", 8)

    def test_duplicate_component_rejected(self):
        netlist = Netlist("n")
        out1, out2 = netlist.wire("o1", 8), netlist.wire("o2", 8)
        netlist.add(Constant("k", out1, 1))
        with pytest.raises(NetlistError):
            netlist.add(Constant("k", out2, 2))

    def test_component_lookup(self):
        netlist = make_counter_netlist()
        assert netlist.component("inc").name == "inc"
        with pytest.raises(KeyError):
            netlist.component("missing")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Netlist("")

    def test_component_partitions(self):
        netlist = make_counter_netlist()
        assert len(netlist.sequential_components) == 1
        assert len(netlist.combinational_components) == 1


class TestDriverChecks:
    def test_double_driver_rejected(self):
        netlist = Netlist("n")
        out = netlist.wire("o", 8)
        netlist.add(Constant("k1", out, 1))
        netlist.add(Constant("k2", out, 2))
        with pytest.raises(NetlistError, match="driven by both"):
            netlist.validate()


class TestTopologicalOrder:
    def test_orders_by_dependency(self):
        netlist = Netlist("n")
        a = netlist.wire("a", 8)
        b = netlist.wire("b", 8)
        c = netlist.wire("c", 8)
        k = netlist.wire("k", 8)
        # Added in reverse dependency order on purpose.
        netlist.add(XorArray("second", b, k, c))
        netlist.add(LookupLogic("first", (a,), b, lambda x: x))
        netlist.add(Constant("key", k, 0xFF))
        order = [component.name for component in netlist.combinational_order()]
        assert order.index("first") < order.index("second")
        assert order.index("key") < order.index("second")

    def test_combinational_loop_detected(self):
        netlist = Netlist("n")
        a = netlist.wire("a", 8)
        b = netlist.wire("b", 8)
        netlist.add(LookupLogic("f", (a,), b, lambda x: x))
        netlist.add(LookupLogic("g", (b,), a, lambda x: x))
        with pytest.raises(NetlistError, match="combinational loop"):
            netlist.validate()

    def test_register_breaks_loop(self):
        # state -> inc -> next -> register -> state is fine.
        netlist = make_counter_netlist()
        netlist.validate()

    def test_order_is_cached_until_mutation(self):
        netlist = make_counter_netlist()
        first = netlist.combinational_order()
        assert netlist.combinational_order() is first
        extra = netlist.wire("extra", 8)
        netlist.add(Constant("k", extra, 1))
        assert netlist.combinational_order() is not first


class TestReset:
    def test_reset_restores_and_settles(self):
        netlist = make_counter_netlist()
        state = netlist.wires["state"]
        nxt = netlist.wires["next"]
        netlist.reset()
        assert state.value == 0
        assert nxt.value == 1  # combinational logic settled after reset
        assert state.previous == state.value
