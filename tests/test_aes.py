"""Tests for the AES-128 implementation against FIPS-197/NIST vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import (
    BLOCK_SIZE,
    decrypt_block,
    decrypt_bytes,
    decrypt_ecb,
    encrypt_block,
    encrypt_bytes,
    encrypt_ecb,
    expand_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)

block = st.lists(
    st.integers(min_value=0, max_value=255), min_size=16, max_size=16
)


class TestKnownVectors:
    def test_fips_197_appendix_b(self):
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert encrypt_bytes(plaintext, key) == expected

    def test_fips_197_appendix_c1(self):
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert encrypt_bytes(plaintext, key) == expected

    def test_fips_197_appendix_c1_decrypt(self):
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert decrypt_bytes(ciphertext, key) == expected

    def test_nist_sp800_38a_ecb_block1(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert encrypt_bytes(plaintext, key) == expected

    def test_all_zero_key_and_plaintext(self):
        out = encrypt_bytes(bytes(16), bytes(16))
        assert out == bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")


class TestKeySchedule:
    def test_first_round_key_is_the_key(self):
        key = list(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        round_keys = expand_key(key)
        assert round_keys[0] == key

    def test_eleven_round_keys(self):
        round_keys = expand_key([0] * 16)
        assert len(round_keys) == 11
        assert all(len(rk) == 16 for rk in round_keys)

    def test_fips_197_appendix_a_last_round_key(self):
        key = list(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        round_keys = expand_key(key)
        expected = list(bytes.fromhex("d014f9a8c9ee2589e13f0cc8b6630ca6"))
        assert round_keys[10] == expected

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            expand_key([0] * 15)

    def test_rejects_non_byte_values(self):
        with pytest.raises(ValueError):
            expand_key([0] * 15 + [256])


class TestRoundFunctions:
    @given(block)
    def test_sub_bytes_roundtrip(self, state):
        assert inv_sub_bytes(sub_bytes(state)) == state

    @given(block)
    def test_shift_rows_roundtrip(self, state):
        assert inv_shift_rows(shift_rows(state)) == state

    @given(block)
    def test_mix_columns_roundtrip(self, state):
        assert inv_mix_columns(mix_columns(state)) == state

    def test_shift_rows_row0_unchanged(self):
        state = list(range(16))
        shifted = shift_rows(state)
        # Row 0 lives at indices 0, 4, 8, 12 (column-major).
        assert [shifted[i] for i in (0, 4, 8, 12)] == [state[i] for i in (0, 4, 8, 12)]

    def test_mix_columns_fips_example(self):
        # FIPS-197: column [db, 13, 53, 45] -> [8e, 4d, a1, bc].
        column = [0xDB, 0x13, 0x53, 0x45]
        state = column + [0] * 12
        mixed = mix_columns(state)
        assert mixed[:4] == [0x8E, 0x4D, 0xA1, 0xBC]


class TestRoundTrips:
    @given(block, block)
    def test_encrypt_decrypt_roundtrip(self, plaintext, key):
        assert decrypt_block(encrypt_block(plaintext, key), key) == plaintext

    @given(block, block)
    def test_encryption_changes_the_block(self, plaintext, key):
        assert encrypt_block(plaintext, key) != plaintext

    def test_different_keys_different_ciphertexts(self):
        plaintext = [0x42] * 16
        c1 = encrypt_block(plaintext, [0x00] * 16)
        c2 = encrypt_block(plaintext, [0x01] + [0x00] * 15)
        assert c1 != c2


class TestECB:
    def test_ecb_roundtrip_two_blocks(self):
        data = list(range(32))
        key = [7] * 16
        assert decrypt_ecb(encrypt_ecb(data, key), key) == data

    def test_ecb_equal_blocks_equal_ciphertexts(self):
        # The well-known ECB weakness, used here as a correctness check.
        data = [0xAA] * 32
        out = encrypt_ecb(data, [1] * 16)
        assert out[:16] == out[16:]

    def test_ecb_rejects_partial_blocks(self):
        with pytest.raises(ValueError):
            encrypt_ecb([0] * 17, [0] * 16)
        with pytest.raises(ValueError):
            decrypt_ecb([0] * 15, [0] * 16)


class TestValidation:
    def test_rejects_short_block(self):
        with pytest.raises(ValueError):
            encrypt_block([0] * 15, [0] * 16)

    def test_rejects_non_byte_in_block(self):
        with pytest.raises(ValueError):
            encrypt_block([0] * 15 + [999], [0] * 16)

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 16
