"""Tests for counter machines and their netlist realisations."""

import pytest

from repro.fsm.counters import (
    binary_counter_machine,
    build_binary_counter,
    build_gray_counter,
    gray_counter_machine,
    johnson_counter_machine,
    lfsr_machine,
)
from repro.fsm.encoding import gray_encode
from repro.fsm.properties import is_permutation, period
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator


class TestAbstractCounters:
    def test_binary_counter_sequence(self):
        machine = binary_counter_machine(4)
        assert machine.run(6) == [0, 1, 2, 3, 4, 5]

    def test_binary_counter_period(self):
        assert period(binary_counter_machine(8)) == 256

    def test_gray_counter_states_are_gray_codes(self):
        machine = gray_counter_machine(4)
        assert set(machine.states) == {gray_encode(i, 4) for i in range(16)}

    def test_gray_counter_sequence(self):
        machine = gray_counter_machine(3)
        assert machine.run(8) == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_gray_counter_period(self):
        assert period(gray_counter_machine(8)) == 256

    def test_johnson_counter_period(self):
        assert period(johnson_counter_machine(8)) == 16

    def test_counters_are_permutations(self):
        assert is_permutation(binary_counter_machine(4))
        assert is_permutation(gray_counter_machine(4))
        assert is_permutation(johnson_counter_machine(4))


class TestLFSR:
    def test_maximal_length_4bit(self):
        # Taps (3, 2) give the maximal 15-state sequence for width 4
        # with the shift-left Fibonacci form used here.
        machine = lfsr_machine(4, taps=[3, 2], seed=1)
        assert period(machine) == 15

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            lfsr_machine(4, taps=[3, 2], seed=0)

    def test_bad_tap_rejected(self):
        with pytest.raises(ValueError):
            lfsr_machine(4, taps=[4], seed=1)

    def test_state_zero_not_reachable(self):
        machine = lfsr_machine(4, taps=[3, 2], seed=1)
        assert 0 not in machine.run(30)


class TestBinaryCounterNetlist:
    def test_matches_abstract_machine(self):
        netlist = Netlist("bin")
        build_binary_counter(netlist, 8)
        simulator = Simulator(netlist)
        hardware = simulator.state_sequence("ctr_reg", 300)
        machine = binary_counter_machine(8)
        software = machine.run(301)[1:]
        assert hardware == software

    def test_returns_state_register(self):
        netlist = Netlist("bin")
        register = build_binary_counter(netlist, 8)
        assert register.name == "ctr_reg"
        assert register.width == 8

    def test_custom_prefix(self):
        netlist = Netlist("bin")
        build_binary_counter(netlist, 8, prefix="x")
        assert "x_state" in netlist.wires


class TestGrayCounterNetlist:
    def test_matches_abstract_machine(self):
        netlist = Netlist("gray")
        build_gray_counter(netlist, 8)
        simulator = Simulator(netlist)
        hardware = simulator.state_sequence("ctr_reg", 300)
        expected = [gray_encode((i + 1) % 256, 8) for i in range(300)]
        assert hardware == expected

    def test_state_register_hd_is_constant_one(self):
        netlist = Netlist("gray")
        build_gray_counter(netlist, 8)
        trace = Simulator(netlist).run(256)
        series = trace.component_series("ctr_reg")
        assert set(series) == {1.0}

    def test_internal_binary_register_ripples(self):
        netlist = Netlist("gray")
        build_gray_counter(netlist, 8)
        trace = Simulator(netlist).run(8)
        series = trace.component_series("ctr_binreg")
        assert list(series) == [1, 2, 1, 3, 1, 2, 1, 4]

    def test_both_counters_share_ripple_pattern(self):
        # The shared carry pattern is what correlates different IPs in
        # the paper's Table I.
        bin_netlist = Netlist("bin")
        build_binary_counter(bin_netlist, 8)
        gray_netlist = Netlist("gray")
        build_gray_counter(gray_netlist, 8)
        bin_trace = Simulator(bin_netlist).run(64).component_series("ctr_reg")
        gray_trace = Simulator(gray_netlist).run(64).component_series("ctr_binreg")
        assert list(bin_trace) == list(gray_trace)
