"""Tests for the cycle-accurate simulator and activity traces."""

import numpy as np
import pytest

from repro.fsm.counters import build_binary_counter, build_gray_counter
from repro.hdl.activity import ActivityTrace, Channel
from repro.hdl.component import KIND_COMB, KIND_REGISTER
from repro.hdl.io import InputPort
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.simulator import Simulator


def binary_counter_netlist(width=8):
    netlist = Netlist("bin")
    build_binary_counter(netlist, width)
    return netlist


class TestSimulatorFunctional:
    def test_binary_counter_counts(self):
        simulator = Simulator(binary_counter_netlist())
        sequence = simulator.state_sequence("ctr_reg", 10)
        assert sequence == [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]

    def test_binary_counter_wraps(self):
        simulator = Simulator(binary_counter_netlist(width=4))
        sequence = simulator.state_sequence("ctr_reg", 20)
        assert sequence == [(i + 1) % 16 for i in range(20)]

    def test_gray_counter_single_bit_steps(self):
        netlist = Netlist("gray")
        build_gray_counter(netlist, 8)
        simulator = Simulator(netlist)
        sequence = simulator.state_sequence("ctr_reg", 256)
        full = [0] + sequence
        for a, b in zip(full, full[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_input_port_drives_register(self):
        netlist = Netlist("io")
        data = netlist.wire("data", 4)
        q = netlist.wire("q", 4)
        netlist.add(InputPort("in", data, stimulus=lambda cycle: cycle % 16))
        netlist.add(DRegister("reg", data, q))
        simulator = Simulator(netlist)
        # The first edge captures stimulus(0); the port then advances.
        sequence = simulator.state_sequence("reg", 5)
        assert sequence == [0, 1, 2, 3, 4]


class TestSimulatorActivity:
    def test_run_shapes(self):
        simulator = Simulator(binary_counter_netlist())
        trace = simulator.run(256)
        assert trace.n_cycles == 256
        assert trace.n_channels >= 3

    def test_register_activity_matches_hd(self):
        simulator = Simulator(binary_counter_netlist())
        trace = simulator.run(8)
        series = trace.component_series("ctr_reg")
        # HD(i, i+1) for i = 0..7 is 1,2,1,3,1,2,1,4.
        assert list(series) == [1, 2, 1, 3, 1, 2, 1, 4]

    def test_binary_counter_period_in_activity(self):
        simulator = Simulator(binary_counter_netlist())
        trace = simulator.run(512)
        series = trace.component_series("ctr_reg")
        assert np.array_equal(series[:256], series[256:])

    def test_determinism_across_runs(self):
        trace1 = Simulator(binary_counter_netlist()).run(64)
        trace2 = Simulator(binary_counter_netlist()).run(64)
        assert np.array_equal(trace1.matrix, trace2.matrix)

    def test_reset_between_runs(self):
        simulator = Simulator(binary_counter_netlist())
        first = simulator.run(32)
        second = simulator.run(32)
        assert np.array_equal(first.matrix, second.matrix)

    def test_rejects_nonpositive_cycles(self):
        simulator = Simulator(binary_counter_netlist())
        with pytest.raises(ValueError):
            simulator.run(0)

    def test_clock_channel_is_constant(self):
        simulator = Simulator(binary_counter_netlist())
        trace = simulator.run(16)
        clock = trace.component_series("ctr_clk")
        assert np.all(clock == clock[0])
        assert clock[0] > 0


class TestActivityTrace:
    def make_trace(self):
        channels = [Channel("a", KIND_REGISTER), Channel("b", KIND_COMB)]
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        return ActivityTrace(channels, matrix)

    def test_component_series(self):
        trace = self.make_trace()
        assert list(trace.component_series("a")) == [1.0, 3.0]

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            self.make_trace().component_series("zzz")

    def test_kind_series_sums(self):
        trace = self.make_trace()
        assert list(trace.kind_series(KIND_COMB)) == [2.0, 4.0]

    def test_kind_series_missing_kind_is_zero(self):
        trace = self.make_trace()
        assert list(trace.kind_series("io")) == [0.0, 0.0]

    def test_total_series(self):
        trace = self.make_trace()
        assert list(trace.total_series()) == [3.0, 7.0]

    def test_weighted_series(self):
        trace = self.make_trace()
        assert list(trace.weighted_series([2.0, 0.5])) == [3.0, 8.0]

    def test_weighted_series_shape_check(self):
        with pytest.raises(ValueError):
            self.make_trace().weighted_series([1.0])

    def test_rejects_negative_activity(self):
        channels = [Channel("a", KIND_REGISTER)]
        with pytest.raises(ValueError):
            ActivityTrace(channels, np.array([[-1.0]]))

    def test_rejects_channel_mismatch(self):
        channels = [Channel("a", KIND_REGISTER)]
        with pytest.raises(ValueError):
            ActivityTrace(channels, np.zeros((2, 2)))

    def test_kinds_in_order(self):
        trace = self.make_trace()
        assert trace.kinds() == [KIND_REGISTER, KIND_COMB]

    def test_channel_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Channel("a", "nope")
