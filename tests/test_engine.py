"""Golden equivalence tests: compiled engine vs interpreted oracle.

The compiled engine must be *bit-identical* to the interpreted
reference loop — same channel tuples, exactly equal activity matrices,
same state sequences, same post-run netlist state — for every paper
design and for every component type the lowering pass supports.
"""

import numpy as np
import pytest

from repro.acquisition.device import (
    Device,
    clear_fleet_activity_cache,
    fleet_activity_cache_size,
)
from repro.experiments.designs import (
    PAPER_IP_NAMES,
    PERIOD_CYCLES,
    build_device_fleet,
    build_paper_ip,
)
from repro.fsm.counters import (
    build_binary_counter,
    build_gray_counter,
    build_johnson_counter,
    build_lfsr,
)
from repro.fsm.watermark import (
    attach_leakage_component,
    attach_wide_leakage_component,
)
from repro.hdl import (
    CompileError,
    Constant,
    DRegister,
    GrayToBinary,
    InputPort,
    LookupLogic,
    Mux2,
    Netlist,
    Simulator,
    TransitionTable,
    compile_netlist,
)
from repro.hdl.component import Component
from repro.power.models import PowerModel


def engine_pair(build):
    """Two identically built netlists, one per engine."""
    compiled_netlist, interpreted_netlist = Netlist("n"), Netlist("n")
    build(compiled_netlist)
    build(interpreted_netlist)
    return (
        Simulator(compiled_netlist, engine="compiled"),
        Simulator(interpreted_netlist, engine="interpreted"),
    )


def assert_equivalent(build, cycles):
    compiled, interpreted = engine_pair(build)
    trace_c = compiled.run(cycles)
    trace_i = interpreted.run(cycles)
    assert trace_c.channels == trace_i.channels
    assert np.array_equal(trace_c.matrix, trace_i.matrix)
    # Continuation without reset must agree too (post-run state parity).
    cont_c = compiled.run(max(cycles // 3, 1), reset=False)
    cont_i = interpreted.run(max(cycles // 3, 1), reset=False)
    assert np.array_equal(cont_c.matrix, cont_i.matrix)
    return compiled, interpreted


class TestPaperDesignEquivalence:
    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_watermarked_designs_bit_identical(self, ip_name):
        compiled = Simulator(build_paper_ip(ip_name).netlist, engine="compiled")
        interpreted = Simulator(
            build_paper_ip(ip_name).netlist, engine="interpreted"
        )
        trace_c = compiled.run(PERIOD_CYCLES)
        trace_i = interpreted.run(PERIOD_CYCLES)
        assert compiled.engine_name == "compiled"
        assert trace_c.channels == trace_i.channels
        assert np.array_equal(trace_c.matrix, trace_i.matrix)

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_unwatermarked_designs_bit_identical(self, ip_name):
        compiled = Simulator(
            build_paper_ip(ip_name, watermarked=False).netlist, engine="compiled"
        )
        interpreted = Simulator(
            build_paper_ip(ip_name, watermarked=False).netlist,
            engine="interpreted",
        )
        assert np.array_equal(
            compiled.run(PERIOD_CYCLES).matrix,
            interpreted.run(PERIOD_CYCLES).matrix,
        )

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_post_reset_state_sequences(self, ip_name):
        compiled = Simulator(build_paper_ip(ip_name).netlist, engine="compiled")
        interpreted = Simulator(
            build_paper_ip(ip_name).netlist, engine="interpreted"
        )
        for register in ("ctr_reg", "wm_hreg"):
            assert compiled.state_sequence(
                register, PERIOD_CYCLES
            ) == interpreted.state_sequence(register, PERIOD_CYCLES)

    def test_long_run_memoised_path(self):
        # Beyond the design's 256-cycle period the compiled runner tiles
        # the periodic suffix; results must stay exactly equal.
        compiled = Simulator(build_paper_ip("IP_B").netlist, engine="compiled")
        interpreted = Simulator(
            build_paper_ip("IP_B").netlist, engine="interpreted"
        )
        assert np.array_equal(
            compiled.run(1000).matrix, interpreted.run(1000).matrix
        )


class TestComponentZooEquivalence:
    def test_johnson_counter(self):
        assert_equivalent(lambda n: build_johnson_counter(n, 8), 64)

    def test_lfsr(self):
        assert_equivalent(lambda n: build_lfsr(n, 8, [7, 5, 4, 3]), 300)

    def test_wide_state_fold(self):
        def build(n):
            build_gray_counter(n, 12)
            attach_leakage_component(n, n.wires["ctr_state"], 0x5A)

        assert_equivalent(build, 128)

    def test_narrow_state_widen(self):
        def build(n):
            build_johnson_counter(n, 4)
            attach_leakage_component(n, n.wires["ctr_state"], 0x11)

        assert_equivalent(build, 40)

    def test_wide_leakage_component(self):
        def build(n):
            build_gray_counter(n, 8)
            attach_wide_leakage_component(n, n.wires["ctr_state"], 0xBEEF)

        assert_equivalent(build, 128)

    def test_mux_and_gray_decode(self):
        def build(n):
            build_gray_counter(n, 8, prefix="c")
            select = n.wire("sel", 1)
            alt = n.wire("alt", 8)
            out = n.wire("out", 8)
            decoded = n.wire("dec", 8)
            n.add(Constant("ca", alt, 0x0F))
            n.add(LookupLogic("selbit", (n.wires["c_state"],), select, lambda v: v & 1))
            n.add(Mux2("mux", select, alt, n.wires["c_state"], out))
            n.add(GrayToBinary("g2b", out, decoded))

        assert_equivalent(build, 80)

    def test_transition_table(self):
        def build(n):
            state = n.wire("st", 3)
            nxt = n.wire("nx", 3)
            n.add(
                TransitionTable(
                    "tt", state, nxt, {i: (3 * i + 1) % 8 for i in range(8)}
                )
            )
            n.add(DRegister("reg", nxt, state, reset_value=2))

        assert_equivalent(build, 30)

    def test_input_ports(self):
        def build(n):
            data = n.wire("data", 4)
            q = n.wire("q", 4)
            n.add(InputPort("in", data, stimulus=lambda c: (5 * c) % 16))
            n.add(DRegister("reg", data, q))

        compiled, interpreted = assert_equivalent(build, 40)
        # Stimulus closures cannot be fingerprinted.
        assert compiled.structural_key is None

    def test_partial_transition_table_raises_same_error(self):
        def build(n):
            state = n.wire("st", 3)
            nxt = n.wire("nx", 3)
            n.add(TransitionTable("tt", state, nxt, {0: 1, 1: 2}))
            n.add(DRegister("reg", nxt, state))

        compiled, interpreted = engine_pair(build)
        with pytest.raises(KeyError) as err_i:
            interpreted.run(8)
        with pytest.raises(KeyError) as err_c:
            compiled.run(8)
        assert str(err_c.value) == str(err_i.value)


class TestEngineSelection:
    def test_auto_prefers_compiled(self):
        simulator = Simulator(build_paper_ip("IP_A").netlist)
        assert simulator.engine_name == "compiled"
        assert simulator.structural_key is not None

    def test_unknown_component_falls_back(self):
        class Exotic(Component):
            pass

        netlist = Netlist("x")
        build_binary_counter(netlist, 4)
        netlist.add(Exotic("weird"))
        simulator = Simulator(netlist)
        assert simulator.engine_name == "interpreted"
        with pytest.raises(CompileError):
            Simulator(netlist, engine="compiled")

    def test_invalid_engine_name(self):
        with pytest.raises(ValueError):
            Simulator(build_paper_ip("IP_A").netlist, engine="turbo")

    def test_netlist_growth_triggers_recompile(self):
        netlist = Netlist("grow")
        build_binary_counter(netlist, 4, prefix="a")
        simulator = Simulator(netlist, engine="compiled")
        before = simulator.run(8)
        build_binary_counter(netlist, 4, prefix="b")
        after = simulator.run(8)
        assert after.n_channels > before.n_channels

    def test_first_run_without_reset_matches_oracle(self):
        # Regression: constants must be driven inside the step loop too;
        # on a never-reset netlist their wires still hold the power-on
        # initial, and cycle 0 must observe that transition exactly as
        # the interpreted oracle does.
        def build(netlist):
            key = netlist.wire("key", 8)
            state = netlist.wire("state", 8)
            mixed = netlist.wire("mixed", 8)
            netlist.add(Constant("k", key, 0x0A))
            netlist.add(LookupLogic("mix", (key, state), mixed, lambda a, b: a ^ b))
            netlist.add(DRegister("reg", mixed, state))

        compiled, interpreted = engine_pair(build)
        trace_c = compiled.run(6, reset=False)
        trace_i = interpreted.run(6, reset=False)
        assert np.array_equal(trace_c.matrix, trace_i.matrix)
        assert np.any(trace_i.matrix > 0)
        assert compiled.netlist.wires["key"].value == 0x0A

    def test_interleaved_engines_share_netlist_state(self):
        # Compiled writes its final state back onto the netlist objects,
        # so an interpreted continuation picks up where it left off.
        netlist = Netlist("mix")
        build_binary_counter(netlist, 8)
        compiled = Simulator(netlist, engine="compiled")
        compiled.run(10)
        interpreted = Simulator(netlist, engine="interpreted")
        continued = interpreted.run(6, reset=False)

        oracle_netlist = Netlist("mix")
        build_binary_counter(oracle_netlist, 8)
        oracle = Simulator(oracle_netlist, engine="interpreted")
        oracle.run(10)
        expected = oracle.run(6, reset=False)
        assert np.array_equal(continued.matrix, expected.matrix)


class TestStructuralFingerprint:
    def test_same_structure_same_key(self):
        keys = set()
        for _ in range(2):
            simulator = Simulator(build_paper_ip("IP_C").netlist)
            keys.add(simulator.structural_key)
        assert len(keys) == 1

    def test_key_distinguishes_watermark_keys(self):
        key_c = Simulator(build_paper_ip("IP_C").netlist).structural_key
        key_d = Simulator(build_paper_ip("IP_D").netlist).structural_key
        assert key_c != key_d

    def test_key_ignores_netlist_name(self):
        ip = build_paper_ip("IP_A")
        key_before = Simulator(ip.netlist).structural_key
        ip.netlist.name = "some_device_label"
        assert Simulator(ip.netlist).structural_key == key_before

    def test_lowered_closures_are_fingerprintable(self):
        # LFSR feedback is a closure, but tablefication canonicalises it.
        def build(taps):
            netlist = Netlist("l")
            build_lfsr(netlist, 8, taps)
            return Simulator(netlist).structural_key

        assert build([7, 5, 4, 3]) == build([7, 5, 4, 3])
        assert build([7, 5, 4, 3]) != build([7, 5, 3, 2])


class TestFleetActivitySharing:
    def test_fleet_simulates_each_distinct_netlist_once(self):
        clear_fleet_activity_cache()
        refds, duts = build_device_fleet(seed=2014)
        for device in (*refds.values(), *duts.values()):
            device.activity()
        assert fleet_activity_cache_size() == len(refds)

    def test_matching_pairs_share_trace_objects(self):
        clear_fleet_activity_cache()
        refds, duts = build_device_fleet(seed=2014)
        assert refds["IP_A"].activity() is duts["DUT#1"].activity()
        assert refds["IP_B"].activity() is duts["DUT#2"].activity()
        assert refds["IP_B"].activity() is not duts["DUT#3"].activity()

    def test_resolved_cycles_share_cache_entry(self):
        clear_fleet_activity_cache()
        ip = build_paper_ip("IP_A")
        device = Device("dev", ip, PowerModel(), default_cycles=64)
        assert device.activity() is device.activity(64)
        assert device.resolve_cycles(None) == 64
        assert device.resolve_cycles(16) == 16


class TestProgramSharing:
    def test_identical_structures_share_one_program(self):
        from repro.hdl.engine import (
            clear_program_cache,
            compile_netlist,
            program_cache_size,
        )

        clear_program_cache()
        first = compile_netlist(build_paper_ip("IP_B").netlist)
        second = compile_netlist(build_paper_ip("IP_B").netlist)
        trace_a = first.run(32)
        trace_b = second.run(32)
        assert program_cache_size() == 1
        assert second.program_shared and not first.program_shared
        assert second._run is first._run
        assert np.array_equal(trace_a.matrix, trace_b.matrix)

    def test_distinct_structures_get_distinct_programs(self):
        from repro.hdl.engine import (
            clear_program_cache,
            compile_netlist,
            program_cache_size,
        )

        clear_program_cache()
        compile_netlist(build_paper_ip("IP_C").netlist).run(16)
        compile_netlist(build_paper_ip("IP_D").netlist).run(16)
        assert program_cache_size() == 2

    def test_shared_program_keeps_netlists_independent(self):
        from repro.hdl.engine import clear_program_cache, compile_netlist

        clear_program_cache()
        ip_one = build_paper_ip("IP_A")
        ip_two = build_paper_ip("IP_A")
        engine_one = compile_netlist(ip_one.netlist)
        engine_two = compile_netlist(ip_two.netlist)
        engine_one.run(10)
        engine_two.run(3)
        # Each netlist's write-back state reflects its own run length.
        state_one = ip_one.state_register.q.value
        state_two = ip_two.state_register.q.value
        assert state_one == 10 % 256
        assert state_two == 3 % 256

    def test_fleet_compiles_each_structure_once(self):
        from repro.hdl.engine import clear_program_cache, program_cache_size

        clear_program_cache()
        clear_fleet_activity_cache()
        refds, duts = build_device_fleet(seed=2014)
        for device in (*refds.values(), *duts.values()):
            device.activity(64)
        assert program_cache_size() <= len(refds)
