"""Tests for cross-scenario artifact sharing.

Covers the three-key config split, the sharing-safe acquisition
refactor (keyed per-device seeds, chunked noise generation, ADC grid
invariance, read-only cache views, prefix reuse) and the headline
guarantee: sweeps produce byte-identical stores with sharing on or
off, for any worker count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os

import numpy as np
import pytest

from repro.acquisition.bench import MeasurementBench, derive_acquisition_seed
from repro.acquisition.oscilloscope import ADCConfig, Oscilloscope
from repro.acquisition.traces import TraceSet
from repro.core.process import ProcessParameters
from repro.experiments.artifacts import (
    ArtifactCache,
    ArtifactOptions,
    analysis_key,
    fleet_key,
    measurement_base_key,
    measurement_key,
    process_artifact_cache,
    clear_process_artifact_cache,
)
from repro.experiments.designs import build_paper_ip
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.power.models import PowerModel
from repro.power.noise import NoiseModel
from repro.sweeps import GridAxis, SweepSpec, SweepStore, run_sweep
from repro.acquisition.device import Device


QUICK = ProcessParameters(k=4, m=4, n1=32, n2=64)


def quick_config(**overrides) -> CampaignConfig:
    return CampaignConfig(parameters=QUICK, **overrides)


def make_device(name="dev", cycles=64) -> Device:
    return Device(name, build_paper_ip("IP_A"), PowerModel(), default_cycles=cycles)


def store_digests(root):
    # Top-level result files only; .attempts/ etc. are outside the
    # byte-identity invariant.
    digests = {}
    for entry in sorted(os.listdir(root)):
        path = os.path.join(root, entry)
        if entry.startswith(".") or not os.path.isfile(path):
            continue
        with open(path, "rb") as handle:
            digests[entry] = hashlib.sha256(handle.read()).hexdigest()
    return digests


def coefficient_matrix(outcome):
    return {
        (ref, dut): outcome.reports[ref].results[dut].coefficients
        for ref in outcome.ref_order
        for dut in outcome.dut_order
    }


class TestConfigKeys:
    def test_analysis_axes_leave_lower_keys_unchanged(self):
        base = quick_config()
        analysis_only = dataclasses.replace(
            base,
            parameters=ProcessParameters(k=8, m=8, n1=64, n2=128),
            analysis_seed=99,
            single_reference=False,
        )
        assert fleet_key(base) == fleet_key(analysis_only)
        assert measurement_base_key(base) == measurement_base_key(analysis_only)
        assert measurement_key(base) != measurement_key(analysis_only)  # ceilings
        assert analysis_key(base) != analysis_key(analysis_only)

    def test_measurement_axes_change_measurement_not_fleet(self):
        base = quick_config()
        noisy = dataclasses.replace(base, noise=NoiseModel(sigma=1.5))
        reseeded = dataclasses.replace(base, measurement_seed=1234)
        for other in (noisy, reseeded):
            assert fleet_key(base) == fleet_key(other)
            assert measurement_base_key(base) != measurement_base_key(other)
            assert analysis_key(base) != analysis_key(other)

    def test_fleet_axes_change_every_key(self):
        base = quick_config()
        refab = dataclasses.replace(base, fleet_seed=777)
        plain = dataclasses.replace(base, watermarked=False)
        for other in (refab, plain):
            assert fleet_key(base) != fleet_key(other)
            assert measurement_base_key(base) != measurement_base_key(other)
            assert analysis_key(base) != analysis_key(other)

    def test_engine_changes_fleet_key_but_not_measurements(self):
        # The simulation path is bit-equivalent on waveforms, so it must
        # not perturb acquisition seeds — but cached Device objects pin
        # their engine, so the fleet cache distinguishes it.
        base = quick_config()
        other = dataclasses.replace(base, engine="interpreted")
        assert fleet_key(base) != fleet_key(other)
        assert measurement_base_key(base) == measurement_base_key(other)

    def test_fleet_tag_separates_attacked_artifacts(self):
        base = quick_config()
        assert fleet_key(base, "none") != fleet_key(base, "strip")
        assert measurement_base_key(base, "none") != measurement_base_key(
            base, "strip"
        )

    def test_keys_are_stable_strings(self):
        base = quick_config()
        assert fleet_key(base) == fleet_key(quick_config())
        for key in (
            fleet_key(base),
            measurement_base_key(base),
            measurement_key(base),
            analysis_key(base),
        ):
            assert isinstance(key, str) and len(key) == 32


class TestKeyedAcquisition:
    def test_device_alone_equals_device_inside_campaign(self):
        # The sharing-safe property: acquiring one device is independent
        # of what else the bench measured before it.
        scope_kwargs = dict(noise=NoiseModel(sigma=1.0), adc=ADCConfig())
        d1, d2 = make_device("a"), make_device("b")
        full = MeasurementBench(Oscilloscope(**scope_kwargs), key="K")
        full.measure(d1, 30)
        inside = full.measure(d2, 20)
        alone = MeasurementBench(Oscilloscope(**scope_kwargs), key="K").measure(
            d2, 20
        )
        np.testing.assert_array_equal(inside.matrix, alone.matrix)

    def test_prefix_stability_across_budgets(self):
        device = make_device()
        scope = Oscilloscope(adc=ADCConfig())
        seed = derive_acquisition_seed("K", device.name, 64)
        big = scope.acquire(device, 200, np.random.default_rng(seed))
        small = scope.acquire(device, 50, np.random.default_rng(seed))
        np.testing.assert_array_equal(big.matrix[:50], small.matrix)

    def test_drift_noise_keeps_chunk_and_prefix_stability(self):
        # The drift random walk runs within a trace, so drawing must
        # stay trace-major: chunked and truncated acquisitions must
        # reproduce the one-shot bytes even with drift enabled.
        device = make_device()
        noise = NoiseModel(sigma=1.0, drift_sigma=0.5)
        seed = derive_acquisition_seed("K", device.name, 64)
        one_shot = Oscilloscope(noise=noise).acquire(
            device, 60, np.random.default_rng(seed)
        )
        row_bytes = 8 * device.trace_length()
        chunked = Oscilloscope(noise=noise, max_chunk_bytes=7 * row_bytes).acquire(
            device, 60, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(one_shot.matrix, chunked.matrix)
        prefix = Oscilloscope(noise=noise).acquire(
            device, 25, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(one_shot.matrix[:25], prefix.matrix)

    def test_chunked_equals_unchunked(self):
        device = make_device()
        seed = derive_acquisition_seed("K", device.name, 64)
        for adc in (None, ADCConfig(bits=8)):
            one_shot = Oscilloscope(adc=adc).acquire(
                device, 100, np.random.default_rng(seed)
            )
            row_bytes = 8 * device.trace_length()
            for chunk_bytes in (row_bytes, 3 * row_bytes, 64 * row_bytes):
                chunked = Oscilloscope(
                    adc=adc, max_chunk_bytes=chunk_bytes
                ).acquire(device, 100, np.random.default_rng(seed))
                np.testing.assert_array_equal(one_shot.matrix, chunked.matrix)

    def test_quantisation_grid_invariant_to_trace_count(self):
        # The ADC window derives from the deterministic base waveform,
        # so acquisitions of different sizes share one grid.
        device = make_device()
        scope = Oscilloscope(adc=ADCConfig(bits=6))
        few = scope.acquire(device, 5, np.random.default_rng(0))
        many = scope.acquire(device, 500, np.random.default_rng(1))
        grid = np.unique(np.concatenate([few.matrix.ravel(), many.matrix.ravel()]))
        steps = np.diff(grid)
        step = steps[steps > 1e-12].min()
        # Both acquisitions share one grid origin, so every level is an
        # integer number of steps above the common minimum.
        offsets = (grid - grid.min()) / step
        np.testing.assert_allclose(offsets, np.round(offsets), atol=1e-6)

    def test_rows_per_chunk_floor(self):
        scope = Oscilloscope(max_chunk_bytes=1)
        assert scope.rows_per_chunk(1024) == 1
        with pytest.raises(ValueError):
            Oscilloscope(max_chunk_bytes=0)

    def test_bench_cache_hit_is_readonly_view(self):
        bench = MeasurementBench(seed=0)
        device = make_device()
        first = bench.measure(device, 50)
        view = bench.measure(device, 20)
        assert not view.matrix.flags.writeable
        assert not first.matrix.flags.writeable
        # Zero-copy: the view shares the cached matrix's memory.
        assert np.shares_memory(view.matrix, first.matrix)
        np.testing.assert_array_equal(view.matrix, first.matrix[:20])

    def test_traceset_tolerates_readonly_matrix(self):
        matrix = np.random.default_rng(0).normal(size=(4, 8))
        matrix.flags.writeable = False
        traces = TraceSet("dev", matrix)
        assert traces.mean_trace().shape == (8,)
        copied = traces.subset([0, 2])
        assert copied.matrix.flags.writeable  # subsets stay private copies


class TestArtifactCache:
    def test_campaign_sharing_is_byte_identical(self):
        cfg = quick_config()
        unshared = coefficient_matrix(run_campaign(cfg))
        cache = ArtifactCache()
        cold = coefficient_matrix(run_campaign(cfg, artifacts=cache))
        # An identical config repeats the whole campaign from the
        # outcome memo — no fleet or trace tier involved at all.
        warm = coefficient_matrix(run_campaign(cfg, artifacts=cache))
        assert cache.stats.outcome_hits == 1
        assert cache.stats.fleet_hits == 0
        assert cache.stats.trace_hits == 0
        # A config differing only in an analysis-side knob misses the
        # outcome memo but shares the fleet and every trace matrix.
        rotated = dataclasses.replace(cfg, analysis_seed=cfg.analysis_seed + 1)
        run_campaign(rotated, artifacts=cache)
        assert cache.stats.fleet_hits == 1
        assert cache.stats.trace_hits == 8
        for pair, coefficients in unshared.items():
            np.testing.assert_array_equal(coefficients, cold[pair])
            np.testing.assert_array_equal(coefficients, warm[pair])

    def test_prefix_reuse_across_ceilings(self):
        cache = ArtifactCache()
        big = quick_config()
        run_campaign(big, artifacts=cache)
        assert cache.stats.trace_misses == 8
        small_params = ProcessParameters(k=4, m=4, n1=16, n2=48)
        small = dataclasses.replace(big, parameters=small_params)
        shared = coefficient_matrix(run_campaign(small, artifacts=cache))
        # All 8 trace sets served by prefix from the bigger acquisition.
        assert cache.stats.trace_misses == 8
        direct = coefficient_matrix(run_campaign(small))
        for pair, coefficients in direct.items():
            np.testing.assert_array_equal(coefficients, shared[pair])

    def test_run_campaign_fleet_tag_applies_transform(self):
        # run_campaign must manufacture *transformed* fleets for a
        # non-trivial fleet_tag — with and without a cache — so an
        # attacked campaign can never silently run on pristine devices.
        cfg = quick_config()
        pristine = coefficient_matrix(run_campaign(cfg))
        stripped = coefficient_matrix(run_campaign(cfg, fleet_tag="strip"))
        assert any(
            not np.array_equal(pristine[pair], stripped[pair])
            for pair in pristine
        )
        cache = ArtifactCache()
        shared = coefficient_matrix(
            run_campaign(cfg, artifacts=cache, fleet_tag="strip")
        )
        for pair, coefficients in stripped.items():
            np.testing.assert_array_equal(coefficients, shared[pair])
        with pytest.raises(KeyError):
            run_campaign(cfg, fleet_tag="no-such-attack")

    def test_explicit_fleet_with_artifacts_requires_cache_provenance(self):
        # An arbitrary fleet= cannot be combined with artifacts=: the
        # trace cache could not tell its traces from the config-built
        # fleet's.  A fleet obtained from the cache itself is fine.
        from repro.experiments.runner import manufacture_fleet, repeated_accuracy

        cfg = quick_config()
        cache = ArtifactCache()
        with pytest.raises(ValueError, match="artifacts.fleet"):
            run_campaign(cfg, fleet=manufacture_fleet(cfg), artifacts=cache)
        fleet = cache.fleet(cfg, "none", lambda: manufacture_fleet(cfg))
        outcome = run_campaign(cfg, fleet=fleet, artifacts=cache)
        baseline = coefficient_matrix(run_campaign(cfg))
        for pair, coefficients in coefficient_matrix(outcome).items():
            np.testing.assert_array_equal(coefficients, baseline[pair])
        # repeated_accuracy routes its fleet through the cache, so the
        # provenance check accepts it.
        shared = repeated_accuracy(cfg, n_repeats=2, artifacts=ArtifactCache())
        unshared = repeated_accuracy(cfg, n_repeats=2)
        assert shared == unshared

    def test_memory_budget_evicts_lru(self):
        device = make_device()
        cfg = quick_config()
        row_bytes = 8 * device.trace_length()
        cache = ArtifactCache(ArtifactOptions(max_trace_bytes=30 * row_bytes))
        cache.traces(cfg, make_device("a"), 20)
        cache.traces(cfg, make_device("b"), 20)
        assert cache.stats.bytes_in_memory <= 30 * row_bytes
        assert cache.stats.peak_bytes >= 20 * row_bytes

    def test_disk_tier_round_trip(self, tmp_path):
        root = str(tmp_path / "artifacts")
        cfg = quick_config()
        device = make_device()
        writer = ArtifactCache(ArtifactOptions(root=root))
        acquired = writer.traces(cfg, device, 25)
        reader = ArtifactCache(ArtifactOptions(root=root))
        loaded = reader.traces(cfg, make_device(), 25)
        assert reader.stats.disk_hits == 1
        assert reader.stats.trace_misses == 0
        np.testing.assert_array_equal(acquired.matrix, loaded.matrix)

    def test_disk_tier_upgrades_to_larger_ceiling(self, tmp_path):
        root = str(tmp_path / "artifacts")
        cfg = quick_config()
        first = ArtifactCache(ArtifactOptions(root=root))
        first.traces(cfg, make_device(), 10)
        second = ArtifactCache(ArtifactOptions(root=root))
        bigger = second.traces(cfg, make_device(), 40)
        assert second.stats.trace_misses == 1  # disk copy too small
        third = ArtifactCache(ArtifactOptions(root=root))
        reloaded = third.traces(cfg, make_device(), 40)
        assert third.stats.disk_hits == 1
        np.testing.assert_array_equal(bigger.matrix, reloaded.matrix)

    def test_fleet_requires_factory_on_miss(self):
        cache = ArtifactCache()
        with pytest.raises(KeyError):
            cache.fleet(quick_config())

    def test_process_cache_reconfigures_on_new_options(self):
        clear_process_artifact_cache()
        try:
            default = process_artifact_cache()
            assert process_artifact_cache() is default
            resized = process_artifact_cache(
                ArtifactOptions(max_trace_bytes=1024)
            )
            assert resized is not default
            assert process_artifact_cache(
                ArtifactOptions(max_trace_bytes=1024)
            ) is resized
        finally:
            clear_process_artifact_cache()


def sharing_spec(name="shared", seed=5, pinned=True, attacks=("none",)):
    base = {
        "parameters.n1": 32,
        "parameters.n2": 64,
        "noise.sigma": 1.0,
    }
    if pinned:
        base.update({"fleet_seed": 2014, "measurement_seed": 42})
    return SweepSpec(
        name=name,
        grid=(
            GridAxis("parameters.k", (4, 8)),
            GridAxis("parameters.m", (4, 8)),
            GridAxis("attack", tuple(attacks)),
        ),
        base=base,
        seed=seed,
    )


class TestSweepSharingByteIdentity:
    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_store_digests_identical_with_and_without_sharing(
        self, tmp_path, n_workers
    ):
        spec = sharing_spec(attacks=("none", "strip"))
        plain = SweepStore(str(tmp_path / f"plain{n_workers}"))
        shared = SweepStore(str(tmp_path / f"shared{n_workers}"))
        run_sweep(spec, plain, n_workers=n_workers)
        run_sweep(
            spec, shared, n_workers=n_workers, artifacts=ArtifactOptions()
        )
        assert store_digests(plain.root) == store_digests(shared.root)

    def test_disk_tier_matches_memory_only_sharing(self, tmp_path):
        spec = sharing_spec()
        memory = SweepStore(str(tmp_path / "memory"))
        disk = SweepStore(str(tmp_path / "disk"))
        run_sweep(spec, memory, n_workers=1, artifacts=ArtifactOptions())
        run_sweep(
            spec,
            disk,
            n_workers=1,
            artifacts=ArtifactOptions(root=str(tmp_path / "tier")),
        )
        assert store_digests(memory.root) == store_digests(disk.root)
        # The tier actually persisted trace artifacts.
        assert len(SweepStore(str(tmp_path / "tier"))) > 0

    def test_unpinned_derived_seeds_still_byte_identical(self, tmp_path):
        # Without pinned seeds every scenario acquires its own traces
        # (no sharing opportunity), but enabling the cache must remain
        # a no-op on the results.
        spec = sharing_spec(pinned=False)
        plain = SweepStore(str(tmp_path / "plain"))
        shared = SweepStore(str(tmp_path / "shared"))
        run_sweep(spec, plain, n_workers=1)
        run_sweep(spec, shared, n_workers=1, artifacts=ArtifactOptions())
        assert store_digests(plain.root) == store_digests(shared.root)

    def test_sharing_skips_redundant_acquisition(self, tmp_path):
        clear_process_artifact_cache()
        try:
            spec = sharing_spec()  # 4 scenarios, one measurement tier
            store = SweepStore(str(tmp_path / "store"))
            run_sweep(spec, store, n_workers=1, artifacts=ArtifactOptions())
            cache = process_artifact_cache()
            assert cache.stats.fleet_misses == 1
            assert cache.stats.trace_misses == 8  # one fleet's worth
            assert cache.stats.trace_hits >= 3 * 8
        finally:
            clear_process_artifact_cache()
