"""Smoke tests for the example scripts.

Importing each example verifies its dependencies resolve; the
quickstart is additionally executed end-to-end (the other examples run
full paper-sized campaigns and are exercised by the benchmark suite
and by running them directly).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path):
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {path.stem for path in EXAMPLE_FILES}
    assert "quickstart" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load_example(path)
    assert callable(getattr(module, "main", None)), f"{path.stem} lacks main()"
    assert module.__doc__, f"{path.stem} lacks a module docstring"


def test_quickstart_runs(capsys):
    module = load_example(EXAMPLES_DIR / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "Both distinguishers agree" in out
