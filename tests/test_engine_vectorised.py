"""Golden equivalence tests for the cycle-axis vectorised tier.

The compiled engine's third tier steps only the *sequential residue*
(registers on feedback cycles, transition tables, ports and their
fan-in) cycle by cycle and reconstructs every feed-forward wire column
for all cycles at once with numpy kernels.  Like batching, the tier is
an execution strategy, never a semantic choice: every test here proves
byte-identity against the scalar generated loop (itself bit-identical
to the interpreted oracle) — for every paper design, ragged cycle
counts, memoised long runs, forced-core components and the composition
with the batch axis — or pins the tier-selection and invalidation
contracts.
"""

import numpy as np
import pytest

from repro.experiments.designs import (
    PAPER_IP_NAMES,
    PERIOD_CYCLES,
    build_ip,
    build_paper_ip,
)
from repro.fsm.counters import build_lfsr
from repro.hdl import (
    CompileError,
    DRegister,
    Incrementer,
    InputPort,
    LookupLogic,
    Netlist,
    Simulator,
    TransitionTable,
    XorArray,
    compile_netlist,
    run_batch,
)
from repro.hdl.component import Component
from repro.hdl.engine import MEMO_MIN_CYCLES


def paper_netlist(ip_name):
    return build_paper_ip(ip_name).netlist


def engine_trio(build):
    """(vectorised, compiled-scalar, interpreted) simulators of one design."""
    return tuple(
        Simulator(build(), engine=choice)
        for choice in ("vectorised", "compiled", "interpreted")
    )


def assert_traces_equal(a, b):
    assert a.channels == b.channels
    assert a.matrix.shape == b.matrix.shape
    np.testing.assert_array_equal(a.matrix, b.matrix)


def feedback_only_netlist():
    """A design that is *all* sequential residue: FSM loop, no slices."""
    netlist = Netlist("residue")
    state = netlist.wire("st", 3)
    nxt = netlist.wire("nx", 3)
    netlist.add(TransitionTable("tt", state, nxt, {i: (i + 1) % 5 for i in range(5)}))
    netlist.add(DRegister("reg", nxt, state))
    return netlist


def peeled_chain_netlist():
    """Registers *off* the feedback cycle become shift kernels.

    A counter loop drives a three-deep register pipeline; only the
    loop register is sequential residue, the pipeline is peeled onto
    the cycle axis (plan depth 3).
    """
    netlist = Netlist("peeled")
    count = netlist.wire("count", 4)
    nxt = netlist.wire("nxt", 4)
    s1 = netlist.wire("s1", 4)
    s2 = netlist.wire("s2", 4)
    s3 = netlist.wire("s3", 4)
    mixed = netlist.wire("mixed", 4)
    netlist.add(Incrementer("inc", count, nxt))
    netlist.add(DRegister("loop", nxt, count))
    netlist.add(DRegister("p1", count, s1))
    netlist.add(DRegister("p2", s1, s2))
    netlist.add(DRegister("p3", s2, s3))
    netlist.add(XorArray("mix", count, s3, mixed))
    return netlist


class TestPaperDesignGoldenEquivalence:
    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    @pytest.mark.parametrize("cycles", [1, 7, PERIOD_CYCLES, 3 * PERIOD_CYCLES + 5])
    def test_activity_matches_both_oracles(self, ip_name, cycles):
        vectorised, scalar, interpreted = engine_trio(
            lambda: paper_netlist(ip_name)
        )
        trace = vectorised.run(cycles)
        assert_traces_equal(trace, scalar.run(cycles))
        assert_traces_equal(trace, interpreted.run(cycles))

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_post_run_wire_state_matches_scalar(self, ip_name):
        vectorised, scalar, _ = engine_trio(lambda: paper_netlist(ip_name))
        cycles = PERIOD_CYCLES + 3
        vectorised.run(cycles)
        scalar.run(cycles)
        for name, wire in vectorised.netlist.wires.items():
            other = scalar.netlist.wires[name]
            assert (wire.value, wire.previous) == (other.value, other.previous)

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_register_sequences_match_interpreted(self, ip_name):
        vectorised, _, interpreted = engine_trio(lambda: paper_netlist(ip_name))
        registers = [
            c.name
            for c in vectorised.netlist.components
            if isinstance(c, DRegister)
        ]
        assert registers
        for name in registers:
            assert vectorised.state_sequence(
                name, 2 * PERIOD_CYCLES
            ) == interpreted.state_sequence(name, 2 * PERIOD_CYCLES)

    def test_nonpositive_cycles_rejected_identically(self):
        vectorised, scalar, _ = engine_trio(lambda: paper_netlist("IP_A"))
        for simulator in (vectorised, scalar):
            with pytest.raises(ValueError, match="cycles must be positive"):
                simulator.run(0)


class TestTierSelection:
    def test_paper_designs_select_the_vectorised_tier(self):
        for ip_name in PAPER_IP_NAMES:
            auto = Simulator(paper_netlist(ip_name))
            assert auto.engine_name == "compiled"
            assert auto._engine.tier == "vectorised"

    def test_compiled_choice_pins_the_scalar_oracle(self):
        scalar = Simulator(paper_netlist("IP_A"), engine="compiled")
        assert scalar._engine.tier == "scalar"
        assert scalar._engine.vectorise is False

    def test_pure_residue_design_falls_back_to_scalar(self):
        # Every wire sits on the FSM feedback path, so the kernel plan
        # reconstructs nothing and "auto" keeps the scalar loop.
        auto = Simulator(feedback_only_netlist())
        assert auto._engine.tier == "scalar"
        forced = Simulator(feedback_only_netlist(), engine="vectorised")
        assert_traces_equal(
            forced.run(64),
            Simulator(feedback_only_netlist(), engine="compiled").run(64),
        )

    def test_vectorised_choice_raises_on_uncompilable_netlists(self):
        class Opaque(Component):
            pass

        netlist = Netlist("custom")
        netlist.add(Opaque("mystery"))
        with pytest.raises(CompileError):
            Simulator(netlist, engine="vectorised")
        # "auto" quietly falls back to the interpreted loop instead.
        assert Simulator(netlist).engine_name == "interpreted"


class TestRaggedAndContinuation:
    @pytest.mark.parametrize("cycles", [2, 3, 5, 63, 255, 257])
    def test_odd_cycle_counts(self, cycles):
        vectorised, scalar, _ = engine_trio(lambda: paper_netlist("IP_B"))
        assert_traces_equal(vectorised.run(cycles), scalar.run(cycles))

    def test_continuation_without_reset(self):
        vectorised, scalar, _ = engine_trio(lambda: paper_netlist("IP_C"))
        for cycles, reset in ((100, True), (50, False), (7, False)):
            assert_traces_equal(
                vectorised.run(cycles, reset=reset),
                scalar.run(cycles, reset=reset),
            )

    def test_continuation_with_input_ports(self):
        def build():
            netlist = Netlist("ports")
            stim = netlist.wire("stim", 4)
            mixed = netlist.wire("mixed", 4)
            state = netlist.wire("state", 4)
            netlist.add(InputPort("pad", stim, stimulus=lambda c: (3 * c) & 0xF))
            netlist.add(XorArray("mix", stim, state, mixed))
            netlist.add(DRegister("reg", mixed, state))
            return netlist

        vectorised, scalar, interpreted = engine_trio(build)
        for cycles, reset in ((33, True), (21, False)):
            trace = vectorised.run(cycles, reset=reset)
            assert_traces_equal(trace, scalar.run(cycles, reset=reset))
            assert_traces_equal(trace, interpreted.run(cycles, reset=reset))


class TestMemoisedLongRuns:
    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_periodic_designs_tile_bit_identically(self, ip_name):
        vectorised, scalar, _ = engine_trio(lambda: paper_netlist(ip_name))
        cycles = 16 * PERIOD_CYCLES
        assert cycles >= MEMO_MIN_CYCLES
        assert_traces_equal(vectorised.run(cycles), scalar.run(cycles))

    def test_memo_threshold_boundaries(self):
        vectorised, scalar, _ = engine_trio(lambda: paper_netlist("IP_A"))
        for cycles in (MEMO_MIN_CYCLES - 1, MEMO_MIN_CYCLES, MEMO_MIN_CYCLES + 1):
            assert_traces_equal(vectorised.run(cycles), scalar.run(cycles))

    def test_long_nonperiodic_run_matches(self):
        # A maximal-length LFSR does not re-enter its state within the
        # run, so the memoised stepping never tiles; the kernel
        # reconstruction must cope with a full-length core trace.
        def build():
            netlist = Netlist("lfsr")
            build_lfsr(netlist, 16, [15, 14, 12, 3], seed=1)
            return netlist

        vectorised, scalar, _ = engine_trio(build)
        assert_traces_equal(vectorised.run(2048), scalar.run(2048))

    def test_peeled_register_chain_tiles_with_depth(self):
        # Peeled (acyclic) registers delay periodicity by the chain
        # depth; tiling must start at re-entry + depth, not re-entry.
        vectorised = Simulator(peeled_chain_netlist(), engine="vectorised")
        scalar = Simulator(peeled_chain_netlist(), engine="compiled")
        assert vectorised._engine.tier == "vectorised"
        for cycles in (40, MEMO_MIN_CYCLES + 37, 4 * MEMO_MIN_CYCLES):
            assert_traces_equal(vectorised.run(cycles), scalar.run(cycles))


class TestForcedCoreComponents:
    def test_opaque_lookup_logic_stays_on_the_scalar_path(self):
        def build():
            netlist = Netlist("opaque")
            count = netlist.wire("count", 4)
            nxt = netlist.wire("nxt", 4)
            twisted = netlist.wire("twisted", 4)
            netlist.add(Incrementer("inc", count, nxt))
            netlist.add(DRegister("reg", nxt, count))
            netlist.add(
                LookupLogic("lut", [count], twisted, lambda v: (v * 7 + 3) & 0xF)
            )
            return netlist

        vectorised, scalar, interpreted = engine_trio(build)
        trace = vectorised.run(200)
        assert_traces_equal(trace, scalar.run(200))
        assert_traces_equal(trace, interpreted.run(200))

    def test_lookup_error_raises_identically(self):
        def build():
            netlist = Netlist("doomed")
            count = netlist.wire("count", 4)
            nxt = netlist.wire("nxt", 4)
            out = netlist.wire("out", 4)

            def explode(v):
                if v == 5:
                    raise RuntimeError("boom at 5")
                return v ^ 3

            netlist.add(Incrementer("inc", count, nxt))
            netlist.add(DRegister("reg", nxt, count))
            netlist.add(LookupLogic("lut", [count], out, explode))
            return netlist

        for choice in ("vectorised", "compiled"):
            with pytest.raises(RuntimeError, match="boom at 5"):
                Simulator(build(), engine=choice).run(32)

    def test_partial_transition_table_raises_key_error(self):
        def build():
            netlist = Netlist("partial")
            state = netlist.wire("st", 3)
            nxt = netlist.wire("nx", 3)
            netlist.add(TransitionTable("tt", state, nxt, {0: 1, 1: 2}))
            netlist.add(DRegister("reg", nxt, state))
            return netlist

        for choice in ("vectorised", "compiled"):
            with pytest.raises(KeyError, match="no transition entry"):
                Simulator(build(), engine=choice).run(16)


class TestBatchComposition:
    def lanes(self, n=5):
        return [
            compile_netlist(build_ip(f"ip_{k}", "gray", k).netlist)
            for k in range(n)
        ]

    def test_vectorised_batch_matches_scalar_batch(self):
        cycles = [PERIOD_CYCLES, 7, 64, PERIOD_CYCLES + 9, 1]
        kernel = run_batch(self.lanes(), cycles, vectorise=True)
        scalar = run_batch(self.lanes(), cycles, vectorise=False)
        for a, b in zip(kernel, scalar):
            assert_traces_equal(a, b)

    def test_memoised_batch_composition(self):
        cycles = [16 * PERIOD_CYCLES, MEMO_MIN_CYCLES, 3, 8 * PERIOD_CYCLES, 77]
        kernel = run_batch(self.lanes(), cycles, vectorise=True)
        scalar = run_batch(self.lanes(), cycles, vectorise=False)
        for a, b in zip(kernel, scalar):
            assert_traces_equal(a, b)

    def test_batch_write_back_matches_scalar_run(self):
        batched = self.lanes(3)
        run_batch(batched, 100, vectorise=True)
        for k, engine in enumerate(batched):
            reference = Simulator(
                build_ip("ref", "gray", k).netlist, engine="compiled"
            )
            reference.run(100)
            for name, wire in engine.netlist.wires.items():
                other = reference.netlist.wires[name]
                assert (wire.value, wire.previous) == (other.value, other.previous)

    def test_auto_batch_matches_per_engine_runs(self):
        batched = self.lanes()
        traces = run_batch(batched, PERIOD_CYCLES)
        for k, trace in enumerate(traces):
            reference = Simulator(
                build_ip("ref", "gray", k).netlist, engine="compiled"
            ).run(PERIOD_CYCLES)
            assert_traces_equal(trace, reference)


class TestInvalidationToken:
    def test_mutation_after_compile_raises(self):
        netlist = paper_netlist("IP_A")
        engine = compile_netlist(netlist)
        engine.run(8)
        netlist.components[0].invalidate_compiled()
        assert netlist.compile_generation == 1
        with pytest.raises(CompileError, match="modified after compilation"):
            engine.run(8)

    def test_stale_engine_refuses_batch_execution(self):
        netlists = [build_ip(f"ip_{k}", "gray", k).netlist for k in range(2)]
        engines = [compile_netlist(n) for n in netlists]
        netlists[1].components[0].invalidate_compiled()
        with pytest.raises(CompileError, match="modified after compilation"):
            run_batch(engines, 16)

    def test_simulator_self_heals_by_recompiling(self):
        simulator = Simulator(paper_netlist("IP_B"))
        before = simulator.run(32)
        simulator.netlist.components[0].invalidate_compiled()
        after = simulator.run(32)  # refresh recompiles, no error
        assert_traces_equal(before, after)

    def test_fresh_compile_after_invalidation_works(self):
        netlist = feedback_only_netlist()
        engine = compile_netlist(netlist)
        netlist.component("tt").invalidate_compiled()
        with pytest.raises(CompileError):
            engine.run(4)
        recompiled = compile_netlist(netlist)
        assert_traces_equal(
            recompiled.run(16),
            Simulator(feedback_only_netlist(), engine="interpreted").run(16),
        )
