"""Tests for the key-collision analysis."""

import numpy as np
import pytest

from repro.analysis.collisions import (
    collision_summary,
    cross_key_correlations,
    expected_random_correlation_bound,
    keys_below_bound,
    switching_matrix,
)
from repro.fsm.encoding import gray_encode

BINARY_CODES = list(range(256))
GRAY_CODES = [gray_encode(i, 8) for i in range(256)]
SOME_KEYS = [0x00, 0x5A, 0xC3, 0x2F, 0xFF, 0x80, 0x01, 0x7E]


class TestSwitchingMatrix:
    def test_shape(self):
        matrix = switching_matrix(BINARY_CODES, SOME_KEYS)
        assert matrix.shape == (len(SOME_KEYS), 256)

    def test_default_keys_is_all_256(self):
        matrix = switching_matrix(BINARY_CODES[:32])
        assert matrix.shape == (256, 32)

    def test_values_are_hamming_distances(self):
        matrix = switching_matrix(BINARY_CODES, [0x00])
        assert np.all(matrix >= 0)
        assert np.all(matrix <= 8)


class TestCrossKeyCorrelations:
    def test_diagonal_is_one(self):
        corr = cross_key_correlations(BINARY_CODES, SOME_KEYS)
        np.testing.assert_allclose(np.diag(corr), 1.0, atol=1e-12)

    def test_symmetric(self):
        corr = cross_key_correlations(BINARY_CODES, SOME_KEYS)
        np.testing.assert_allclose(corr, corr.T)

    def test_off_diagonal_bounded(self):
        # Hamming-neighbour keys (e.g. 0x00/0x01 in SOME_KEYS) partially
        # collide at rho ~ 0.5 — their address sequences are single-swap
        # permutations of each other.  Everything stays clearly below a
        # matching pair's ~1.0.
        corr = cross_key_correlations(BINARY_CODES, SOME_KEYS)
        off = corr[~np.eye(len(SOME_KEYS), dtype=bool)]
        assert np.max(np.abs(off)) < 0.6

    def test_multi_bit_keys_are_nearly_uncorrelated(self):
        # The paper's actual keys differ in several bits; for such keys
        # the switching correlation is close to zero.
        paper_keys = [0x5A, 0xC3, 0x2F]
        corr = cross_key_correlations(BINARY_CODES, paper_keys)
        off = corr[~np.eye(len(paper_keys), dtype=bool)]
        assert np.max(np.abs(off)) < 0.25

    def test_gray_codes_also_bounded(self):
        corr = cross_key_correlations(GRAY_CODES, SOME_KEYS)
        off = corr[~np.eye(len(SOME_KEYS), dtype=bool)]
        assert np.max(np.abs(off)) < 0.6

    def test_worst_full_keyspace_pair_is_a_hamming_neighbour(self):
        # Structural finding of this reproduction: the worst-colliding
        # key pair over the whole keyspace differs in exactly one bit.
        summary = collision_summary(BINARY_CODES)
        a, b = summary.worst_pair
        assert bin(a ^ b).count("1") == 1


class TestCollisionSummary:
    def test_summary_fields(self):
        summary = collision_summary(BINARY_CODES, SOME_KEYS)
        assert summary.n_keys == len(SOME_KEYS)
        assert summary.n_pairs == len(SOME_KEYS) * (len(SOME_KEYS) - 1) // 2
        assert summary.minimum <= summary.mean <= summary.maximum

    def test_mean_near_zero(self):
        summary = collision_summary(BINARY_CODES, SOME_KEYS)
        assert abs(summary.mean) < 0.1

    def test_worst_pair_is_a_real_pair(self):
        summary = collision_summary(BINARY_CODES, SOME_KEYS)
        a, b = summary.worst_pair
        assert a in SOME_KEYS
        assert b in SOME_KEYS
        assert a != b

    def test_full_keyspace_summary(self):
        # The paper's collision claim, exhaustively over all 256 keys.
        summary = collision_summary(BINARY_CODES)
        assert summary.n_keys == 256
        assert summary.n_pairs == 256 * 255 // 2
        assert abs(summary.mean) < 0.05
        assert summary.maximum < 0.6


class TestBounds:
    def test_bound_decreases_with_length(self):
        assert expected_random_correlation_bound(1024) < (
            expected_random_correlation_bound(64)
        )

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            expected_random_correlation_bound(1)

    def test_no_offending_pairs_on_sample(self):
        offenders = keys_below_bound(BINARY_CODES, bound=0.5, keys=SOME_KEYS)
        assert offenders == []

    def test_tight_bound_flags_pairs(self):
        offenders = keys_below_bound(BINARY_CODES, bound=0.0001, keys=SOME_KEYS)
        assert len(offenders) > 0
