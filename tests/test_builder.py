"""Tests for FSM synthesis into netlists."""

import pytest

from repro.fsm.builder import build_fsm, make_encoder, state_width
from repro.fsm.counters import binary_counter_machine
from repro.fsm.machine import MooreMachine
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator


def traffic_light():
    transitions = {"red": "green", "green": "yellow", "yellow": "red"}
    return MooreMachine(["red", "green", "yellow"], transitions, "red")


class TestStateWidth:
    def test_binary_width(self):
        assert state_width(3, "binary") == 2
        assert state_width(256, "binary") == 8
        assert state_width(1, "binary") == 1

    def test_gray_width_matches_binary(self):
        assert state_width(9, "gray") == 4

    def test_one_hot_width_is_state_count(self):
        assert state_width(5, "one-hot") == 5

    def test_rejects_unknown_encoding(self):
        with pytest.raises(ValueError):
            state_width(4, "thermometer")

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            state_width(0, "binary")


class TestMakeEncoder:
    def test_binary_encoder_is_index(self):
        machine = traffic_light()
        encoder = make_encoder(machine, "binary")
        assert encoder == {"red": 0, "green": 1, "yellow": 2}

    def test_one_hot_encoder(self):
        machine = traffic_light()
        encoder = make_encoder(machine, "one-hot")
        assert encoder == {"red": 1, "green": 2, "yellow": 4}

    def test_gray_encoder_adjacent_indices_one_bit(self):
        machine = binary_counter_machine(4)
        encoder = make_encoder(machine, "gray")
        codes = [encoder[i] for i in range(16)]
        for a, b in zip(codes, codes[1:]):
            assert bin(a ^ b).count("1") == 1


class TestBuildFSM:
    def simulate(self, machine, encoding, cycles=9):
        netlist = Netlist("fsm")
        build_fsm(netlist, machine, encoding=encoding)
        return Simulator(netlist).state_sequence("fsm_reg", cycles)

    def test_binary_encoding_follows_machine(self):
        sequence = self.simulate(traffic_light(), "binary")
        # red=0 -> green=1 -> yellow=2 -> red=0 ...
        assert sequence == [1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_one_hot_encoding_follows_machine(self):
        sequence = self.simulate(traffic_light(), "one-hot")
        assert sequence == [2, 4, 1, 2, 4, 1, 2, 4, 1]

    def test_custom_encoder(self):
        machine = traffic_light()
        netlist = Netlist("fsm")
        build_fsm(
            netlist,
            machine,
            encoder={"red": 5, "green": 6, "yellow": 7},
        )
        sequence = Simulator(netlist).state_sequence("fsm_reg", 4)
        assert sequence == [6, 7, 5, 6]

    def test_rejects_non_injective_encoder(self):
        machine = traffic_light()
        with pytest.raises(ValueError, match="injective"):
            build_fsm(
                Netlist("fsm"),
                machine,
                encoder={"red": 0, "green": 0, "yellow": 1},
            )

    def test_rejects_wrong_domain_encoder(self):
        machine = traffic_light()
        with pytest.raises(ValueError, match="cover"):
            build_fsm(Netlist("fsm"), machine, encoder={"red": 0})

    def test_initial_state_is_reset_value(self):
        machine = MooreMachine(["a", "b"], {"a": "b", "b": "a"}, "b")
        netlist = Netlist("fsm")
        register = build_fsm(netlist, machine, encoding="binary")
        assert register.reset_value == 1

    def test_synthesised_counter_matches_native(self):
        machine = binary_counter_machine(6)
        sequence = self.simulate(machine, "binary", cycles=70)
        assert sequence == [(i + 1) % 64 for i in range(70)]

    def test_watermark_attaches_to_synthesised_fsm(self):
        from repro.fsm.watermark import attach_leakage_component

        netlist = Netlist("fsm")
        build_fsm(netlist, traffic_light(), encoding="binary")
        attach_leakage_component(netlist, netlist.wires["fsm_state"], 0x42)
        netlist.validate()
        trace = Simulator(netlist).run(12)
        assert trace.n_cycles == 12
