"""Tests for the structural Verilog import frontend.

The pinned invariant: ``parse_verilog(export_verilog(n))`` simulates
bit-identically — same activity matrix, same channel order, same state
sequences — on every engine tier, for every paper design.  The vendored
corpus under ``benchmarks/netlists/`` must agree across tiers too.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.attacks.removal import strip_watermark
from repro.experiments.designs import (
    IMPORTED_KEYS,
    PAPER_IP_NAMES,
    build_device_fleet,
    build_imported_ip,
    build_paper_ip,
    resolve_imported_design,
)
from repro.hdl.combinational import Constant, LookupLogic, XorArray
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.simulator import Simulator
from repro.hdl.verilog import export_verilog
from repro.hdl.verilog_parse import (
    VerilogParseError,
    parse_verilog,
    parse_verilog_file,
)

ENGINES = ("interpreted", "compiled", "vectorised")
CORPUS_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "netlists"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.v"))


def round_trip(netlist):
    return parse_verilog(export_verilog(netlist))


def inventory(netlist):
    return [(c.name, type(c).__name__) for c in netlist.components]


class TestRoundTripPaperDesigns:
    """Golden tests: exporter output parses back to the same machine."""

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_component_inventory_preserved(self, ip_name):
        ip = build_paper_ip(ip_name)
        recovered = round_trip(ip.netlist)
        assert inventory(recovered) == inventory(ip.netlist)

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_activity_bit_identical(self, ip_name, engine):
        original = build_paper_ip(ip_name).netlist
        recovered = round_trip(original)
        t_orig = Simulator(original, engine=engine).run(48)
        t_back = Simulator(recovered, engine=engine).run(48)
        assert t_back.channels == t_orig.channels
        assert np.array_equal(t_back.matrix, t_orig.matrix)

    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_state_sequence_preserved(self, ip_name):
        original = build_paper_ip(ip_name).netlist
        recovered = round_trip(original)
        seq_orig = Simulator(original).state_sequence("ctr_reg", 32)
        seq_back = Simulator(recovered).state_sequence("ctr_reg", 32)
        assert seq_back == seq_orig

    def test_clocktree_pragma_round_trips(self):
        original = build_paper_ip("IP_A").netlist
        recovered = round_trip(original)
        trees = {
            c.name: c.load
            for c in recovered.components
            if isinstance(c, ClockTree)
        }
        expected = {
            c.name: c.load
            for c in original.components
            if isinstance(c, ClockTree)
        }
        assert trees == expected

    def test_input_port_pattern_recovered(self):
        netlist = Netlist("stim")
        a = netlist.wire("a", 4)
        b = netlist.wire("b", 4)
        y = netlist.wire("y", 4)
        netlist.add(InputPort("a_port", a, [1, 2, 3]))
        netlist.add(Constant("c", b, 9))
        netlist.add(XorArray("x", a, b, y))
        netlist.add(OutputPort("res", y))
        recovered = round_trip(netlist)
        ports = [c for c in recovered.components if isinstance(c, InputPort)]
        assert [p.name for p in ports] == ["a_port"]
        # Stimulus values live outside the netlist; imports default to 0.
        trace = Simulator(recovered).run(4)
        assert trace.matrix.shape[0] == 4


class TestIdentifierScope:
    """Names that sanitise to the same identifier must stay distinct."""

    def build_colliding(self):
        netlist = Netlist("collide")
        a = netlist.wire("a.b", 4)
        b = netlist.wire("a_b", 4)
        y = netlist.wire("res", 4)
        netlist.add(Constant("c1", a, 3))
        netlist.add(Constant("c2", b, 5))
        netlist.add(XorArray("x1", a, b, y))
        netlist.add(OutputPort("out", y))
        return netlist

    def test_collision_gets_unique_suffix(self):
        text = export_verilog(self.build_colliding())
        assert "wire [3:0] a_b;" in text
        assert "wire [3:0] a_b_2;" in text

    def test_colliding_constants_stay_attached(self):
        # Regression: both wires used to alias to ``a_b``, silently
        # merging two drivers.  The values must survive the round trip
        # on the right components.
        recovered = round_trip(self.build_colliding())
        values = {
            c.name: c.value
            for c in recovered.components
            if isinstance(c, Constant)
        }
        assert values == {"c1": 3, "c2": 5}

    def test_collision_export_is_deterministic(self):
        netlist = self.build_colliding()
        assert export_verilog(netlist) == export_verilog(netlist)


class TestParserErrors:
    """Diagnostics carry line/col and point at the offending token."""

    def parse_error(self, source):
        with pytest.raises(VerilogParseError) as excinfo:
            parse_verilog(source)
        return excinfo.value

    def test_unknown_construct(self):
        err = self.parse_error(
            "module m (input wire clk);\ninitial begin end\nendmodule\n"
        )
        assert err.line == 2 and err.col == 1
        assert "unsupported construct 'initial'" in str(err)

    def test_malformed_declaration(self):
        err = self.parse_error(
            "module m (input wire clk);\n  wire [7:0 a;\nendmodule\n"
        )
        assert err.line == 2
        assert "expected ']'" in str(err)

    def test_literal_too_wide(self):
        err = self.parse_error(
            "module m (input wire clk);\n"
            "  wire [3:0] a;\n"
            "  assign a = 4'd20;\n"
            "endmodule\n"
        )
        assert err.line == 3
        assert "does not fit in 4 bits" in str(err)

    def test_case_width_mismatch(self):
        err = self.parse_error(
            "module m (input wire clk, input wire rst);\n"
            "  wire [3:0] s;\n"
            "  reg [7:0] n;\n"
            "  always @(*) begin\n"
            "    case (s)\n"
            "      4'd0: n = 8'd1;\n"
            "      default: n = 8'd0;\n"
            "    endcase\n"
            "  end\n"
            "endmodule\n"
        )
        assert "4 -> 8 bits" in str(err)

    def test_duplicate_case_label(self):
        err = self.parse_error(
            "module m (input wire clk);\n"
            "  wire [1:0] s;\n"
            "  reg [1:0] n;\n"
            "  always @(*) begin\n"
            "    case (s)\n"
            "      2'd0: n = 2'd1;\n"
            "      2'd0: n = 2'd2;\n"
            "      default: n = 2'd0;\n"
            "    endcase\n"
            "  end\n"
            "endmodule\n"
        )
        assert "duplicate case label" in str(err)

    def test_gate_arity_checked(self):
        err = self.parse_error(
            "module m (input wire a, output wire y);\n"
            "  not g1 (y, a, a);\n"
            "endmodule\n"
        )
        assert "'not' takes exactly one output and one input" in str(err)

    def test_undeclared_wire(self):
        err = self.parse_error(
            "module m (input wire clk);\n  assign q = w + 4'd1;\nendmodule\n"
        )
        assert "undeclared wire 'q'" in str(err)

    def test_file_errors_name_the_file(self, tmp_path):
        bad = tmp_path / "bad.v"
        bad.write_text("module m (input wire clk);\ninitial x;\nendmodule\n")
        with pytest.raises(VerilogParseError) as excinfo:
            parse_verilog_file(str(bad))
        assert "bad.v" in str(excinfo.value)
        assert "line 2" in str(excinfo.value)


class TestLexerDetails:
    def test_underscored_and_based_literals(self):
        netlist = parse_verilog(
            "module m (input wire clk, output wire [7:0] y_out);\n"
            "  wire [7:0] y;\n"
            "  assign y = 8'b0101_0011;\n"
            "  assign y_out = y;\n"
            "endmodule\n"
        )
        const = netlist.component("y_const")
        assert isinstance(const, Constant)
        assert const.value == 0b01010011

    def test_gate_primitives_build_lookup_logic(self):
        netlist = parse_verilog(
            "module m (input wire a, input wire b, output wire y);\n"
            "  wire w;\n"
            "  nand g1 (w, a, b);\n"
            "  not g2 (y, w);\n"
            "endmodule\n"
        )
        gates = [c for c in netlist.components if isinstance(c, LookupLogic)]
        assert {g.name for g in gates} >= {"g1", "g2"}


class TestCorpus:
    """Every vendored benchmark parses and agrees across engine tiers."""

    def test_corpus_is_vendored(self):
        names = {path.name for path in CORPUS_FILES}
        assert "c17.v" in names
        assert len(CORPUS_FILES) >= 3

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.name for p in CORPUS_FILES]
    )
    def test_parses_and_validates(self, path):
        netlist = parse_verilog_file(str(path))
        netlist.validate()
        assert netlist.components

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.name for p in CORPUS_FILES]
    )
    def test_tier_agreement(self, path):
        traces = {}
        for engine in ENGINES:
            netlist = parse_verilog_file(str(path))
            traces[engine] = Simulator(netlist, engine=engine).run(32)
        base = traces["interpreted"]
        for engine in ("compiled", "vectorised"):
            assert np.array_equal(traces[engine].matrix, base.matrix), engine


class TestImportedWorkloads:
    C17 = "benchmarks/netlists/c17.v"

    def test_resolve_imported_design(self):
        path = resolve_imported_design(f"imported:{self.C17}")
        assert path.name == "c17.v" and path.exists()
        with pytest.raises(ValueError):
            resolve_imported_design("paperish")
        with pytest.raises(FileNotFoundError):
            resolve_imported_design("imported:no/such/file.v")

    def test_imported_ip_carries_watermark(self):
        ip = build_imported_ip(self.C17, "IP_A", IMPORTED_KEYS["IP_A"])
        names = {c.name for c in ip.netlist.components}
        assert {"wm_key", "wm_xor", "wm_sbox", "wm_hreg"} <= names
        assert ip.fsm_kind == "imported"

    def test_imported_ip_strippable(self):
        ip = build_imported_ip(self.C17, "IP_A", IMPORTED_KEYS["IP_A"])
        report = strip_watermark(ip)
        assert report.removed_components
        assert not any(
            c.name.startswith("wm_") for c in ip.netlist.components
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_imported_ip_tier_agreement(self, engine):
        ip = build_imported_ip(self.C17, "IP_A", IMPORTED_KEYS["IP_A"])
        trace = Simulator(ip.netlist, engine=engine).run(48)
        ref_ip = build_imported_ip(self.C17, "IP_A", IMPORTED_KEYS["IP_A"])
        ref = Simulator(ref_ip.netlist, engine="interpreted").run(48)
        assert np.array_equal(trace.matrix, ref.matrix)

    def test_fleet_uses_distinct_keys(self):
        refds, duts = build_device_fleet(design=f"imported:{self.C17}")
        assert set(refds) == set(PAPER_IP_NAMES)
        assert len(duts) == 4
        keys = {
            name: refds[name].ip.netlist.component("wm_key").value
            for name in refds
        }
        assert keys == IMPORTED_KEYS
        assert len(set(keys.values())) == 4

    def test_paper_fleet_unchanged(self):
        refds, _ = build_device_fleet()
        kinds = {name: refds[name].ip.fsm_kind for name in refds}
        assert kinds["IP_A"] == "binary"
        assert kinds["IP_B"] == "gray"


class TestImportedCampaignAndSweep:
    DESIGN = "imported:benchmarks/netlists/c17.v"

    def test_campaign_detects_imported_watermarks(self):
        from repro.core.process import ProcessParameters
        from repro.experiments.runner import CampaignConfig, run_campaign

        config = CampaignConfig(
            parameters=ProcessParameters(k=8, m=2, n1=12, n2=16),
            design=self.DESIGN,
        )
        outcome = run_campaign(config)
        assert outcome.accuracy("higher-mean") == 1.0

    def test_sweep_spec_accepts_design_axis(self):
        from repro.sweeps.spec import (
            expand_scenarios,
            scenario_config,
            spec_from_dict,
        )

        spec = spec_from_dict(
            {
                "name": "design-axis",
                "base": {"parameters.k": 8, "parameters.m": 2,
                         "parameters.n1": 12, "parameters.n2": 16},
                "grid": [
                    {"field": "design", "values": ["paper", self.DESIGN]},
                    {"field": "attack", "values": ["none", "strip"]},
                ],
            }
        )
        scenarios = expand_scenarios(spec)
        assert len(scenarios) == 4
        designs = {scenario_config(s).design for s in scenarios}
        assert designs == {"paper", self.DESIGN}

    def test_design_field_keeps_paper_digests_stable(self):
        from repro.experiments.artifacts import fleet_key
        from repro.experiments.runner import CampaignConfig

        paper = fleet_key(CampaignConfig())
        imported = fleet_key(CampaignConfig(design=self.DESIGN))
        assert paper != imported
        # The paper-design key must not mention the new field at all,
        # so digests minted before it existed stay byte-identical.
        assert fleet_key(CampaignConfig(design="paper")) == paper


class TestNetlistRemove:
    def test_remove_component(self):
        netlist = Netlist("rm")
        a = netlist.wire("a", 4)
        netlist.add(Constant("c", a, 1))
        removed = netlist.remove("c")
        assert removed.name == "c"
        assert not netlist.components
        # The name is free for reuse.
        netlist.add(Constant("c", a, 2))
        assert netlist.component("c").value == 2

    def test_remove_unknown_raises(self):
        netlist = Netlist("rm")
        with pytest.raises(KeyError):
            netlist.remove("missing")


class TestRegisterRoundTrip:
    def test_dregister_reset_value(self):
        netlist = Netlist("regs")
        d = netlist.wire("d", 4)
        q = netlist.wire("q", 4)
        netlist.add(Constant("c", d, 7))
        netlist.add(DRegister("r", d, q, reset_value=5))
        netlist.add(OutputPort("out", q))
        recovered = round_trip(netlist)
        reg = recovered.component("r")
        assert isinstance(reg, DRegister)
        assert reg.reset_value == 5
