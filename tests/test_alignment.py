"""Tests for cross-correlation trace realignment."""

import numpy as np
import pytest

from repro.acquisition.alignment import align_traces, alignment_quality, estimate_shift
from repro.acquisition.bench import MeasurementBench
from repro.acquisition.device import Device
from repro.acquisition.faults import desynchronize
from repro.acquisition.traces import TraceSet
from repro.core.process import CorrelationProcess, ProcessParameters
from repro.experiments.designs import build_paper_ip
from repro.power.models import PowerModel


def periodic_traces(n=30, l=256, sigma=0.3, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(l)
    signal = np.sin(2 * np.pi * t / 16) + 0.5 * np.sin(2 * np.pi * t / 5)
    return TraceSet("dev", signal + rng.normal(0, sigma, size=(n, l))), signal


class TestEstimateShift:
    def test_zero_shift_detected(self):
        traces, signal = periodic_traces(n=1, sigma=0.0)
        assert estimate_shift(traces[0], signal, max_shift=8) == 0

    def test_positive_shift_detected(self):
        _traces, signal = periodic_traces(n=1, sigma=0.0)
        shifted = np.roll(signal, 3)
        assert estimate_shift(shifted, signal, max_shift=8) == 3

    def test_negative_shift_detected(self):
        _traces, signal = periodic_traces(n=1, sigma=0.0)
        shifted = np.roll(signal, -3)
        assert estimate_shift(shifted, signal, max_shift=8) == -3

    def test_shift_beyond_window_not_reported(self):
        _traces, signal = periodic_traces(n=1, sigma=0.0)
        shifted = np.roll(signal, 12)
        estimate = estimate_shift(shifted, signal, max_shift=2)
        assert abs(estimate) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_shift(np.zeros(4), np.zeros(5), 1)
        with pytest.raises(ValueError):
            estimate_shift(np.zeros(4), np.zeros(4), -1)


class TestAlignTraces:
    def test_realigns_jittered_traces(self):
        traces, signal = periodic_traces(sigma=0.2)
        jittered = desynchronize(traces, max_shift=4, rng=1)
        before = alignment_quality(jittered)
        aligned, shifts = align_traces(jittered, max_shift=6)
        after = alignment_quality(aligned)
        assert after > before
        assert shifts.shape == (traces.n_traces,)

    def test_explicit_reference(self):
        traces, signal = periodic_traces(sigma=0.2)
        jittered = desynchronize(traces, max_shift=4, rng=2)
        aligned, _shifts = align_traces(jittered, reference=signal, max_shift=6)
        assert alignment_quality(aligned) > alignment_quality(jittered)

    def test_already_aligned_is_stable(self):
        traces, _signal = periodic_traces(sigma=0.2)
        aligned, shifts = align_traces(traces, max_shift=4)
        # The clean set needs (almost) no correction.
        assert np.mean(shifts == 0) > 0.8

    def test_validation(self):
        traces, _signal = periodic_traces()
        with pytest.raises(ValueError):
            align_traces(traces, iterations=0)

    def test_quality_validation(self):
        with pytest.raises(ValueError):
            alignment_quality(TraceSet("d", np.ones((3, 8))))


class TestAlignmentRescuesVerification:
    PARAMS = ProcessParameters(k=20, m=10, n1=120, n2=1200)

    def test_jitter_then_alignment_restores_correlation(self):
        refd = Device("R", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        dut = Device("D", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        bench = MeasurementBench(seed=4)
        t_ref = bench.measure(refd, 120)
        t_dut = bench.measure(dut, 1200)
        process = CorrelationProcess(self.PARAMS, strict=False)

        baseline = process.run(t_ref, t_dut, np.random.default_rng(0)).mean
        jittered = desynchronize(t_dut, max_shift=8, rng=5)
        broken = process.run(t_ref, jittered, np.random.default_rng(0)).mean
        repaired, _shifts = align_traces(jittered, max_shift=12)
        restored = process.run(t_ref, repaired, np.random.default_rng(0)).mean

        assert broken < baseline - 0.2
        assert restored > broken + 0.2
        assert restored > 0.8 * baseline
