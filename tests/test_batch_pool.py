"""Tests for the cross-campaign batch pool and campaign memoisation.

The pool (:mod:`repro.hdl.batch_pool`) defers simulation requests from
many campaigns and flushes them in shared shape-grouped batches; the
artifact cache's fourth tier memoises whole campaign outcomes on the
analysis key.  Both are pure execution strategies: every test here
either proves byte-identity against the unpooled / unmemoised path or
pins down the pool's contract — budget-triggered flushes mid-scenario,
ragged cycle counts in one pool, keyed dedupe across campaigns,
exception propagation out of a pooled flush, and the rule that a
memoised campaign never consults the pool.
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.acquisition.device import (
    Device,
    clear_fleet_activity_cache,
    prime_fleet_activity,
)
from repro.experiments.artifacts import (
    ArtifactCache,
    ArtifactOptions,
    clear_process_artifact_cache,
)
from repro.experiments.designs import build_paper_ip
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.core.process import ProcessParameters
from repro.hdl import DRegister, Netlist, Simulator, TransitionTable
from repro.hdl.batch_pool import BatchPool, BatchPoolOptions
from repro.power.models import PowerModel
from repro.sweeps import GridAxis, SweepSpec, SweepStore, run_sweep
from repro.sweeps.scenario import outcome_arrays, outcome_metrics

QUICK = ProcessParameters(k=4, m=4, n1=32, n2=64)


@pytest.fixture(autouse=True)
def _fresh_process_caches():
    """Force every test to exercise the pool, not a warm shared cache."""
    clear_fleet_activity_cache()
    clear_process_artifact_cache()
    yield
    clear_fleet_activity_cache()
    clear_process_artifact_cache()


def quick_config(**overrides) -> CampaignConfig:
    return CampaignConfig(parameters=QUICK, **overrides)


def paper_simulator(ip_name: str) -> Simulator:
    return Simulator(build_paper_ip(ip_name).netlist)


def paper_device(ip_name: str, cycles: int = 96, name=None) -> Device:
    return Device(
        name if name is not None else ip_name,
        build_paper_ip(ip_name),
        PowerModel(),
        default_cycles=cycles,
    )


def broken_netlist(name: str = "broken") -> Netlist:
    """A design whose FSM walks into a state with no transition entry."""
    netlist = Netlist(name)
    state = netlist.wire("st", 3)
    nxt = netlist.wire("nx", 3)
    netlist.add(TransitionTable("tt", state, nxt, {0: 1, 1: 2}))
    netlist.add(DRegister("reg", nxt, state))
    return netlist


def store_digests(root):
    # Top-level result files only; .attempts/ etc. are outside the
    # byte-identity invariant.
    digests = {}
    for entry in sorted(os.listdir(root)):
        path = os.path.join(root, entry)
        if entry.startswith(".") or not os.path.isfile(path):
            continue
        with open(path, "rb") as handle:
            digests[entry] = hashlib.sha256(handle.read()).hexdigest()
    return digests


def pooled_sweep_spec(name="pooled", attacks=("none", "strip")):
    return SweepSpec(
        name=name,
        grid=(
            GridAxis("noise.sigma", (0.5, 1.0)),
            GridAxis("attack", tuple(attacks)),
        ),
        base={
            "parameters.k": 4,
            "parameters.m": 4,
            "parameters.n1": 32,
            "parameters.n2": 64,
            "fleet_seed": 1,
            "measurement_seed": 2,
        },
        seed=9,
    )


class TestBatchPool:
    def test_pooled_traces_byte_identical_to_scalar(self):
        pool = BatchPool()
        futures = {
            ip: pool.submit(paper_simulator(ip), 80)
            for ip in ("IP_A", "IP_B", "IP_C", "IP_D")
        }
        executed = pool.flush()
        assert executed == 4
        for ip, future in futures.items():
            reference = paper_simulator(ip).run(80)
            trace = future.result()
            assert trace.channels == reference.channels
            np.testing.assert_array_equal(trace.matrix, reference.matrix)

    def test_flush_on_lane_budget_mid_submission(self):
        pool = BatchPool(BatchPoolOptions(max_lanes=2))
        first = pool.submit(paper_simulator("IP_B"), 64)
        assert not first.done()
        second = pool.submit(paper_simulator("IP_C"), 64)
        # The second submission crossed the lane budget: both resolved.
        assert first.done() and second.done()
        assert pool.stats.auto_flushes == 1
        third = pool.submit(paper_simulator("IP_D"), 64)
        assert not third.done() and len(pool) == 1
        pool.flush()
        reference = paper_simulator("IP_D").run(64)
        np.testing.assert_array_equal(third.result().matrix, reference.matrix)

    def test_flush_on_byte_budget(self):
        pool = BatchPool(BatchPoolOptions(max_bytes=1))
        future = pool.submit(paper_simulator("IP_B"), 64)
        assert future.done()
        assert pool.stats.auto_flushes == 1
        assert pool.pending_bytes == 0

    def test_ragged_cycle_counts_share_one_pool(self):
        pool = BatchPool()
        cycles = {"IP_B": 64, "IP_C": 96, "IP_D": 48}
        futures = {
            ip: pool.submit(paper_simulator(ip), count)
            for ip, count in cycles.items()
        }
        assert pool.flush() == 3
        for ip, future in futures.items():
            reference = paper_simulator(ip).run(cycles[ip])
            np.testing.assert_array_equal(future.result().matrix, reference.matrix)

    def test_keyed_submissions_dedupe_within_flush_window(self):
        pool = BatchPool()
        first = pool.submit(paper_simulator("IP_B"), 64, key=("s", 64))
        again = pool.submit(paper_simulator("IP_B"), 64, key=("s", 64))
        assert again is first
        assert pool.stats.deduped == 1 and pool.stats.submitted == 1
        assert pool.flush() == 1
        # After the flush the dedupe window is gone: a new submission
        # with the same key queues a fresh lane.
        fresh = pool.submit(paper_simulator("IP_B"), 64, key=("s", 64))
        assert fresh is not first and not fresh.done()
        pool.flush()

    def test_result_forces_flush(self):
        pool = BatchPool()
        future = pool.submit(paper_simulator("IP_A"), 64)
        trace = future.result()
        assert pool.stats.flushes == 1
        reference = paper_simulator("IP_A").run(64)
        np.testing.assert_array_equal(trace.matrix, reference.matrix)

    def test_exception_propagates_out_of_pooled_flush(self):
        pool = BatchPool()
        doomed = [
            pool.submit(Simulator(broken_netlist(f"broken{i}")), 16)
            for i in range(2)
        ]
        healthy = pool.submit(paper_simulator("IP_B"), 16)
        with pytest.raises(KeyError, match="no transition entry"):
            pool.flush()
        # Every future of the failed flush records the same error …
        for future in doomed:
            assert future.done()
            with pytest.raises(KeyError, match="no transition entry"):
                future.result()
        with pytest.raises(KeyError):
            healthy.result()
        # … and the pool stays usable for subsequent work.
        retry = pool.submit(paper_simulator("IP_B"), 16)
        reference = paper_simulator("IP_B").run(16)
        np.testing.assert_array_equal(retry.result().matrix, reference.matrix)

    def test_rejects_nonpositive_cycles_and_budgets(self):
        with pytest.raises(ValueError):
            BatchPoolOptions(max_lanes=0)
        with pytest.raises(ValueError):
            BatchPoolOptions(max_bytes=0)
        with pytest.raises(ValueError):
            BatchPool().submit(paper_simulator("IP_A"), 0)


class TestPooledPriming:
    def test_prime_defers_until_flush_then_installs(self):
        pool = BatchPool()
        devices = [paper_device(ip) for ip in ("IP_A", "IP_B", "IP_C")]
        submitted = prime_fleet_activity(devices, pool=pool)
        assert submitted == 3
        assert all(not device._activity_cache for device in devices)
        pool.flush()
        for device in devices:
            assert 96 in device._activity_cache
            reference = paper_device(device.name, name="ref").activity()
            np.testing.assert_array_equal(
                device.activity().matrix, reference.matrix
            )

    def test_two_campaigns_share_lanes_before_the_flush(self):
        pool = BatchPool()
        fleet_one = [paper_device(ip) for ip in ("IP_B", "IP_C")]
        fleet_two = [paper_device(ip, name=f"{ip}'") for ip in ("IP_B", "IP_C")]
        assert prime_fleet_activity(fleet_one, pool=pool) == 2
        # The second fleet's structures are already pending: its
        # submissions dedupe onto the first campaign's lanes.
        assert prime_fleet_activity(fleet_two, pool=pool) == 2
        assert pool.stats.submitted == 2 and pool.stats.deduped == 2
        assert pool.flush() == 2
        for device in (*fleet_one, *fleet_two):
            assert 96 in device._activity_cache
        np.testing.assert_array_equal(
            fleet_one[0].activity().matrix, fleet_two[0].activity().matrix
        )


class TestOverlappedFlushing:
    """Flushing overlaps with acquisition instead of draining up front.

    The executor's prefetch flushes only the first submitting
    scenario's lanes; the rest of the wave stays pending and drains
    when a campaign whose priming found unresolved lanes flushes.  A
    campaign (or bench) whose fleet is already resolved must never
    force other callers' pending lanes to execute.
    """

    def test_prefetch_flushes_only_the_first_wave(self, tmp_path):
        from repro.sweeps.executor import _prefetch_into_pool
        from repro.sweeps.spec import expand_scenarios

        scenarios = expand_scenarios(pooled_sweep_spec())
        pool = BatchPool()
        fleets = _prefetch_into_pool(scenarios, None, pool)
        assert set(fleets) == {s.scenario_id for s in scenarios}
        # Exactly one eager flush: the first scenario's wave.  Lanes
        # from structurally new later scenarios are still pending.
        assert pool.stats.flushes == 1
        assert len(pool) > 0
        # The first scenario's campaign can measure immediately: its
        # fleet's activity is fully installed.
        refds, duts = fleets[scenarios[0].scenario_id]
        for device in (*refds.values(), *duts.values()):
            assert device._activity_cache
        # The first campaign that needs the pending wave drains it.
        for scenario in scenarios[1:]:
            refds, duts = fleets[scenario.scenario_id]
            devices = (*refds.values(), *duts.values())
            if prime_fleet_activity(devices, pool=pool):
                pool.flush()
        assert len(pool) == 0

    def test_resolved_campaign_does_not_drain_other_lanes(self):
        from repro.experiments.runner import build_campaign_fleet

        cfg = quick_config()
        refds, duts = build_campaign_fleet(cfg, "none")
        prime_fleet_activity((*refds.values(), *duts.values()))
        pool = BatchPool()
        foreign = pool.submit(paper_simulator("IP_A"), 64)
        # The campaign's structures are already in the process-wide
        # activity cache, so its priming submits nothing and the
        # conditional flush leaves the foreign lane pending.
        run_campaign(cfg, batch_pool=pool)
        assert not foreign.done()
        assert len(pool) == 1 and pool.stats.flushes == 0
        pool.flush()
        assert foreign.done()

    def test_overlapped_campaign_outcome_is_byte_identical(self):
        cfg = quick_config()
        plain = run_campaign(cfg)
        clear_fleet_activity_cache()
        pool = BatchPool()
        pool.submit(paper_simulator("IP_B"), 48)  # unrelated pending lane
        pooled = run_campaign(cfg, batch_pool=pool)
        plain_arrays = outcome_arrays(plain)
        for key, values in outcome_arrays(pooled).items():
            np.testing.assert_array_equal(values, plain_arrays[key])


class TestCampaignMemoisation:
    def test_memoised_campaign_does_not_consult_the_pool(self):
        cache = ArtifactCache()
        cfg = quick_config()
        first = run_campaign(cfg, artifacts=cache)
        clear_fleet_activity_cache()  # a re-run would need simulation …
        pool = BatchPool()
        again = run_campaign(cfg, artifacts=cache, batch_pool=pool)
        assert again is first
        # … but the memo hit never touched the pool at all.
        assert pool.stats.submitted == 0 and pool.stats.flushes == 0
        assert len(pool) == 0

    def test_outcome_disk_tier_round_trips_exactly(self, tmp_path):
        root = str(tmp_path / "artifacts")
        cfg = quick_config()
        computed = run_campaign(
            cfg, artifacts=ArtifactCache(ArtifactOptions(root=root))
        )
        reader = ArtifactCache(ArtifactOptions(root=root))
        loaded = reader.outcome(cfg, "none")
        assert loaded is not None
        assert reader.stats.outcome_disk_hits == 1
        assert json.dumps(outcome_metrics(loaded), sort_keys=True) == json.dumps(
            outcome_metrics(computed), sort_keys=True
        )
        fresh_arrays = outcome_arrays(computed)
        for key, values in outcome_arrays(loaded).items():
            np.testing.assert_array_equal(values, fresh_arrays[key])
        # A second in-process lookup is a memory hit, not a disk read.
        assert reader.outcome(cfg, "none") is loaded
        assert reader.stats.outcome_hits == 1

    def test_fleet_tags_never_alias_outcomes(self):
        cache = ArtifactCache()
        cfg = quick_config()
        pristine = run_campaign(cfg, artifacts=cache)
        stripped = run_campaign(cfg, artifacts=cache, fleet_tag="strip")
        assert stripped is not pristine
        assert run_campaign(cfg, artifacts=cache, fleet_tag="strip") is stripped
        assert run_campaign(cfg, artifacts=cache) is pristine


class TestPooledSweepByteIdentity:
    def test_pool_memo_and_budgets_keep_store_digests(self, tmp_path):
        spec = pooled_sweep_spec()
        plain = SweepStore(str(tmp_path / "plain"))
        run_sweep(spec, plain, n_workers=1)
        reference = store_digests(plain.root)

        pooled = SweepStore(str(tmp_path / "pooled"))
        run_sweep(spec, pooled, n_workers=1, pool=BatchPoolOptions())
        assert store_digests(pooled.root) == reference

        # Tiny lane budget: the prefetch flushes repeatedly mid-wave.
        budget = SweepStore(str(tmp_path / "budget"))
        run_sweep(
            spec, budget, n_workers=1, pool=BatchPoolOptions(max_lanes=2)
        )
        assert store_digests(budget.root) == reference

        shared = SweepStore(str(tmp_path / "shared"))
        run_sweep(
            spec,
            shared,
            n_workers=1,
            pool=BatchPoolOptions(),
            artifacts=ArtifactOptions(),
        )
        assert store_digests(shared.root) == reference

        # Repeat study: same spec, fresh store, warm outcome memo.
        repeat = SweepStore(str(tmp_path / "repeat"))
        report = run_sweep(
            spec,
            repeat,
            n_workers=1,
            pool=BatchPoolOptions(),
            artifacts=ArtifactOptions(),
        )
        assert report.n_executed == spec.n_scenarios
        assert store_digests(repeat.root) == reference

    def test_multiple_prefetch_windows_keep_digests(self, tmp_path):
        # More pending scenarios than one prefetch window (8): the
        # executor prefetches and executes window by window, bounding
        # fleet memory, without changing a stored byte.
        spec = SweepSpec(
            name="windows",
            grid=(
                GridAxis("noise.sigma", (0.5, 1.0, 1.5)),
                GridAxis("parameters.n2", (48, 64)),
                GridAxis("attack", ("none", "strip")),
            ),
            base={
                "parameters.k": 4,
                "parameters.m": 4,
                "parameters.n1": 32,
                "fleet_seed": 1,
                "measurement_seed": 2,
            },
            seed=9,
        )
        assert spec.n_scenarios == 12
        plain = SweepStore(str(tmp_path / "plain"))
        run_sweep(spec, plain, n_workers=1)
        pooled = SweepStore(str(tmp_path / "pooled"))
        run_sweep(spec, pooled, n_workers=1, pool=BatchPoolOptions())
        assert store_digests(pooled.root) == store_digests(plain.root)

    def test_four_workers_pooled_matches_serial_unpooled(self, tmp_path):
        spec = pooled_sweep_spec(name="pooled4")
        serial = SweepStore(str(tmp_path / "serial"))
        run_sweep(spec, serial, n_workers=1)
        pooled = SweepStore(str(tmp_path / "pooled"))
        run_sweep(
            spec,
            pooled,
            n_workers=4,
            pool=BatchPoolOptions(),
            artifacts=ArtifactOptions(),
        )
        assert store_digests(serial.root) == store_digests(pooled.root)
