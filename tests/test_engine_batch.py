"""Golden equivalence tests for batched fleet execution.

The batched engine path must be *byte-identical* to the per-device
compiled path (which is itself bit-identical to the interpreted
oracle): same channel tuples, exactly equal activity matrices, same
post-run netlist state — for every paper design, for ragged batches
(different cycle counts, different reset states), for batch size 1 and
for memoised long runs.  Batching is an execution strategy, never a
semantic choice.
"""

import numpy as np
import pytest

from repro.acquisition.device import (
    clear_fleet_activity_cache,
    fleet_activity_cache_size,
    prime_fleet_activity,
)
from repro.experiments.designs import (
    PAPER_IP_NAMES,
    PERIOD_CYCLES,
    build_device_fleet,
    build_ip,
    build_paper_ip,
)
from repro.fsm.counters import build_gray_counter, build_lfsr
from repro.hdl import (
    Constant,
    DRegister,
    LookupLogic,
    Mux2,
    Netlist,
    Simulator,
    TransitionTable,
    compile_netlist,
    run_batch,
    simulate_batch,
)
from repro.hdl.component import Component
from repro.hdl.engine import (
    MEMO_MIN_CYCLES,
    batch_program_cache_size,
    clear_program_cache,
)


def compiled_trace(build, cycles, reset=True):
    netlist = Netlist("ref")
    build(netlist)
    simulator = Simulator(netlist, engine="compiled")
    return simulator.run(cycles, reset=reset)


def interpreted_trace(build, cycles, reset=True):
    netlist = Netlist("ref")
    build(netlist)
    simulator = Simulator(netlist, engine="interpreted")
    return simulator.run(cycles, reset=reset)


def batch_of(builders):
    """Compile one engine per builder; all must share a shape."""
    engines = []
    for build in builders:
        netlist = Netlist("lane")
        build(netlist)
        engines.append(compile_netlist(netlist))
    assert len({engine.shape_key for engine in engines}) == 1
    return engines


class TestPaperDesignBatchEquivalence:
    @pytest.mark.parametrize("ip_name", PAPER_IP_NAMES)
    def test_homogeneous_batch_matches_both_engines(self, ip_name):
        engines = [
            compile_netlist(build_paper_ip(ip_name).netlist) for _ in range(3)
        ]
        traces = run_batch(engines, PERIOD_CYCLES)
        scalar = Simulator(
            build_paper_ip(ip_name).netlist, engine="compiled"
        ).run(PERIOD_CYCLES)
        oracle = Simulator(
            build_paper_ip(ip_name).netlist, engine="interpreted"
        ).run(PERIOD_CYCLES)
        for trace in traces:
            assert trace.channels == scalar.channels == oracle.channels
            assert np.array_equal(trace.matrix, scalar.matrix)
            assert np.array_equal(trace.matrix, oracle.matrix)

    def test_mixed_key_fleet_shares_one_shape(self):
        # IP_B / IP_C / IP_D: same gray-counter shape, three watermark
        # keys -> three structural fingerprints, one batched execution.
        names = ("IP_B", "IP_C", "IP_D")
        engines = [compile_netlist(build_paper_ip(n).netlist) for n in names]
        assert len({e.structural_key for e in engines}) == 3
        assert len({e.shape_key for e in engines}) == 1
        traces = run_batch(engines, PERIOD_CYCLES)
        for name, trace in zip(names, traces):
            reference = Simulator(
                build_paper_ip(name).netlist, engine="compiled"
            ).run(PERIOD_CYCLES)
            assert trace.channels == reference.channels
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_binary_and_gray_have_distinct_shapes(self):
        key_a = compile_netlist(build_paper_ip("IP_A").netlist).shape_key
        key_b = compile_netlist(build_paper_ip("IP_B").netlist).shape_key
        assert key_a != key_b

    def test_batch_size_one(self):
        engine = compile_netlist(build_paper_ip("IP_C").netlist)
        (trace,) = run_batch([engine], 100)
        reference = Simulator(
            build_paper_ip("IP_C").netlist, engine="compiled"
        ).run(100)
        assert np.array_equal(trace.matrix, reference.matrix)

    def test_write_back_matches_scalar_run(self):
        batched_ip = build_paper_ip("IP_B")
        scalar_ip = build_paper_ip("IP_B")
        run_batch([compile_netlist(batched_ip.netlist)], 37)
        Simulator(scalar_ip.netlist, engine="compiled").run(37)
        for batched_wire, scalar_wire in zip(
            batched_ip.netlist.wires.values(), scalar_ip.netlist.wires.values()
        ):
            assert batched_wire.value == scalar_wire.value
            assert batched_wire.previous == scalar_wire.previous
        assert (
            batched_ip.state_register._last_toggles
            == scalar_ip.state_register._last_toggles
        )

    def test_continuation_without_reset(self):
        engines = [
            compile_netlist(build_paper_ip(name).netlist)
            for name in ("IP_B", "IP_C")
        ]
        run_batch(engines, 40)
        continued = run_batch(engines, 25, reset=False)
        for name, trace in zip(("IP_B", "IP_C"), continued):
            reference = Simulator(
                build_paper_ip(name).netlist, engine="compiled"
            )
            reference.run(40)
            expected = reference.run(25, reset=False)
            assert np.array_equal(trace.matrix, expected.matrix)


class TestRaggedBatches:
    def test_ragged_cycle_counts(self):
        keys = (3, 77, 200)
        engines = [
            compile_netlist(build_ip(f"ip{k}", "gray", k).netlist)
            for k in keys
        ]
        cycles = [50, 256, 301]
        traces = run_batch(engines, cycles)
        for key, count, trace in zip(keys, cycles, traces):
            reference = Simulator(
                build_ip("ref", "gray", key).netlist, engine="compiled"
            ).run(count)
            assert trace.n_cycles == count
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_ragged_reset_states_and_tables(self):
        # LFSR lanes with different seeds (register reset values, wire
        # initials) *and* different taps (lookup tables) share a shape.
        lanes = [(9, [7, 5, 4, 3]), (1, [7, 5, 4, 3]), (33, [7, 5, 3, 2])]
        engines = batch_of(
            [
                (lambda n, s=seed, t=taps: build_lfsr(n, 8, t, seed=s))
                for seed, taps in lanes
            ]
        )
        traces = run_batch(engines, 120)
        for (seed, taps), trace in zip(lanes, traces):
            reference = compiled_trace(
                lambda n: build_lfsr(n, 8, taps, seed=seed), 120
            )
            oracle = interpreted_trace(
                lambda n: build_lfsr(n, 8, taps, seed=seed), 120
            )
            assert np.array_equal(trace.matrix, reference.matrix)
            assert np.array_equal(trace.matrix, oracle.matrix)

    def test_shape_mismatch_raises(self):
        engine_a = compile_netlist(build_paper_ip("IP_A").netlist)
        engine_b = compile_netlist(build_paper_ip("IP_B").netlist)
        with pytest.raises(ValueError):
            run_batch([engine_a, engine_b], 16)

    def test_cycle_count_validation(self):
        engine = compile_netlist(build_paper_ip("IP_A").netlist)
        with pytest.raises(ValueError):
            run_batch([engine], 0)
        with pytest.raises(ValueError):
            run_batch([engine, engine], [4])
        with pytest.raises(ValueError):
            run_batch([], 4)


class TestBatchedMemoisation:
    def test_long_run_tiles_each_lane(self):
        keys = (0x5A, 0xC3)
        engines = [
            compile_netlist(build_ip(f"ip{k}", "gray", k).netlist)
            for k in keys
        ]
        cycles = 4 * PERIOD_CYCLES
        assert cycles >= MEMO_MIN_CYCLES
        traces = run_batch(engines, cycles)
        for key, trace in zip(keys, traces):
            reference = Simulator(
                build_ip("ref", "gray", key).netlist, engine="compiled"
            ).run(cycles)
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_ragged_memoised_run(self):
        # One lane stops inside the stepped prefix, one needs tiling
        # beyond it, with different periods (width-4 vs width-8 lanes
        # would differ in shape, so vary the period via reset state).
        engines = batch_of(
            [
                lambda n: build_lfsr(n, 8, [7, 5, 4, 3], seed=1),
                lambda n: build_lfsr(n, 8, [7, 5, 4, 3], seed=90),
            ]
        )
        cycles = [600, 3000]
        traces = run_batch(engines, cycles)
        for seed, count, trace in zip((1, 90), cycles, traces):
            reference = compiled_trace(
                lambda n: build_lfsr(n, 8, [7, 5, 4, 3], seed=seed), count
            )
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_long_nonperiodic_batch_matches_scalar(self):
        # A design whose period exceeds the run length exercises the
        # memoising chunk loop's "no lane ever re-enters" path,
        # including buffer growth across several chunks.
        def build(netlist):
            from repro.fsm.counters import build_binary_counter

            build_binary_counter(netlist, 20)

        engines = batch_of([build, build])
        cycles = 3 * MEMO_MIN_CYCLES + 17
        traces = run_batch(engines, cycles)
        reference = compiled_trace(build, cycles)
        assert np.array_equal(traces[0].matrix, reference.matrix)
        assert np.array_equal(traces[1].matrix, reference.matrix)

    def test_memoised_matches_oracle(self):
        engines = [
            compile_netlist(build_paper_ip("IP_B").netlist) for _ in range(2)
        ]
        traces = run_batch(engines, 1000)
        oracle = Simulator(
            build_paper_ip("IP_B").netlist, engine="interpreted"
        ).run(1000)
        assert np.array_equal(traces[0].matrix, oracle.matrix)
        assert np.array_equal(traces[1].matrix, oracle.matrix)


class TestComponentZooBatching:
    def test_mux_constant_and_transition_table(self):
        def build(tables):
            def _build(netlist, table=tables):
                build_gray_counter(netlist, 4, prefix="c")
                state = netlist.wire("st", 3)
                nxt = netlist.wire("nx", 3)
                select = netlist.wire("sel", 1)
                alt = netlist.wire("alt", 3)
                out = netlist.wire("out", 3)
                netlist.add(TransitionTable("tt", state, nxt, table))
                netlist.add(DRegister("reg", nxt, state, reset_value=2))
                netlist.add(Constant("ca", alt, 0x5))
                netlist.add(
                    LookupLogic(
                        "selbit", (netlist.wires["c_state"],), select,
                        lambda v: v & 1,
                    )
                )
                netlist.add(Mux2("mux", select, alt, state, out))
            return _build

        tables = [
            {i: (3 * i + 1) % 8 for i in range(8)},
            {i: (5 * i + 2) % 8 for i in range(8)},
        ]
        engines = batch_of([build(t) for t in tables])
        traces = run_batch(engines, 60)
        for table, trace in zip(tables, traces):
            reference = compiled_trace(build(table), 60)
            oracle = interpreted_trace(build(table), 60)
            assert np.array_equal(trace.matrix, reference.matrix)
            assert np.array_equal(trace.matrix, oracle.matrix)

    def test_unreachable_transition_codes_are_tolerated(self):
        # A table entry for a code the width-masked state wire can
        # never carry is dead weight the scalar paths silently accept;
        # the densified batched table must accept it too.
        def build(netlist):
            state = netlist.wire("st", 4)
            nxt = netlist.wire("nx", 4)
            table = {i: (i + 1) % 16 for i in range(16)}
            table[16] = 0
            netlist.add(TransitionTable("tt", state, nxt, table))
            netlist.add(DRegister("reg", nxt, state))

        engines = batch_of([build, build])
        traces = run_batch(engines, 20)
        reference = compiled_trace(build, 20)
        assert np.array_equal(traces[0].matrix, reference.matrix)

    def test_partial_transition_table_raises_key_error(self):
        def build(netlist):
            state = netlist.wire("st", 3)
            nxt = netlist.wire("nx", 3)
            netlist.add(TransitionTable("tt", state, nxt, {0: 1, 1: 2}))
            netlist.add(DRegister("reg", nxt, state))

        engines = batch_of([build, build])
        with pytest.raises(KeyError) as batched_err:
            run_batch(engines, 8)
        with pytest.raises(KeyError) as scalar_err:
            compiled_trace(build, 8)
        assert str(batched_err.value) == str(scalar_err.value)

    def test_per_lane_glitch_factors(self):
        def build(glitch):
            def _build(netlist, g=glitch):
                build_gray_counter(netlist, 6, prefix="c")
                out = netlist.wire("lo", 6)
                netlist.add(
                    LookupLogic(
                        "lut", (netlist.wires["c_state"],), out,
                        lambda v: v ^ 0x15, glitch_factor=g,
                    )
                )
            return _build

        glitches = (0.25, 0.5, 1.5)
        engines = batch_of([build(g) for g in glitches])
        traces = run_batch(engines, 48)
        for glitch, trace in zip(glitches, traces):
            reference = compiled_trace(build(glitch), 48)
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_input_ports_are_not_batchable(self):
        netlist = Netlist("ports")
        from repro.hdl import InputPort

        data = netlist.wire("data", 4)
        q = netlist.wire("q", 4)
        netlist.add(InputPort("in", data, stimulus=lambda c: c % 16))
        netlist.add(DRegister("reg", data, q))
        engine = compile_netlist(netlist)
        assert engine.shape_key is None
        from repro.hdl import CompileError

        with pytest.raises(CompileError):
            run_batch([engine], 8)


class TestSimulateBatch:
    def test_mixed_shapes_preserve_order(self):
        names = ("IP_A", "IP_B", "IP_C", "IP_D", "IP_A")
        simulators = [
            Simulator(build_paper_ip(name).netlist, engine="compiled")
            for name in names
        ]
        traces = simulate_batch(simulators, 128)
        for name, trace in zip(names, traces):
            reference = Simulator(
                build_paper_ip(name).netlist, engine="interpreted"
            ).run(128)
            assert trace.channels == reference.channels
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_unbatchable_lanes_fall_back_to_scalar(self):
        class Exotic(Component):
            pass

        exotic = Netlist("x")
        build_gray_counter(exotic, 4)
        exotic.add(Exotic("weird"))
        simulators = [
            Simulator(build_paper_ip("IP_B").netlist),
            Simulator(exotic),
            Simulator(build_paper_ip("IP_C").netlist),
        ]
        assert simulators[1].engine_name == "interpreted"
        traces = simulate_batch(simulators, 32)
        for simulator, trace in zip(simulators, traces):
            fresh = Netlist("ref")
            build_gray_counter(fresh, 4)
            reference = (
                Simulator(fresh, engine="interpreted").run(32)
                if simulator is simulators[1]
                else Simulator(
                    build_paper_ip(
                        "IP_B" if simulator is simulators[0] else "IP_C"
                    ).netlist,
                    engine="interpreted",
                ).run(32)
            )
            assert np.array_equal(trace.matrix, reference.matrix)

    def test_duplicate_simulators_keep_sequential_semantics(self):
        # The same simulator listed twice with reset=False must behave
        # like the sequential loop: the second run continues from the
        # first run's final state, not from the shared starting state.
        simulator = Simulator(build_paper_ip("IP_B").netlist, engine="compiled")
        simulator.run(10)
        first, second = simulate_batch([simulator, simulator], 16, reset=False)
        reference = Simulator(build_paper_ip("IP_B").netlist, engine="compiled")
        reference.run(10)
        assert np.array_equal(first.matrix, reference.run(16, reset=False).matrix)
        assert np.array_equal(second.matrix, reference.run(16, reset=False).matrix)

    def test_per_simulator_cycles(self):
        simulators = [
            Simulator(build_paper_ip("IP_B").netlist, engine="compiled")
            for _ in range(2)
        ]
        short, long = simulate_batch(simulators, [16, 64])
        assert short.n_cycles == 16 and long.n_cycles == 64
        reference = Simulator(
            build_paper_ip("IP_B").netlist, engine="compiled"
        ).run(64)
        assert np.array_equal(long.matrix, reference.matrix)
        assert np.array_equal(short.matrix, reference.matrix[:16])


class TestBatchProgramSharing:
    def test_one_program_per_shape_and_uniformity(self):
        clear_program_cache()
        engines = [
            compile_netlist(build_ip(f"ip{k}", "gray", k).netlist)
            for k in range(4)
        ]
        run_batch(engines, 16)
        assert batch_program_cache_size() == 1
        run_batch(engines[:2], 16)
        assert batch_program_cache_size() == 1
        # Lanes with *different* lookup tables (LFSR taps) index by
        # lane, which is a distinct generated program from the same
        # shape with uniform tables.
        same_taps = batch_of(
            [
                lambda n: build_lfsr(n, 8, [7, 5, 4, 3], seed=1),
                lambda n: build_lfsr(n, 8, [7, 5, 4, 3], seed=9),
            ]
        )
        run_batch(same_taps, 16)
        assert batch_program_cache_size() == 2
        ragged_taps = batch_of(
            [
                lambda n: build_lfsr(n, 8, [7, 5, 4, 3], seed=1),
                lambda n: build_lfsr(n, 8, [7, 5, 3, 2], seed=1),
            ]
        )
        run_batch(ragged_taps, 16)
        assert batch_program_cache_size() == 3

    def test_uniform_and_ragged_batches_agree(self):
        twins = [
            compile_netlist(build_ip("twin", "gray", 7).netlist)
            for _ in range(2)
        ]
        mixed = [
            compile_netlist(build_ip("mix", "gray", k).netlist)
            for k in (7, 9)
        ]
        uniform_traces = run_batch(twins, 32)
        mixed_traces = run_batch(mixed, 32)
        assert np.array_equal(uniform_traces[0].matrix, mixed_traces[0].matrix)
        assert not np.array_equal(
            mixed_traces[0].matrix, mixed_traces[1].matrix
        )


class TestFleetPriming:
    def test_prime_fills_cache_with_batched_runs(self):
        clear_fleet_activity_cache()
        refds, duts = build_device_fleet(seed=2014)
        devices = (*refds.values(), *duts.values())
        simulated = prime_fleet_activity(devices)
        assert simulated == len(refds)
        assert fleet_activity_cache_size() == len(refds)
        # Every device is now a cache hit and matching pairs share
        # the exact trace object, as with the lazy path.
        assert refds["IP_B"].activity() is duts["DUT#2"].activity()

    def test_primed_bytes_equal_lazy_bytes(self):
        clear_fleet_activity_cache()
        primed_refds, primed_duts = build_device_fleet(
            seed=2014, prime_activity=True
        )
        clear_fleet_activity_cache()
        lazy_refds, lazy_duts = build_device_fleet(seed=2014)
        for name in primed_refds:
            assert np.array_equal(
                primed_refds[name].activity().matrix,
                lazy_refds[name].activity().matrix,
            )
        for name in primed_duts:
            assert np.array_equal(
                primed_duts[name].activity().matrix,
                lazy_duts[name].activity().matrix,
            )

    def test_prime_is_idempotent(self):
        clear_fleet_activity_cache()
        refds, duts = build_device_fleet(seed=2014)
        devices = (*refds.values(), *duts.values())
        assert prime_fleet_activity(devices) == len(refds)
        assert prime_fleet_activity(devices) == 0

    def test_prime_handles_interpreted_devices(self):
        clear_fleet_activity_cache()
        refds, _duts = build_device_fleet(seed=2014, engine="interpreted")
        device = refds["IP_A"]
        assert prime_fleet_activity([device], 32) == 0
        assert 32 in device._activity_cache
        reference = Simulator(
            build_paper_ip("IP_A").netlist, engine="interpreted"
        ).run(32)
        assert np.array_equal(device.activity(32).matrix, reference.matrix)
