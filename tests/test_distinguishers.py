"""Tests for distinguishers and confidence distances."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distinguishers import (
    ALL_DISTINGUISHERS,
    FisherZMeanDistinguisher,
    HigherMeanDistinguisher,
    HigherMedianDistinguisher,
    HigherMinimumDistinguisher,
    LowerVarianceDistinguisher,
    PAPER_DISTINGUISHERS,
    confidence_distance_higher,
    confidence_distance_lower,
    max2,
    min2,
)


class TestMax2Min2:
    def test_max2(self):
        assert max2([1.0, 5.0, 3.0]) == 3.0

    def test_min2(self):
        assert min2([1.0, 5.0, 3.0]) == 3.0

    def test_with_duplicates(self):
        assert max2([5.0, 5.0, 1.0]) == 5.0
        assert min2([1.0, 1.0, 5.0]) == 1.0

    def test_need_two_values(self):
        with pytest.raises(ValueError):
            max2([1.0])
        with pytest.raises(ValueError):
            min2([1.0])

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=20))
    def test_max2_at_most_max(self, values):
        assert max2(values) <= max(values)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=20))
    def test_min2_at_least_min(self, values):
        assert min2(values) >= min(values)


class TestConfidenceDistances:
    def test_paper_table1_row_c(self):
        # IP_C row: 0.733, 0.648, 0.947, 0.657 -> Delta_mean = 22.6 %.
        scores = [0.733, 0.648, 0.947, 0.657]
        assert confidence_distance_higher(scores) == pytest.approx(22.6, abs=0.05)

    def test_paper_table1_row_b(self):
        scores = [-0.104, 0.941, 0.473, 0.936]
        assert confidence_distance_higher(scores) == pytest.approx(0.53, abs=0.05)

    def test_paper_table2_row_c(self):
        # IP_C row variances -> Delta_v = 99.2 %.
        scores = [1.18e-4, 1.66e-4, 9.90e-7, 1.47e-4]
        assert confidence_distance_lower(scores) == pytest.approx(99.2, abs=0.1)

    def test_paper_table2_row_b(self):
        scores = [2.925e-4, 1.928e-5, 3.008e-4, 3.502e-5]
        assert confidence_distance_lower(scores) == pytest.approx(44.9, abs=0.1)

    def test_tie_gives_zero(self):
        assert confidence_distance_higher([0.5, 0.5, 0.1]) == 0.0
        assert confidence_distance_lower([1e-5, 1e-5, 1e-4]) == 0.0

    def test_zero_best_mean_guard(self):
        assert confidence_distance_higher([0.0, -0.5]) == 0.0

    def test_zero_second_variance_guard(self):
        assert confidence_distance_lower([0.0, 0.0, 1.0]) == 0.0

    def test_higher_distance_bounded_by_100_for_positive(self):
        assert 0 <= confidence_distance_higher([1.0, 0.001]) <= 100


def make_c_sets(rng, match="DUT#2"):
    """Synthetic C sets: the match is high and tight, others lower/looser."""
    c_sets = {}
    for name in ("DUT#1", "DUT#2", "DUT#3"):
        if name == match:
            c_sets[name] = rng.normal(0.95, 0.002, size=20)
        else:
            c_sets[name] = rng.normal(0.6, 0.02, size=20)
    return c_sets


class TestIdentification:
    def test_mean_distinguisher_picks_match(self, rng):
        verdict = HigherMeanDistinguisher().identify(make_c_sets(rng))
        assert verdict.chosen_dut == "DUT#2"
        assert verdict.distinguisher == "higher-mean"

    def test_variance_distinguisher_picks_match(self, rng):
        verdict = LowerVarianceDistinguisher().identify(make_c_sets(rng))
        assert verdict.chosen_dut == "DUT#2"

    def test_all_distinguishers_pick_obvious_match(self, rng):
        c_sets = make_c_sets(rng)
        for distinguisher in ALL_DISTINGUISHERS:
            assert distinguisher.identify(c_sets).chosen_dut == "DUT#2"

    def test_verdict_scores_cover_all_duts(self, rng):
        verdict = HigherMeanDistinguisher().identify(make_c_sets(rng))
        assert set(verdict.scores) == {"DUT#1", "DUT#2", "DUT#3"}

    def test_confidence_positive_for_clear_match(self, rng):
        verdict = LowerVarianceDistinguisher().identify(make_c_sets(rng))
        assert verdict.confidence_percent > 50

    def test_needs_two_candidates(self, rng):
        with pytest.raises(ValueError):
            HigherMeanDistinguisher().identify({"only": np.zeros(5)})

    def test_variance_beats_mean_on_near_collision(self, rng):
        # Two DUTs with almost equal means but very different spreads —
        # the situation of the paper's IP_B/IP_D rows.
        c_sets = {
            "match": rng.normal(0.940, 0.002, size=20),
            "collision": rng.normal(0.935, 0.015, size=20),
        }
        mean_v = HigherMeanDistinguisher().identify(c_sets)
        var_v = LowerVarianceDistinguisher().identify(c_sets)
        assert var_v.chosen_dut == "match"
        assert var_v.confidence_percent > mean_v.confidence_percent


class TestScores:
    def test_mean_score(self):
        assert HigherMeanDistinguisher().score(
            np.array([0.2, 0.4])
        ) == pytest.approx(0.3)

    def test_variance_score(self):
        data = np.array([0.2, 0.4])
        assert LowerVarianceDistinguisher().score(data) == pytest.approx(np.var(data))

    def test_median_score(self):
        assert HigherMedianDistinguisher().score(np.array([0.1, 0.9, 0.5])) == 0.5

    def test_minimum_score(self):
        assert HigherMinimumDistinguisher().score(
            np.array([0.1, 0.9])
        ) == pytest.approx(0.1)

    def test_fisher_z_score_monotone_in_rho(self):
        d = FisherZMeanDistinguisher()
        assert d.score(np.array([0.99])) > d.score(np.array([0.94]))

    def test_registry_contents(self):
        names = [d.name for d in ALL_DISTINGUISHERS]
        assert names[:2] == ["higher-mean", "lower-variance"]
        assert len(PAPER_DISTINGUISHERS) == 2
        assert len(set(names)) == len(names)
