"""Tests for the analysis helpers and Monte-Carlo validation."""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    estimate_reuse_probability,
    property_p1_numeric,
    property_p2_numeric,
)
from repro.analysis.stats import (
    SummaryStats,
    binomial_confidence,
    signal_to_noise_ratio,
    variance_ratio_f_test,
    welch_t_test,
)


class TestSummaryStats:
    def test_values(self):
        stats = SummaryStats.of([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == 2.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SummaryStats.of([])


class TestWelch:
    def test_distinct_populations_rejected(self, rng):
        a = rng.normal(0.95, 0.01, size=50)
        b = rng.normal(0.60, 0.05, size=50)
        _stat, p = welch_t_test(a, b)
        assert p < 1e-6

    def test_same_population_not_rejected(self, rng):
        a = rng.normal(0, 1, size=200)
        b = rng.normal(0, 1, size=200)
        _stat, p = welch_t_test(a, b)
        assert p > 0.001

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])


class TestFTest:
    def test_detects_variance_difference(self, rng):
        a = rng.normal(0, 1.0, size=100)
        b = rng.normal(0, 5.0, size=100)
        f, p = variance_ratio_f_test(a, b)
        assert p < 1e-6

    def test_equal_variances_pass(self, rng):
        a = rng.normal(0, 1.0, size=200)
        b = rng.normal(0, 1.0, size=200)
        _f, p = variance_ratio_f_test(a, b)
        assert p > 0.001

    def test_zero_variance_rejected(self):
        with pytest.raises(ValueError):
            variance_ratio_f_test([1.0, 2.0], [3.0, 3.0])


class TestBinomialConfidence:
    def test_interval_contains_point_estimate(self):
        low, high = binomial_confidence(8, 10)
        assert low <= 0.8 <= high

    def test_bounds_clip_to_unit(self):
        low, high = binomial_confidence(0, 5)
        assert low == 0.0
        low, high = binomial_confidence(5, 5)
        assert high == 1.0

    def test_narrower_with_more_trials(self):
        low_small, high_small = binomial_confidence(50, 100)
        low_big, high_big = binomial_confidence(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_confidence(2, 0)
        with pytest.raises(ValueError):
            binomial_confidence(7, 5)


class TestSNR:
    def test_known_snr(self, rng):
        signal = np.sin(np.linspace(0, 20, 5000))
        noisy = signal + rng.normal(0, signal.std(), size=signal.size)
        snr = signal_to_noise_ratio(signal, noisy)
        assert snr == pytest.approx(1.0, rel=0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            signal_to_noise_ratio(np.zeros(3), np.zeros(4))

    def test_zero_noise_rejected(self):
        signal = np.arange(5.0)
        with pytest.raises(ValueError):
            signal_to_noise_ratio(signal, signal)


class TestMonteCarlo:
    def test_estimate_agrees_with_closed_form(self):
        # Small alpha makes P(zeta) large enough to estimate quickly.
        estimate = estimate_reuse_probability(
            alpha=2.0, k=5, m=10, trials=800, rng=0
        )
        assert abs(estimate.z_score) < 4.0

    def test_estimate_metadata(self):
        estimate = estimate_reuse_probability(alpha=2.0, k=5, m=5, trials=50, rng=1)
        assert estimate.n2 == 50
        assert estimate.trials == 50
        assert 0 <= estimate.estimate <= 1

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            estimate_reuse_probability(trials=0)

    def test_rejects_bad_tracked_element(self):
        with pytest.raises(ValueError):
            estimate_reuse_probability(
                alpha=2.0, k=5, m=5, trials=10, tracked_element=10_000
            )

    def test_symmetry_across_elements(self):
        # Any tracked element has the same reuse probability.
        e0 = estimate_reuse_probability(
            alpha=1.0, k=10, m=10, trials=400, rng=2, tracked_element=0
        )
        e50 = estimate_reuse_probability(
            alpha=1.0, k=10, m=10, trials=400, rng=3, tracked_element=50
        )
        spread = abs(e0.estimate - e50.estimate)
        combined_se = np.hypot(e0.standard_error, e50.standard_error)
        assert spread < 4 * combined_se

    def test_property_p1(self):
        assert property_p1_numeric(m=20)

    def test_property_p2(self):
        assert property_p2_numeric(alpha=10.0)
        assert property_p2_numeric(alpha=2.0)
