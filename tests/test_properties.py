"""Tests for FSM property analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fsm.counters import (
    binary_counter_machine,
    gray_counter_machine,
    johnson_counter_machine,
)
from repro.fsm.encoding import gray_encode
from repro.fsm.machine import MooreMachine
from repro.fsm.properties import (
    hd_sequence,
    is_permutation,
    linearity_score,
    period,
    reachable_states,
    transient_length,
    verification_sequence_length,
)


def rho_machine():
    """A machine with a 3-step transient tail into a 4-cycle."""
    transitions = {
        "t0": "t1", "t1": "t2", "t2": "c0",
        "c0": "c1", "c1": "c2", "c2": "c3", "c3": "c0",
    }
    return MooreMachine(list(transitions), transitions, "t0")


class TestPeriod:
    def test_pure_cycle(self):
        assert period(binary_counter_machine(8)) == 256

    def test_rho_shape(self):
        assert period(rho_machine()) == 4

    def test_fixed_point(self):
        machine = MooreMachine(["x"], {"x": "x"}, "x")
        assert period(machine) == 1

    def test_period_from_inside_cycle(self):
        assert period(rho_machine(), start="c2") == 4


class TestTransient:
    def test_pure_cycle_has_no_transient(self):
        assert transient_length(binary_counter_machine(4)) == 0

    def test_rho_transient(self):
        assert transient_length(rho_machine()) == 3

    def test_transient_from_cycle_state(self):
        assert transient_length(rho_machine(), start="c0") == 0


class TestReachability:
    def test_counter_reaches_all(self):
        machine = binary_counter_machine(4)
        assert reachable_states(machine) == set(range(16))

    def test_rho_reaches_all_from_tail(self):
        assert len(reachable_states(rho_machine())) == 7

    def test_rho_from_cycle_only_reaches_cycle(self):
        assert reachable_states(rho_machine(), start="c0") == {"c0", "c1", "c2", "c3"}


class TestPermutation:
    def test_counter_is_permutation(self):
        assert is_permutation(gray_counter_machine(4))

    def test_rho_is_not(self):
        assert not is_permutation(rho_machine())


class TestLinearity:
    def test_gray_counter_is_maximally_linear(self):
        codes = [gray_encode(i, 8) for i in range(256)] + [gray_encode(0, 8)]
        assert linearity_score(codes) == 1.0

    def test_binary_counter_score_between_extremes(self):
        # The geometric carry-length histogram has about two bits of
        # entropy over eight observed values: score ~ 1 - 2/3.
        codes = list(range(256)) + [0]
        score = linearity_score(codes)
        assert 0.25 < score < 1.0

    def test_random_walk_is_less_linear_than_counter(self, rng):
        random_codes = list(rng.integers(0, 256, size=257))
        counter_codes = list(range(256)) + [0]
        assert linearity_score(random_codes) < linearity_score(counter_codes)

    def test_hd_sequence(self):
        assert hd_sequence([0, 1, 3]) == [1, 1]

    def test_hd_sequence_needs_two(self):
        with pytest.raises(ValueError):
            hd_sequence([0])


class TestVerificationLength:
    def test_counter_needs_one_period(self):
        machine = binary_counter_machine(8)
        assert verification_sequence_length(machine) == 256

    def test_margin_multiplies_period(self):
        machine = johnson_counter_machine(8)
        assert verification_sequence_length(machine, margin=3) == 48

    def test_transient_is_added(self):
        assert verification_sequence_length(rho_machine()) == 3 + 4

    def test_rejects_zero_margin(self):
        with pytest.raises(ValueError):
            verification_sequence_length(rho_machine(), margin=0)

    @given(st.integers(min_value=2, max_value=6))
    def test_period_divides_reachable_count_for_counters(self, width):
        machine = binary_counter_machine(width)
        assert period(machine) == len(reachable_states(machine))
