"""Tests for the parameter-selection mathematics (Section V.B)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.parameters import (
    PAPER_PLAN,
    alpha_for_target_probability,
    f_alpha_series,
    minimal_m_near_limit,
    plan_parameters,
    reuse_probability,
    reuse_probability_limit,
    single_selection_probability,
)

alphas = st.floats(min_value=1.0, max_value=1000.0)
ms = st.integers(min_value=1, max_value=500)


class TestClosedForm:
    def test_matches_binomial_form(self):
        # P(zeta) = 1 - (1-p)^m - m p (1-p)^(m-1) with p = 1/(alpha m).
        for alpha, m in ((10.0, 20), (2.0, 5), (100.0, 3)):
            p = 1.0 / (alpha * m)
            binomial = 1 - (1 - p) ** m - m * p * (1 - p) ** (m - 1)
            assert reuse_probability(alpha, m) == pytest.approx(binomial, rel=1e-12)

    def test_paper_value_at_alpha10_m20(self):
        assert reuse_probability(10.0, 20) == pytest.approx(0.0045, abs=2e-4)

    def test_single_selection_probability(self):
        assert single_selection_probability(10.0, 20) == pytest.approx(1 / 200)

    def test_m_one_is_zero(self):
        # With a single selection there can be no cross-selection reuse.
        assert reuse_probability(5.0, 1) == 0.0

    @given(alphas, ms)
    def test_is_a_probability(self, alpha, m):
        value = reuse_probability(alpha, m)
        assert 0.0 <= value <= 1.0

    @given(alphas)
    def test_increasing_in_m(self, alpha):
        values = [reuse_probability(alpha, m) for m in range(1, 60)]
        assert all(b >= a - 1e-15 for a, b in zip(values, values[1:]))

    @given(ms)
    def test_decreasing_in_alpha(self, m):
        values = [reuse_probability(alpha, m) for alpha in (1, 2, 5, 10, 100)]
        assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))

    def test_independent_of_k(self):
        # The paper: "this probability does not depend on the parameter
        # k" — k never enters the formula, verified by the signature.
        assert reuse_probability(10.0, 20) == reuse_probability(10.0, 20)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            reuse_probability(0.5, 10)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            reuse_probability(10.0, 0)


class TestLimit:
    def test_paper_limit_at_alpha_10(self):
        expected = 1 - (11 / 10) * math.exp(-0.1)
        assert reuse_probability_limit(10.0) == pytest.approx(expected)
        assert reuse_probability_limit(10.0) == pytest.approx(0.00468, abs=1e-5)

    @given(alphas)
    def test_limit_is_supremum(self, alpha):
        limit = reuse_probability_limit(alpha)
        assert reuse_probability(alpha, 400) <= limit + 1e-12

    @given(alphas)
    def test_convergence(self, alpha):
        limit = reuse_probability_limit(alpha)
        value = reuse_probability(alpha, 100_000)
        assert value == pytest.approx(limit, rel=1e-3, abs=1e-9)

    def test_property_p1_limit_alpha_to_infinity(self):
        values = [reuse_probability_limit(a) for a in (1, 10, 100, 10_000)]
        assert all(b < a for a, b in zip(values, values[1:]))
        assert values[-1] < 1e-8


class TestMinimalM:
    def test_near_paper_graphical_read(self):
        # The paper reads m >= 17 off Fig. 5; the exact computation
        # lands within a couple of steps of that.
        m = minimal_m_near_limit(10.0, rel_tol=0.05)
        assert 15 <= m <= 20

    def test_tighter_tolerance_needs_larger_m(self):
        loose = minimal_m_near_limit(10.0, rel_tol=0.10)
        tight = minimal_m_near_limit(10.0, rel_tol=0.01)
        assert tight > loose

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            minimal_m_near_limit(10.0, rel_tol=0.0)

    def test_series_shape(self):
        series = f_alpha_series(10.0, 50)
        assert len(series) == 50
        assert series[0][0] == 1
        assert series[-1][0] == 50


class TestAlphaForTarget:
    def test_round_trip(self):
        alpha = alpha_for_target_probability(0.001)
        assert reuse_probability_limit(alpha) == pytest.approx(0.001, rel=1e-3)

    def test_monotone(self):
        a1 = alpha_for_target_probability(0.01)
        a2 = alpha_for_target_probability(0.001)
        assert a2 > a1

    def test_loose_target_returns_alpha_one(self):
        assert alpha_for_target_probability(0.5) == 1.0

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            alpha_for_target_probability(0.0)


class TestPlanner:
    def test_paper_plan_constants(self):
        p = PAPER_PLAN.parameters
        assert (p.k, p.m, p.n1, p.n2) == (50, 20, 400, 10_000)
        assert PAPER_PLAN.alpha == 10.0
        assert PAPER_PLAN.p_zeta == pytest.approx(0.0045, abs=2e-4)

    def test_plan_derives_n2(self):
        plan = plan_parameters(k=50, alpha=10.0, m=20)
        assert plan.parameters.n2 == 10_000

    def test_plan_auto_m(self):
        plan = plan_parameters(k=50, alpha=10.0, rel_tol=0.05)
        assert 15 <= plan.parameters.m <= 20

    def test_plan_respects_expressions(self):
        plan = plan_parameters(k=25, alpha=4.0)
        p = plan.parameters
        assert p.n1 >= p.k
        assert p.n2 >= p.k * p.m

    def test_plan_custom_n1(self):
        plan = plan_parameters(k=10, alpha=10.0, n1=77, m=5)
        assert plan.parameters.n1 == 77

    def test_plan_rejects_bad_k(self):
        with pytest.raises(ValueError):
            plan_parameters(k=0)

    def test_k_does_not_change_p_zeta(self):
        # Section V.B: k only affects measurement time.
        plan_a = plan_parameters(k=10, alpha=10.0, m=20)
        plan_b = plan_parameters(k=500, alpha=10.0, m=20)
        assert plan_a.p_zeta == plan_b.p_zeta
