"""Tests for the graph-coloring watermark baseline."""

import networkx as nx
import pytest

from repro.baselines.graph_coloring import (
    GraphWatermark,
    coincidence_probability,
    embed_signature,
    greedy_coloring,
    is_proper_coloring,
    overhead_in_colors,
    verify_signature,
)


@pytest.fixture()
def graph():
    return nx.gnp_random_graph(40, 0.15, seed=7)


SIGNATURE = (1, 0, 1, 1, 0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 1, 1)


class TestEmbedding:
    def test_adds_edges_for_one_bits(self, graph):
        constrained, watermark = embed_signature(graph, SIGNATURE, key=3)
        added = constrained.number_of_edges() - graph.number_of_edges()
        assert added == sum(SIGNATURE)

    def test_pairs_were_non_adjacent(self, graph):
        _constrained, watermark = embed_signature(graph, SIGNATURE, key=3)
        for a, b in watermark.constrained_pairs:
            assert not graph.has_edge(a, b)

    def test_original_graph_untouched(self, graph):
        edges_before = graph.number_of_edges()
        embed_signature(graph, SIGNATURE, key=3)
        assert graph.number_of_edges() == edges_before

    def test_rejects_empty_signature(self, graph):
        with pytest.raises(ValueError):
            embed_signature(graph, (), key=1)

    def test_rejects_non_bits(self, graph):
        with pytest.raises(ValueError):
            embed_signature(graph, (0, 2), key=1)

    def test_dense_graph_raises(self):
        complete = nx.complete_graph(6)
        with pytest.raises(ValueError, match="non-adjacent"):
            embed_signature(complete, (1,) * 4, key=1)

    def test_watermark_record_validation(self):
        with pytest.raises(ValueError):
            GraphWatermark(key=1, signature=(1, 0), constrained_pairs=((0, 1),))


class TestVerification:
    def test_genuine_solution_verifies(self, graph):
        constrained, watermark = embed_signature(graph, SIGNATURE, key=3)
        coloring = greedy_coloring(constrained)
        assert is_proper_coloring(constrained, coloring)
        assert verify_signature(graph, coloring, watermark)

    def test_unwatermarked_solution_usually_fails(self, graph):
        _constrained, watermark = embed_signature(graph, SIGNATURE, key=3)
        plain_coloring = greedy_coloring(graph)
        probability = coincidence_probability(graph, watermark, trials=100, seed=1)
        # With 11 one-bits the chance of accidental satisfaction is low;
        # either the plain colouring fails directly or the empirical
        # rate is clearly below one.
        assert (not verify_signature(graph, plain_coloring, watermark)) or (
            probability < 0.9
        )

    def test_wrong_key_fails_verification(self, graph):
        constrained, watermark = embed_signature(graph, SIGNATURE, key=3)
        coloring = greedy_coloring(constrained)
        forged = GraphWatermark(
            key=4,
            signature=watermark.signature,
            constrained_pairs=watermark.constrained_pairs,
        )
        assert not verify_signature(graph, coloring, forged)

    def test_coincidence_probability_in_unit_interval(self, graph):
        _c, watermark = embed_signature(graph, SIGNATURE, key=3)
        probability = coincidence_probability(graph, watermark, trials=50, seed=2)
        assert 0.0 <= probability <= 1.0

    def test_longer_signature_lowers_coincidence(self):
        graph = nx.gnp_random_graph(60, 0.12, seed=9)
        _c1, short_wm = embed_signature(graph, (1,) * 4, key=5)
        _c2, long_wm = embed_signature(graph, (1,) * 24, key=5)
        p_short = coincidence_probability(graph, short_wm, trials=150, seed=3)
        p_long = coincidence_probability(graph, long_wm, trials=150, seed=3)
        assert p_long <= p_short

    def test_coincidence_validation(self, graph):
        _c, watermark = embed_signature(graph, SIGNATURE, key=3)
        with pytest.raises(ValueError):
            coincidence_probability(graph, watermark, trials=0)


class TestOverhead:
    def test_overhead_is_nonnegative_and_small(self, graph):
        constrained, _wm = embed_signature(graph, SIGNATURE, key=3)
        overhead = overhead_in_colors(graph, constrained)
        assert 0 <= overhead <= 3

    def test_proper_coloring_detection(self):
        triangle = nx.complete_graph(3)
        good = {0: 0, 1: 1, 2: 2}
        bad = {0: 0, 1: 0, 2: 1}
        assert is_proper_coloring(triangle, good)
        assert not is_proper_coloring(triangle, bad)
