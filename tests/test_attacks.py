"""Tests for the adversarial-analysis package."""

import pytest

from repro.acquisition.bench import acquire_traces
from repro.acquisition.device import Device
from repro.attacks.forgery import (
    forged_key_collision_correlation,
    predicted_h_switching,
    template_key_search,
)
from repro.attacks.masking import defender_k_escalation, masking_sweep
from repro.attacks.removal import strip_output_pads_only, strip_watermark
from repro.core.correlation import pearson
from repro.experiments.designs import KW1, build_paper_ip
from repro.fsm.encoding import gray_encode
from repro.hdl.simulator import Simulator
from repro.power.models import PowerModel


class TestRemoval:
    def test_strip_removes_all_wm_components(self):
        ip = build_paper_ip("IP_B")
        report = strip_watermark(ip)
        assert report.n_removed >= 5
        names = {c.name for c in ip.netlist.components}
        assert not any(name.startswith("wm_") for name in names)

    def test_strip_preserves_fsm_behaviour(self):
        ip = build_paper_ip("IP_B")
        strip_watermark(ip)
        sequence = Simulator(ip.netlist).state_sequence("ctr_reg", 260)
        expected = [gray_encode((i + 1) % 256, 8) for i in range(260)]
        assert sequence == expected

    def test_strip_clears_watermark_metadata(self):
        ip = build_paper_ip("IP_A")
        strip_watermark(ip)
        assert not ip.is_watermarked
        assert ip.kw is None

    def test_strip_is_idempotent(self):
        ip = build_paper_ip("IP_A")
        strip_watermark(ip)
        report = strip_watermark(ip)
        assert report.n_removed == 0

    def test_stripped_clone_changes_the_waveform(self):
        marked = Device("m", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
        clone_ip = build_paper_ip("IP_B")
        strip_watermark(clone_ip)
        clone = Device("c", clone_ip, PowerModel(), default_cycles=256)
        rho = pearson(
            marked.deterministic_waveform(), clone.deterministic_waveform()
        )
        assert rho < 0.99

    def test_pads_only_attack_keeps_ram_and_register(self):
        ip = build_paper_ip("IP_B")
        report = strip_output_pads_only(ip)
        assert report.removed_components == ["wm_pads"]
        names = {c.name for c in ip.netlist.components}
        assert "wm_sbox" in names
        assert "wm_hreg" in names

    def test_pads_only_attack_attenuates_less_than_full_strip(self):
        marked = Device("m", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)

        quiet_ip = build_paper_ip("IP_B")
        strip_output_pads_only(quiet_ip)
        quiet = Device("q", quiet_ip, PowerModel(), default_cycles=256)

        bare_ip = build_paper_ip("IP_B")
        strip_watermark(bare_ip)
        bare = Device("b", bare_ip, PowerModel(), default_cycles=256)

        base = marked.deterministic_waveform()
        rho_quiet = pearson(base, quiet.deterministic_waveform())
        rho_bare = pearson(base, bare.deterministic_waveform())
        assert rho_quiet > rho_bare


class TestForgery:
    def test_predicted_switching_shape(self):
        series = predicted_h_switching(list(range(64)), 0x5A)
        assert series.shape == (64,)
        assert series[0] == 0

    def test_template_search_recovers_the_key(self):
        device = Device("d", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        traces = acquire_traces(device, 300, rng=1)
        result = template_key_search(
            traces,
            state_codes=list(range(256)),
            true_key=KW1,
            samples_per_cycle=4,
            n_average=300,
        )
        assert result.succeeded
        assert result.rank_of_true_key() == 1
        assert result.margin > 0

    def test_search_fails_with_wrong_state_model(self):
        # Predicting with the wrong FSM (binary codes against a Gray
        # device) must not recover the key reliably.
        device = Device("d", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
        traces = acquire_traces(device, 200, rng=2)
        result = template_key_search(
            traces,
            state_codes=list(range(256)),  # wrong: device is Gray-coded
            true_key=KW1,
            samples_per_cycle=4,
        )
        correct_rank = result.rank_of_true_key()
        assert correct_rank > 1 or result.scores[result.best_key] < 0.3

    def test_search_with_gray_codes_recovers_gray_device_key(self):
        device = Device("d", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
        traces = acquire_traces(device, 300, rng=3)
        gray_codes = [gray_encode(i, 8) for i in range(256)]
        result = template_key_search(
            traces,
            state_codes=gray_codes,
            true_key=KW1,
            samples_per_cycle=4,
            n_average=300,
        )
        assert result.succeeded

    def test_validation(self):
        device = Device("d", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        traces = acquire_traces(device, 10, rng=4)
        with pytest.raises(ValueError):
            template_key_search(traces, range(256), KW1, samples_per_cycle=0)
        with pytest.raises(ValueError):
            template_key_search(traces, range(10), KW1, samples_per_cycle=4)

    def test_cross_key_collision_is_low(self):
        rho = forged_key_collision_correlation(list(range(256)), 0x5A, 0xC3)
        assert abs(rho) < 0.3

    def test_same_key_collision_is_one(self):
        rho = forged_key_collision_correlation(list(range(256)), 0x11, 0x11)
        assert rho == pytest.approx(1.0)


class TestMasking:
    def test_sweep_shapes_and_monotone_mean(self):
        points = masking_sweep([0.5, 4.0], seed=5)
        assert len(points) == 2
        # More masking noise lowers the matching correlation mean.
        assert points[1].matching_mean < points[0].matching_mean

    def test_low_noise_full_accuracy(self):
        points = masking_sweep([0.5], seed=6)
        assert points[0].mean_accuracy == 1.0
        assert points[0].variance_accuracy == 1.0

    def test_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            masking_sweep([])

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            masking_sweep([-1.0])

    def test_defender_escalation_validation(self):
        with pytest.raises(ValueError):
            defender_k_escalation(-1.0, [10])
        with pytest.raises(ValueError):
            defender_k_escalation(1.0, [0])
