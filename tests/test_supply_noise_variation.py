"""Tests for waveform rendering, noise and process variation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.correlation import pearson
from repro.power.noise import NoiseModel
from repro.power.supply import WaveformConfig, render_waveform
from repro.power.variation import DeviceVariation, VariationModel


class TestWaveformConfig:
    def test_kernel_sums_to_one(self):
        config = WaveformConfig(samples_per_cycle=6, pulse_decay=0.5)
        assert np.isclose(config.pulse_kernel().sum(), 1.0)

    def test_kernel_peaks_at_clock_edge(self):
        kernel = WaveformConfig().pulse_kernel()
        assert kernel[0] == kernel.max()

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            WaveformConfig(samples_per_cycle=0)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            WaveformConfig(pulse_decay=0.0)
        with pytest.raises(ValueError):
            WaveformConfig(pulse_decay=1.5)

    def test_rejects_bad_pole(self):
        with pytest.raises(ValueError):
            WaveformConfig(pdn_pole=1.0)


class TestRenderWaveform:
    def test_output_length(self):
        config = WaveformConfig(samples_per_cycle=4, pdn_pole=0.0)
        out = render_waveform(np.ones(10), config)
        assert out.size == 40

    def test_energy_preserved_without_filter(self):
        config = WaveformConfig(samples_per_cycle=4, pdn_pole=0.0)
        power = np.array([1.0, 2.0, 3.0])
        out = render_waveform(power, config)
        assert np.isclose(out.sum(), power.sum())

    def test_filter_preserves_dc_gain(self):
        config = WaveformConfig(samples_per_cycle=2, pdn_pole=0.4)
        out = render_waveform(np.ones(500), config)
        # Unity DC gain: the settled output oscillates around the
        # unfiltered per-sample mean of 0.5.
        assert np.isclose(out[-20:].mean(), 0.5, atol=0.01)

    def test_filter_smooths(self):
        impulse = np.zeros(20)
        impulse[10] = 1.0
        sharp = render_waveform(impulse, WaveformConfig(pdn_pole=0.0))
        smooth = render_waveform(impulse, WaveformConfig(pdn_pole=0.5))
        assert smooth.max() < sharp.max()

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            render_waveform(np.ones((2, 2)), WaveformConfig())

    @given(st.integers(min_value=1, max_value=8))
    def test_samples_per_cycle_scales_length(self, s):
        config = WaveformConfig(samples_per_cycle=s, pdn_pole=0.0)
        assert render_waveform(np.ones(7), config).size == 7 * s


class TestNoiseModel:
    def test_shape(self, rng):
        noise = NoiseModel(sigma=1.0).sample(5, 100, 2.0, rng)
        assert noise.shape == (5, 100)

    def test_scales_with_signal_std(self, rng):
        model = NoiseModel(sigma=1.0)
        small = model.sample(200, 50, 1.0, np.random.default_rng(0))
        large = model.sample(200, 50, 3.0, np.random.default_rng(0))
        assert np.isclose(large.std(), 3 * small.std(), rtol=0.05)

    def test_zero_sigma_is_silent(self, rng):
        noise = NoiseModel(sigma=0.0).sample(3, 10, 1.0, rng)
        assert np.all(noise == 0)

    def test_drift_accumulates(self, rng):
        model = NoiseModel(sigma=0.0, drift_sigma=1.0)
        noise = model.sample(500, 400, 1.0, rng)
        early = noise[:, :40].std()
        late = noise[:, -40:].std()
        assert late > early

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-1.0)

    def test_rejects_bad_shape_request(self, rng):
        with pytest.raises(ValueError):
            NoiseModel().sample(0, 10, 1.0, rng)

    def test_empirical_sigma_matches(self, rng):
        noise = NoiseModel(sigma=2.0).sample(100, 1000, 1.0, rng)
        assert np.isclose(noise.std(), 2.0, rtol=0.05)


class TestVariation:
    def test_nominal_is_identity(self):
        nominal = DeviceVariation.nominal()
        assert nominal.gain == 1.0
        assert nominal.offset == 0.0
        assert nominal.component_scales == {}

    def test_sample_covers_components(self, rng):
        model = VariationModel()
        variation = model.sample(["a", "b"], rng)
        assert set(variation.component_scales) == {"a", "b"}

    def test_sample_scales_near_one(self, rng):
        model = VariationModel(component_sigma=0.02)
        variation = model.sample([f"c{i}" for i in range(200)], rng)
        scales = np.array(list(variation.component_scales.values()))
        assert np.isclose(scales.mean(), 1.0, atol=0.01)
        assert scales.std() < 0.05

    def test_rejects_negative_sigmas(self):
        with pytest.raises(ValueError):
            VariationModel(gain_sigma=-0.1)

    def test_rejects_nonpositive_gain(self):
        with pytest.raises(ValueError):
            DeviceVariation(gain=0.0, offset=0.0, component_scales={})

    def test_pearson_invariant_to_gain_and_offset(self, rng):
        # The core claim behind "insensitive to CMOS process variation".
        trace = rng.normal(size=512)
        transformed = 3.7 * trace - 11.0
        assert np.isclose(pearson(trace, transformed), 1.0)

    def test_pearson_flips_sign_with_negative_gain(self, rng):
        trace = rng.normal(size=512)
        assert np.isclose(pearson(trace, -trace), -1.0)
