"""Unit tests for the CI benchmark regression gate.

``benchmarks/check_bench.py`` is what turns the regenerated
``BENCH_*.json`` files from an uploaded artifact into an enforced
quality gate, so its classification and comparison logic is tier-1
tested here (the script itself is plain stdlib and runs without the
package installed).
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def write_bench(directory: Path, name: str, data: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(data))


class TestClassification:
    @pytest.mark.parametrize(
        "key", ["speedup", "shared_speedup", "speedup_vs_compiled",
                "compiled_cycles_per_sec", "scenarios_per_second"]
    )
    def test_higher_better(self, key):
        assert check_bench.classify(key) == check_bench.HIGHER_BETTER

    @pytest.mark.parametrize(
        "key", ["cold_seconds", "batched_wall_sec", "peak_trace_matrix_bytes"]
    )
    def test_lower_better(self, key):
        assert check_bench.classify(key) == check_bench.LOWER_BETTER

    @pytest.mark.parametrize("key", ["devices", "cycles", "n_scenarios", "grid"])
    def test_informational(self, key):
        assert check_bench.classify(key) is None

    def test_only_ratios_are_machine_independent(self):
        assert check_bench.is_ratio_metric("speedup")
        assert not check_bench.is_ratio_metric("compiled_cycles_per_sec")


class TestFlatten:
    def test_nested_paths_and_non_numerics(self):
        flat = dict(
            check_bench.flatten(
                {"a": {"speedup": 2.0, "design": "IP_B"}, "top": 7}
            )
        )
        assert flat == {"a.speedup": 2.0, "top": 7.0}


class TestGate:
    def run(self, tmp_path, baseline, current, tolerance=0.35, slack=1.0):
        write_bench(tmp_path / "base", "BENCH_x.json", baseline)
        write_bench(tmp_path / "cur", "BENCH_x.json", current)
        return check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", tolerance, slack
        )

    def test_within_tolerance_passes(self, tmp_path):
        rows, errors = self.run(
            tmp_path,
            {"fleet": {"speedup": 40.0, "wall_sec": 1.0}},
            {"fleet": {"speedup": 30.0, "wall_sec": 1.3}},
        )
        assert not errors
        assert {row["status"] for row in rows} == {"ok"}

    def test_throughput_regression_fails(self, tmp_path):
        rows, _ = self.run(
            tmp_path,
            {"fleet": {"speedup": 40.0}},
            {"fleet": {"speedup": 20.0}},
        )
        assert rows[0]["status"] == "regression"

    def test_wall_time_regression_fails(self, tmp_path):
        rows, _ = self.run(
            tmp_path,
            {"fleet": {"wall_sec": 1.0}},
            {"fleet": {"wall_sec": 1.5}},
        )
        assert rows[0]["status"] == "regression"

    def test_improvements_always_pass(self, tmp_path):
        rows, _ = self.run(
            tmp_path,
            {"fleet": {"speedup": 10.0, "wall_sec": 2.0}},
            {"fleet": {"speedup": 100.0, "wall_sec": 0.1}},
        )
        assert all(row["status"] == "ok" for row in rows)
        assert all(row["change"] > 0 for row in rows)

    def test_absolute_metrics_get_extra_slack(self, tmp_path):
        baseline = {"fleet": {"cycles_per_sec": 100.0}}
        current = {"fleet": {"cycles_per_sec": 50.0}}
        strict, _ = self.run(tmp_path, baseline, current, 0.35, 1.0)
        slack, _ = self.run(tmp_path, baseline, current, 0.35, 2.0)
        assert strict[0]["status"] == "regression"
        assert slack[0]["status"] == "ok"

    def test_missing_metric_fails(self, tmp_path):
        rows, _ = self.run(
            tmp_path,
            {"fleet": {"speedup": 40.0}},
            {"fleet": {}},
        )
        assert rows[0]["status"] == "missing"

    def test_new_metric_is_reported_not_failed(self, tmp_path):
        rows, _ = self.run(
            tmp_path,
            {"fleet": {"speedup": 40.0}},
            {"fleet": {"speedup": 40.0}, "fleet_batched": {"speedup": 99.0}},
        )
        statuses = {row["metric"]: row["status"] for row in rows}
        assert statuses["fleet.speedup"] == "ok"
        assert statuses["fleet_batched.speedup"] == "new"

    def test_missing_regenerated_file_errors(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 1.0}})
        (tmp_path / "cur").mkdir()
        _rows, errors = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 1.0
        )
        assert errors and "not regenerated" in errors[0]

    def test_empty_baseline_dir_errors(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        _rows, errors = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 1.0
        )
        assert errors

    def test_informational_keys_are_not_gated(self, tmp_path):
        rows, _ = self.run(
            tmp_path,
            {"fleet": {"devices": 8, "design": "IP_B"}},
            {"fleet": {"devices": 4, "design": "IP_A"}},
        )
        assert rows == []


class TestLongRunVectorisedGate:
    """The vectorised-tier headline metric is classified and gated.

    ``BENCH_engine.json`` gained a ``long_run_vectorised`` section with
    the cycle-axis kernel tier; these tests pin that its throughput key
    is auto-classified (higher-better, machine-dependent) and that the
    gate enforces it from its first committed baseline onwards.
    """

    SECTION = {
        "long_run_vectorised": {
            "design": "IP_A",
            "cycles": 262144,
            "compiled_cycles_per_sec": 100e6,
        }
    }

    def test_metric_is_classified_higher_better(self):
        key = "compiled_cycles_per_sec"
        assert check_bench.classify(key) == check_bench.HIGHER_BETTER
        assert not check_bench.is_ratio_metric(key)

    def test_first_run_reports_new_then_gates_after_acceptance(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_engine.json", {})
        write_bench(tmp_path / "cur", "BENCH_engine.json", self.SECTION)
        rows, errors = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 2.0
        )
        assert not errors
        statuses = {row["metric"]: row["status"] for row in rows}
        assert (
            statuses["long_run_vectorised.compiled_cycles_per_sec"] == "new"
        )
        # Accept the first baseline; the metric is now gated.
        check_bench.update_baselines(tmp_path / "base", tmp_path / "cur")
        collapsed = {
            "long_run_vectorised": dict(
                self.SECTION["long_run_vectorised"],
                compiled_cycles_per_sec=10e6,
            )
        }
        write_bench(tmp_path / "cur", "BENCH_engine.json", collapsed)
        rows, _ = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 2.0
        )
        statuses = {row["metric"]: row["status"] for row in rows}
        assert (
            statuses["long_run_vectorised.compiled_cycles_per_sec"]
            == "regression"
        )

    def test_disappearing_metric_fails_the_gate(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_engine.json", self.SECTION)
        write_bench(tmp_path / "cur", "BENCH_engine.json", {})
        rows, _ = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 2.0
        )
        assert rows[0]["status"] == "missing"

    def test_informational_keys_of_section_stay_ungated(self, tmp_path):
        shifted = {
            "long_run_vectorised": dict(
                self.SECTION["long_run_vectorised"], cycles=512
            )
        }
        write_bench(tmp_path / "base", "BENCH_engine.json", self.SECTION)
        write_bench(tmp_path / "cur", "BENCH_engine.json", shifted)
        rows, _ = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 2.0
        )
        gated = {row["metric"] for row in rows}
        assert gated == {"long_run_vectorised.compiled_cycles_per_sec"}


class TestMainEntry:
    def test_exit_codes_and_report(self, tmp_path, monkeypatch, capsys):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(tmp_path / "cur", "BENCH_x.json", {"a": {"speedup": 10.0}})
        summary = tmp_path / "summary.md"
        summary.touch()
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        report = tmp_path / "report.md"
        code = check_bench.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
                "--report", str(report),
            ]
        )
        assert code == 0
        assert "Benchmark regression gate" in report.read_text()
        assert "Benchmark regression gate" in summary.read_text()

        write_bench(tmp_path / "cur", "BENCH_x.json", {"a": {"speedup": 1.0}})
        code = check_bench.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_tolerance_flag(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(tmp_path / "cur", "BENCH_x.json", {"a": {"speedup": 6.0}})
        args = [
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]
        assert check_bench.main(args + ["--tolerance", "0.5"]) == 0
        assert check_bench.main(args + ["--tolerance", "0.2"]) == 1


class TestNewMetricReporting:
    def test_report_lists_newly_tracked_metrics(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(
            tmp_path / "cur",
            "BENCH_x.json",
            {"a": {"speedup": 10.0}, "pooled": {"speedup": 3.0}},
        )
        rows, errors = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 1.0
        )
        assert not errors
        report = check_bench.render_report(rows, 0.35, 1.0)
        assert "newly tracked metric(s)" in report
        assert "`BENCH_x.json:pooled.speedup`" in report

    def test_report_without_new_metrics_stays_quiet(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(tmp_path / "cur", "BENCH_x.json", {"a": {"speedup": 10.0}})
        rows, _ = check_bench.run_gate(
            tmp_path / "base", tmp_path / "cur", 0.35, 1.0
        )
        assert "newly tracked" not in check_bench.render_report(rows, 0.35, 1.0)


class TestUpdateBaseline:
    def args(self, tmp_path):
        return [
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ]

    def test_rewrites_baseline_in_place_and_accepts_regression(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(tmp_path / "cur", "BENCH_x.json", {"a": {"speedup": 2.0}})
        assert check_bench.main(self.args(tmp_path)) == 1  # plain gate fails
        report = tmp_path / "report.md"
        code = check_bench.main(
            self.args(tmp_path)
            + ["--update-baseline", "--report", str(report)]
        )
        assert code == 0
        rewritten = json.loads((tmp_path / "base" / "BENCH_x.json").read_text())
        assert rewritten == {"a": {"speedup": 2.0}}
        text = report.read_text()
        assert "Baseline updated in place" in text
        # The accepted run must not tell the reader to "fix" anything.
        assert "regressed metric(s) accepted" in text
        assert "fix the regression" not in text
        # The accepted numbers are now the gate: a plain run passes.
        assert check_bench.main(self.args(tmp_path)) == 0

    def test_copies_brand_new_benchmark_files(self, tmp_path):
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(tmp_path / "cur", "BENCH_x.json", {"a": {"speedup": 10.0}})
        write_bench(tmp_path / "cur", "BENCH_y.json", {"b": {"speedup": 5.0}})
        updated = check_bench.update_baselines(tmp_path / "base", tmp_path / "cur")
        assert updated == ["BENCH_x.json", "BENCH_y.json"]
        assert (tmp_path / "base" / "BENCH_y.json").exists()

    def test_gate_errors_still_fail_under_update(self, tmp_path):
        # A benchmark file that was not regenerated is an error, not an
        # acceptable regression: nothing is rewritten and the run fails.
        write_bench(tmp_path / "base", "BENCH_x.json", {"a": {"speedup": 10.0}})
        (tmp_path / "cur").mkdir()
        assert check_bench.main(self.args(tmp_path) + ["--update-baseline"]) == 1
        unchanged = json.loads((tmp_path / "base" / "BENCH_x.json").read_text())
        assert unchanged == {"a": {"speedup": 10.0}}
