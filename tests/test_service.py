"""API smoke tests for the HTTP sweep service (:mod:`repro.service`).

The service runs in a background thread on an ephemeral port; requests
go through real sockets via :mod:`urllib` so the hand-rolled HTTP
layer is exercised end to end (routing, JSON errors, chunked NDJSON
streaming).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import JOB_DONE, SweepService, job_id_for, start_service
from repro.service import jobs as service_jobs
from repro.sweeps import (
    GridAxis,
    SweepOptions,
    SweepSpec,
    SweepStore,
    expand_scenarios,
    run,
)
from repro.sweeps.scheduler import SchedulerOptions
from tests.test_sweeps import QUICK, quick_spec, store_digests


class Client:
    """A minimal JSON/NDJSON client against one service instance."""

    def __init__(self, base_url):
        self.base_url = base_url

    def get(self, path):
        return self._request("GET", path)

    def post(self, path, payload=None):
        body = json.dumps({} if payload is None else payload).encode()
        return self._request("POST", path, body)

    def _request(self, method, path, body=None):
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def stream(self, path):
        """All NDJSON lines of a streaming endpoint, parsed."""
        with urllib.request.urlopen(self.base_url + path, timeout=120) as r:
            assert r.headers["Content-Type"].startswith("application/x-ndjson")
            return [json.loads(line) for line in r]

    def wait(self, job_id, timeout=120.0):
        """Poll until the job leaves the running state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, description = self.get(f"/sweeps/{job_id}")
            if description["state"] != "running":
                return description
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} still running after {timeout}s")


@pytest.fixture()
def service(tmp_path):
    instance = SweepService(str(tmp_path / "store"))
    handle = start_service(instance)
    yield instance, Client(handle.base_url)
    handle.stop()


def submission(spec, **options):
    return {"spec": spec.to_json_dict(), "options": options}


class TestHealthAndErrors:
    def test_health(self, service):
        instance, client = service
        status, payload = client.get("/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["store"] == instance.store_root
        assert payload["spec_schema_version"] >= 1
        assert payload["jobs"] == {"total": 0, "running": 0}

    def test_unknown_path_is_404(self, service):
        _, client = service
        status, payload = client.get("/nope")
        assert status == 404 and "error" in payload

    def test_wrong_method_is_405(self, service):
        _, client = service
        status, payload = client.post("/health")
        assert status == 405 and "GET" in payload["error"]

    def test_unknown_job_is_404(self, service):
        _, client = service
        status, payload = client.get("/sweeps/deadbeefdeadbeef")
        assert status == 404 and "deadbeefdeadbeef" in payload["error"]

    def test_malformed_body_is_400(self, service):
        _, client = service
        request = urllib.request.Request(
            client.base_url + "/sweeps", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_invalid_spec_names_offending_path(self, service):
        _, client = service
        payload = quick_spec().to_json_dict()
        payload["grid"][0]["field"] = "bogus"
        status, body = client.post("/sweeps", {"spec": payload})
        assert status == 400
        assert "spec.grid[0].field" in body["error"]

    def test_unknown_option_rejected(self, service):
        _, client = service
        status, body = client.post(
            "/sweeps", submission(quick_spec(), turbo=True)
        )
        assert status == 400
        assert "options.turbo" in body["error"]


class TestSubmitPollRows:
    def test_submit_poll_rows_byte_identical_to_direct_run(
        self, service, tmp_path
    ):
        instance, client = service
        spec = quick_spec(
            name="svc", sigmas=(0.5, 1.0), attacks=("none", "strip")
        )
        status, accepted = client.post(
            "/sweeps", submission(spec, n_workers=2)
        )
        assert status == 202 and accepted["created"]
        assert accepted["job_id"] == job_id_for(spec)
        assert accepted["n_scenarios"] == 4

        rows = client.stream(f"/sweeps/{accepted['job_id']}/rows")
        kinds = [row["kind"] for row in rows]
        assert kinds[-1] == "end" and rows[-1]["state"] == JOB_DONE
        accuracy = [row for row in rows if row["kind"] == "accuracy"]
        assert {row["scenario_id"] for row in accuracy} == set(
            s.scenario_id for s in expand_scenarios(spec)
        )
        assert any(row["kind"] == "roc" for row in rows)
        # The default stream axis is the spec's first grid axis.
        assert all(
            row["axis"] == "noise.sigma"
            for row in rows
            if row["kind"] == "roc"
        )

        description = client.wait(accepted["job_id"])
        assert description["state"] == JOB_DONE
        snapshot = description["status"]
        assert snapshot["completed"] == 4 and snapshot["pending"] == 0
        assert description["report"]["executed"] == 4

        # The tentpole acceptance: the store the service produced is
        # byte-identical to the same spec run directly in process.
        direct = SweepStore(str(tmp_path / "direct"))
        run(spec, direct, SweepOptions(n_workers=2))
        assert store_digests(instance.store_root) == store_digests(
            direct.root
        )

    def test_resubmission_of_finished_spec_completes_from_cache(
        self, service
    ):
        _, client = service
        spec = quick_spec(name="twice")
        _, first = client.post("/sweeps", submission(spec))
        done = client.wait(first["job_id"])
        assert done["report"]["executed"] == len(expand_scenarios(spec))

        status, again = client.post("/sweeps", submission(spec))
        assert status == 202 and again["created"]
        assert again["job_id"] == first["job_id"]
        done = client.wait(again["job_id"])
        assert done["report"]["executed"] == 0
        assert done["report"]["cached"] == len(expand_scenarios(spec))

    def test_rows_axis_query_parameter(self, service):
        _, client = service
        spec = quick_spec(name="axis", attacks=("none", "strip"))
        _, accepted = client.post("/sweeps", submission(spec))
        rows = client.stream(f"/sweeps/{accepted['job_id']}/rows?axis=attack")
        roc = [row for row in rows if row["kind"] == "roc"]
        assert roc and all(row["axis"] == "attack" for row in roc)
        assert {row["attack"] for row in roc} == {"none", "strip"}


class TestIdempotencyAndScrub:
    def test_duplicate_submission_joins_running_job(
        self, service, monkeypatch
    ):
        """While a job runs, resubmitting its spec joins it (no second
        execution) — and scrub refuses to race a live writer."""
        instance, client = service
        release = threading.Event()
        started = threading.Event()
        calls = []

        def blocking_run(spec, store, options=None, progress=None):
            calls.append(spec.name)
            started.set()
            assert release.wait(timeout=60)
            from repro.sweeps.executor import SweepReport

            return SweepReport(
                spec_name=spec.name,
                store_root=store.root,
                scenario_ids=[s.scenario_id for s in expand_scenarios(spec)],
            )

        monkeypatch.setattr(service_jobs, "run", blocking_run)
        spec = quick_spec(name="held")
        status, first = client.post("/sweeps", submission(spec))
        assert status == 202 and first["created"]
        assert started.wait(timeout=30)

        status, joined = client.post("/sweeps", submission(spec))
        assert status == 200 and not joined["created"]
        assert joined["job_id"] == first["job_id"]

        status, refused = client.post("/admin/scrub")
        assert status == 409 and "running" in refused["error"]

        release.set()
        client.wait(first["job_id"])
        assert calls == ["held"]  # exactly one execution

    def test_scrub_removes_crash_residue(self, service, tmp_path):
        instance, client = service
        store = SweepStore(instance.store_root)
        with open(f"{store.root}/.tmp-crashed", "w") as handle:
            handle.write("partial write")
        with open(f"{store.root}/0123456789abcdef01234567.npz", "wb") as handle:
            handle.write(b"orphaned bundle")
        status, payload = client.post("/admin/scrub")
        assert status == 200
        assert payload["removed"] == 2


class TestQuarantineSurfaced:
    def test_failed_scenario_reported_in_status_and_poll(self, service):
        # n1 = 2 < k = 4 violates expression (1) at campaign time, so
        # that scenario can never succeed; the sibling completes and
        # the job lands in the quarantined state.
        _, client = service
        spec = SweepSpec(
            name="q",
            grid=(GridAxis("parameters.n1", (32, 2)),),
            base={k: v for k, v in QUICK.items() if k != "parameters.n1"},
        )
        bad = expand_scenarios(spec)[1].scenario_id
        _, accepted = client.post(
            "/sweeps", submission(spec, max_retries=0, n_workers=2)
        )
        description = client.wait(accepted["job_id"])
        assert description["state"] == "quarantined"
        assert description["report"]["failed_ids"] == [bad]
        assert description["status"]["quarantined"] == 1
        assert description["status"]["completed"] == 1
        detail = description["quarantined"]
        assert len(detail) == 1 and detail[0]["scenario_id"] == bad
        assert detail[0]["type"] and detail[0]["attempts"] == 1


class TestJobIdentity:
    def test_job_id_is_content_addressed(self):
        spec = quick_spec(name="a")
        assert job_id_for(spec) == job_id_for(quick_spec(name="a"))
        assert job_id_for(spec) != job_id_for(quick_spec(name="b"))
        assert job_id_for(spec) != job_id_for(quick_spec(name="a", seed=6))


class TestMultiInstance:
    def test_two_instances_share_one_store_root(self, tmp_path):
        """Submitting one spec to two service instances over a common
        store root converges on one byte-identical result set, with
        every scenario executed exactly once across the pair."""
        root = str(tmp_path / "shared")
        first = start_service(
            SweepService(root, SweepOptions(scheduler=SchedulerOptions()))
        )
        second = start_service(
            SweepService(root, SweepOptions(scheduler=SchedulerOptions()))
        )
        try:
            clients = [Client(first.base_url), Client(second.base_url)]
            spec = quick_spec(
                name="fleet", sigmas=(0.5, 1.0), attacks=("none", "strip")
            )
            accepted = [
                client.post("/sweeps", submission(spec, n_workers=2))[1]
                for client in clients
            ]
            descriptions = [
                client.wait(job["job_id"])
                for client, job in zip(clients, accepted)
            ]
            assert all(d["state"] == JOB_DONE for d in descriptions)
            total_executed = sum(
                d["report"]["executed"] for d in descriptions
            )
            assert total_executed == len(expand_scenarios(spec))

            direct = SweepStore(str(tmp_path / "direct"))
            run(spec, direct, SweepOptions())
            assert store_digests(root) == store_digests(direct.root)
        finally:
            first.stop()
            second.stop()
