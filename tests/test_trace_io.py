"""Tests for trace-set persistence."""

import os

import numpy as np
import pytest

from repro.acquisition.io import (
    load_campaign,
    load_trace_set,
    save_campaign,
    save_trace_set,
)
from repro.acquisition.traces import TraceSet


@pytest.fixture()
def traces(rng):
    return TraceSet("DUT#1", rng.normal(size=(12, 32)))


class TestRoundTrip:
    def test_save_load_preserves_everything(self, traces, tmp_path):
        path = str(tmp_path / "traces.npz")
        save_trace_set(traces, path)
        loaded = load_trace_set(path)
        assert loaded.device_name == "DUT#1"
        np.testing.assert_allclose(loaded.matrix, traces.matrix)

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="not a trace-set archive"):
            load_trace_set(path)

    def test_load_rejects_future_version(self, traces, tmp_path):
        path = str(tmp_path / "future.npz")
        np.savez(
            path,
            matrix=traces.matrix,
            device_name=np.array("x"),
            format_version=np.array(99),
        )
        with pytest.raises(ValueError, match="newer format"):
            load_trace_set(path)


class TestCampaign:
    def test_save_load_campaign(self, rng, tmp_path):
        sets = {
            "DUT#1": TraceSet("DUT#1", rng.normal(size=(4, 8))),
            "DUT#2": TraceSet("DUT#2", rng.normal(size=(4, 8))),
        }
        directory = str(tmp_path / "campaign")
        paths = save_campaign(sets, directory)
        assert set(paths) == {"DUT#1", "DUT#2"}
        assert all(os.path.exists(p) for p in paths.values())
        loaded = load_campaign(directory)
        assert set(loaded) == {"DUT#1", "DUT#2"}
        np.testing.assert_allclose(loaded["DUT#1"].matrix, sets["DUT#1"].matrix)

    def test_hash_in_name_is_sanitised(self, rng, tmp_path):
        sets = {"DUT#1": TraceSet("DUT#1", rng.normal(size=(2, 4)))}
        paths = save_campaign(sets, str(tmp_path / "c"))
        assert "#" not in os.path.basename(paths["DUT#1"])

    def test_load_with_required_names(self, rng, tmp_path):
        sets = {"A": TraceSet("A", rng.normal(size=(2, 4)))}
        directory = str(tmp_path / "c")
        save_campaign(sets, directory)
        with pytest.raises(KeyError, match="missing devices"):
            load_campaign(directory, names=["A", "B"])

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_campaign(str(tmp_path / "nope"))

    def test_verification_works_on_reloaded_traces(self, tmp_path):
        # End-to-end: acquire, save, reload, verify.
        from repro.acquisition.bench import MeasurementBench
        from repro.acquisition.device import Device
        from repro.core.process import ProcessParameters
        from repro.core.verification import WatermarkVerifier
        from repro.experiments.designs import build_paper_ip
        from repro.power.models import PowerModel

        refd = Device("RefD", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        dut = Device("DUT", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        other = Device("DUT2", build_paper_ip("IP_C"), PowerModel(), default_cycles=256)
        bench = MeasurementBench(seed=0)
        params = ProcessParameters(k=20, m=8, n1=160, n2=1600)
        sets = {
            "RefD": bench.measure(refd, params.n1),
            "DUT": bench.measure(dut, params.n2),
            "DUT2": bench.measure(other, params.n2),
        }
        directory = str(tmp_path / "campaign")
        save_campaign(sets, directory)
        loaded = load_campaign(directory)
        verifier = WatermarkVerifier(params)
        report = verifier.identify(
            loaded["RefD"], {"DUT": loaded["DUT"], "DUT2": loaded["DUT2"]}, rng=1
        )
        assert report.verdict_of("lower-variance").chosen_dut == "DUT"


class TestCounterBuilders:
    # New netlist builders shipped with this extension round.
    def test_johnson_counter_netlist(self):
        from repro.fsm.counters import build_johnson_counter, johnson_counter_machine
        from repro.hdl.netlist import Netlist
        from repro.hdl.simulator import Simulator

        netlist = Netlist("johnson")
        build_johnson_counter(netlist, 4)
        sequence = Simulator(netlist).state_sequence("ctr_reg", 16)
        machine = johnson_counter_machine(4)
        expected = machine.run(17)[1:]
        assert sequence == expected

    def test_lfsr_netlist(self):
        from repro.fsm.counters import build_lfsr, lfsr_machine
        from repro.hdl.netlist import Netlist
        from repro.hdl.simulator import Simulator

        netlist = Netlist("lfsr")
        build_lfsr(netlist, 4, taps=[3, 2], seed=1)
        sequence = Simulator(netlist).state_sequence("ctr_reg", 15)
        machine = lfsr_machine(4, taps=[3, 2], seed=1)
        expected = machine.run(16)[1:]
        assert sequence == expected

    def test_lfsr_netlist_validation(self):
        from repro.fsm.counters import build_lfsr
        from repro.hdl.netlist import Netlist

        with pytest.raises(ValueError):
            build_lfsr(Netlist("x"), 4, taps=[3], seed=0)
        with pytest.raises(ValueError):
            build_lfsr(Netlist("y"), 4, taps=[9], seed=1)

    def test_johnson_single_bit_activity(self):
        from repro.fsm.counters import build_johnson_counter
        from repro.hdl.netlist import Netlist
        from repro.hdl.simulator import Simulator

        netlist = Netlist("johnson")
        build_johnson_counter(netlist, 8)
        trace = Simulator(netlist).run(16)
        series = trace.component_series("ctr_reg")
        assert set(series) == {1.0}


class TestCampaignManifest:
    def _sets(self, rng):
        return {
            "DUT#1": TraceSet("DUT#1", rng.normal(size=(4, 8))),
            "IP_A": TraceSet("IP_A", rng.normal(size=(6, 8))),
        }

    def test_metadata_round_trip(self, rng, tmp_path):
        from repro.acquisition.io import load_campaign_metadata

        directory = str(tmp_path / "campaign")
        metadata = {"sigma": 1.5, "operator": "bench-7", "n_cycles": 256}
        save_campaign(self._sets(rng), directory, metadata=metadata)
        assert load_campaign_metadata(directory) == metadata
        # Loading validates against the manifest and still succeeds.
        loaded = load_campaign(directory, names=["DUT#1", "IP_A"])
        assert list(loaded) == ["DUT#1", "IP_A"]

    def test_metadata_defaults_empty(self, rng, tmp_path):
        from repro.acquisition.io import load_campaign_metadata

        directory = str(tmp_path / "campaign")
        save_campaign(self._sets(rng), directory)
        assert load_campaign_metadata(directory) == {}
        # Directories without a manifest (pre-manifest campaigns) load too.
        bare = str(tmp_path / "bare")
        os.makedirs(bare)
        save_trace_set(self._sets(rng)["DUT#1"], os.path.join(bare, "d.npz"))
        assert load_campaign_metadata(bare) == {}
        assert list(load_campaign(bare)) == ["DUT#1"]

    def test_validation_catches_missing_device(self, rng, tmp_path):
        directory = str(tmp_path / "campaign")
        paths = save_campaign(self._sets(rng), directory)
        os.unlink(paths["IP_A"])
        with pytest.raises(ValueError, match="IP_A"):
            load_campaign(directory)

    def test_validation_catches_shape_mismatch(self, rng, tmp_path):
        directory = str(tmp_path / "campaign")
        paths = save_campaign(self._sets(rng), directory)
        save_trace_set(TraceSet("DUT#1", rng.normal(size=(2, 8))), paths["DUT#1"])
        with pytest.raises(ValueError, match="manifest declares shape"):
            load_campaign(directory)

    def test_load_campaign_names_none_is_valid(self, rng, tmp_path):
        # Regression: the annotation used to be a bare Iterable[str]
        # with a None default; None must remain a supported value.
        directory = str(tmp_path / "campaign")
        save_campaign(self._sets(rng), directory)
        assert len(load_campaign(directory, names=None)) == 2
        with pytest.raises(KeyError, match="missing devices"):
            load_campaign(directory, names=["DUT#9"])


class TestArrayBundles:
    def test_round_trip(self, rng, tmp_path):
        from repro.acquisition.io import load_array_bundle, save_array_bundle

        path = str(tmp_path / "bundle.npz")
        arrays = {"C/IP_A/DUT#1": rng.normal(size=5), "counts": np.arange(3)}
        save_array_bundle(path, arrays, metadata={"scenario": "x"})
        loaded, metadata = load_array_bundle(path)
        assert metadata == {"scenario": "x"}
        assert set(loaded) == set(arrays)
        for name in arrays:
            np.testing.assert_array_equal(loaded[name], arrays[name])

    def test_bytes_are_deterministic(self, rng, tmp_path):
        from repro.acquisition.io import save_array_bundle

        arrays = {"b": rng.normal(size=7), "a": np.ones((2, 2))}
        first = str(tmp_path / "first.npz")
        second = str(tmp_path / "second.npz")
        save_array_bundle(first, arrays, metadata={"k": 1})
        save_array_bundle(second, dict(reversed(arrays.items())), metadata={"k": 1})
        with open(first, "rb") as f1, open(second, "rb") as f2:
            assert f1.read() == f2.read()

    def test_reserved_name_rejected(self, tmp_path):
        from repro.acquisition.io import save_array_bundle

        with pytest.raises(ValueError, match="reserved"):
            save_array_bundle(
                str(tmp_path / "x.npz"), {"__bundle_metadata__": np.ones(1)}
            )

    def test_aliased_save_keys_still_load(self, rng, tmp_path):
        # The manifest must describe archive-internal device names, so
        # campaigns saved under aliased dict keys stay loadable.
        directory = str(tmp_path / "campaign")
        save_campaign(
            {"alias": TraceSet("DUT#1", rng.normal(size=(4, 8)))}, directory
        )
        loaded = load_campaign(directory)
        assert list(loaded) == ["DUT#1"]

    def test_duplicate_device_names_rejected_at_save(self, rng, tmp_path):
        sets = {
            "run_a": TraceSet("DUT#1", rng.normal(size=(4, 8))),
            "run_b": TraceSet("DUT#1", rng.normal(size=(6, 8))),
        }
        with pytest.raises(ValueError, match="one trace set per device"):
            save_campaign(sets, str(tmp_path / "campaign"))
