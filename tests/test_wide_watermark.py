"""Tests for the 16-bit (two-stage) leakage component extension."""

import pytest

from repro.core.correlation import pearson
from repro.acquisition.device import Device
from repro.fsm.counters import build_binary_counter
from repro.fsm.watermark import (
    WatermarkKeyError,
    WatermarkedIP,
    attach_wide_leakage_component,
    wide_leakage_sequence,
)
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator
from repro.power.models import PowerModel


def wide_ip(kw=0xBEEF):
    netlist = Netlist("wide")
    register = build_binary_counter(netlist, 8)
    h_register = attach_wide_leakage_component(
        netlist, netlist.wires["ctr_state"], kw
    )
    netlist.validate()
    return WatermarkedIP(
        name="wide",
        netlist=netlist,
        state_register=register,
        kw=kw,
        fsm_kind="binary",
        h_register=h_register,
    )


class TestConstruction:
    def test_two_sbox_stages(self):
        ip = wide_ip()
        names = {c.name for c in ip.netlist.components}
        assert "wm_sbox1" in names
        assert "wm_sbox2" in names

    def test_rejects_oversized_key(self):
        netlist = Netlist("x")
        build_binary_counter(netlist, 8)
        with pytest.raises(WatermarkKeyError):
            attach_wide_leakage_component(
                netlist, netlist.wires["ctr_state"], 1 << 16
            )

    def test_rejects_non_8bit_state(self):
        netlist = Netlist("x")
        build_binary_counter(netlist, 12)
        with pytest.raises(WatermarkKeyError, match="8-bit"):
            attach_wide_leakage_component(netlist, netlist.wires["ctr_state"], 1)

    def test_does_not_disturb_the_fsm(self):
        ip = wide_ip()
        sequence = Simulator(ip.netlist).state_sequence("ctr_reg", 300)
        assert sequence == [(i + 1) % 256 for i in range(300)]


class TestBehaviour:
    def test_matches_software_model(self):
        kw = 0x1234
        ip = wide_ip(kw)
        hardware = Simulator(ip.netlist).state_sequence("wm_hreg", 32)
        software = wide_leakage_sequence(range(32), kw)
        assert hardware == software

    def test_software_model_validation(self):
        with pytest.raises(WatermarkKeyError):
            wide_leakage_sequence([0], kw=1 << 16)

    def test_different_halves_change_sequence(self):
        base = wide_leakage_sequence(range(64), 0x1234)
        lo_changed = wide_leakage_sequence(range(64), 0x1235)
        hi_changed = wide_leakage_sequence(range(64), 0x1334)
        assert base != lo_changed
        assert base != hi_changed

    def test_low_byte_equal_to_narrow_key_composed(self):
        from repro.crypto.sbox import SBOX

        kw = 0x005A  # hi = 0: second stage is SBox with zero key
        values = wide_leakage_sequence(range(16), kw)
        assert values == [SBOX[SBOX[c ^ 0x5A]] for c in range(16)]


class TestVerificationSeparation:
    def test_wide_keys_separate_devices(self):
        matching_a = Device("a", wide_ip(0xBEEF), PowerModel(), default_cycles=256)
        matching_b = Device("b", wide_ip(0xBEEF), PowerModel(), default_cycles=256)
        other = Device("c", wide_ip(0xCAFE), PowerModel(), default_cycles=256)
        rho_match = pearson(
            matching_a.deterministic_waveform(), matching_b.deterministic_waveform()
        )
        rho_other = pearson(
            matching_a.deterministic_waveform(), other.deterministic_waveform()
        )
        assert rho_match == pytest.approx(1.0)
        assert rho_other < rho_match

    def test_template_search_space_squared(self):
        # The narrow component's 256-template attack no longer applies:
        # the H switching under a wide key matches none of the 256
        # narrow-key predictions perfectly.
        from repro.attacks.forgery import predicted_h_switching
        import numpy as np
        from repro.hdl.wires import hamming_distance

        wide_values = wide_leakage_sequence(range(256), 0xBEEF)
        wide_switching = np.array(
            [0]
            + [
                hamming_distance(a, b)
                for a, b in zip(wide_values, wide_values[1:])
            ],
            dtype=float,
        )
        best = 0.0
        for kw in range(256):
            narrow = predicted_h_switching(list(range(256)), kw)
            a = narrow - narrow.mean()
            b = wide_switching - wide_switching.mean()
            denom = np.sqrt(np.sum(a * a) * np.sum(b * b))
            if denom > 0:
                best = max(best, abs(float(np.sum(a * b) / denom)))
        assert best < 0.6
