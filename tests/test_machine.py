"""Tests for the generic FSM models."""

import pytest

from repro.fsm.machine import FSMDefinitionError, MealyMachine, MooreMachine


def three_cycle():
    return MooreMachine(
        states=["a", "b", "c"],
        transitions={"a": "b", "b": "c", "c": "a"},
        initial_state="a",
        outputs={"a": 0, "b": 1, "c": 2},
    )


class TestMooreMachine:
    def test_run_from_initial(self):
        machine = three_cycle()
        assert machine.run(5) == ["a", "b", "c", "a", "b"]

    def test_run_from_custom_start(self):
        machine = three_cycle()
        assert machine.run(3, initial_state="b") == ["b", "c", "a"]

    def test_outputs(self):
        machine = three_cycle()
        assert machine.output("b") == 1

    def test_default_output_is_zero(self):
        machine = MooreMachine(["x"], {"x": "x"}, "x")
        assert machine.output("x") == 0

    def test_successor(self):
        assert three_cycle().successor("c") == "a"

    def test_n_states(self):
        assert three_cycle().n_states == 3

    def test_rejects_empty_states(self):
        with pytest.raises(FSMDefinitionError):
            MooreMachine([], {}, "a")

    def test_rejects_duplicate_states(self):
        with pytest.raises(FSMDefinitionError):
            MooreMachine(["a", "a"], {"a": "a"}, "a")

    def test_rejects_missing_transition(self):
        with pytest.raises(FSMDefinitionError, match="without outgoing"):
            MooreMachine(["a", "b"], {"a": "b"}, "a")

    def test_rejects_unknown_transition_target(self):
        with pytest.raises(FSMDefinitionError):
            MooreMachine(["a"], {"a": "z"}, "a")

    def test_rejects_unknown_transition_source(self):
        with pytest.raises(FSMDefinitionError):
            MooreMachine(["a"], {"a": "a", "z": "a"}, "a")

    def test_rejects_unknown_initial(self):
        with pytest.raises(FSMDefinitionError):
            MooreMachine(["a"], {"a": "a"}, "z")

    def test_rejects_nonpositive_steps(self):
        with pytest.raises(ValueError):
            three_cycle().run(0)

    def test_rejects_unknown_start_state(self):
        with pytest.raises(FSMDefinitionError):
            three_cycle().run(2, initial_state="zzz")


def toggle_mealy():
    return MealyMachine(
        states=["off", "on"],
        alphabet=[0, 1],
        transition=lambda s, x: ("on" if s == "off" else "off") if x == 1 else s,
        output=lambda s, x: 1 if s == "on" else 0,
        initial_state="off",
    )


class TestMealyMachine:
    def test_step(self):
        machine = toggle_mealy()
        next_state, output = machine.step("off", 1)
        assert next_state == "on"
        assert output == 0

    def test_run_collects_outputs(self):
        machine = toggle_mealy()
        states, outputs = machine.run([1, 0, 1])
        assert states == ["off", "on", "on", "off"]
        assert outputs == [0, 1, 1]

    def test_rejects_unknown_symbol(self):
        with pytest.raises(ValueError):
            toggle_mealy().step("off", 7)

    def test_rejects_empty_alphabet(self):
        with pytest.raises(FSMDefinitionError):
            MealyMachine(["a"], [], lambda s, x: s, lambda s, x: 0, "a")

    def test_rejects_transition_leaving_state_space(self):
        machine = MealyMachine(
            ["a"], [0], lambda s, x: "zzz", lambda s, x: 0, "a"
        )
        with pytest.raises(FSMDefinitionError):
            machine.step("a", 0)

    def test_as_autonomous_freezes_input(self):
        machine = toggle_mealy()
        autonomous = machine.as_autonomous(1)
        assert autonomous.run(4) == ["off", "on", "off", "on"]

    def test_as_autonomous_with_holding_input(self):
        machine = toggle_mealy()
        autonomous = machine.as_autonomous(0)
        assert autonomous.run(3) == ["off", "off", "off"]
