"""Cross-cutting invariants of the whole verification pipeline.

These properties tie together the claims the individual modules make:
the paper's process-variation insensitivity is, at bottom, a set of
invariances of the correlation computation process, checked here at
the TraceSet level (not just on single traces).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.acquisition.alignment import align_traces
from repro.acquisition.traces import TraceSet
from repro.core.process import CorrelationProcess, ProcessParameters
from repro.core.verification import WatermarkVerifier

PARAMS = ProcessParameters(k=10, m=8, n1=60, n2=500)


def make_sets(seed=0, l=96):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 7 * np.pi, l)
    signal = np.sin(t) + 0.5 * np.sin(2.7 * t)
    t_ref = TraceSet("ref", signal + rng.normal(0, 1, size=(60, l)))
    t_dut = TraceSet("dut", signal + rng.normal(0, 1, size=(500, l)))
    return t_ref, t_dut


class TestGainOffsetInvariance:
    """The theorem behind the paper's process-variation claim."""

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_c_set_invariant_under_dut_gain_offset(self, gain, offset):
        t_ref, t_dut = make_sets()
        scaled = TraceSet("dut", gain * t_dut.matrix + offset)
        process = CorrelationProcess(PARAMS, strict=False)
        original = process.run(t_ref, t_dut, np.random.default_rng(1))
        transformed = process.run(t_ref, scaled, np.random.default_rng(1))
        np.testing.assert_allclose(
            original.coefficients, transformed.coefficients, atol=1e-9
        )

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_c_set_invariant_under_ref_gain(self, gain):
        t_ref, t_dut = make_sets()
        scaled = TraceSet("ref", gain * t_ref.matrix)
        process = CorrelationProcess(PARAMS, strict=False)
        original = process.run(t_ref, t_dut, np.random.default_rng(2))
        transformed = process.run(scaled, t_dut, np.random.default_rng(2))
        np.testing.assert_allclose(
            original.coefficients, transformed.coefficients, atol=1e-9
        )

    def test_negative_gain_flips_every_coefficient(self):
        t_ref, t_dut = make_sets()
        flipped = TraceSet("dut", -t_dut.matrix)
        process = CorrelationProcess(PARAMS, strict=False)
        original = process.run(t_ref, t_dut, np.random.default_rng(3))
        mirrored = process.run(t_ref, flipped, np.random.default_rng(3))
        np.testing.assert_allclose(
            original.coefficients, -mirrored.coefficients, atol=1e-9
        )


class TestStructuralInvariants:
    def test_trace_order_does_not_change_statistics_much(self):
        # Permuting the DUT pool relabels which traces each random
        # selection picks; the C-set *statistics* stay in the same
        # place even though individual coefficients move.
        t_ref, t_dut = make_sets(seed=4)
        rng = np.random.default_rng(5)
        permuted = TraceSet("dut", t_dut.matrix[rng.permutation(t_dut.n_traces)])
        process = CorrelationProcess(PARAMS, strict=False)
        a = process.run(t_ref, t_dut, np.random.default_rng(6))
        b = process.run(t_ref, permuted, np.random.default_rng(7))
        assert a.mean == pytest.approx(b.mean, abs=0.03)

    def test_alignment_is_idempotent_on_aligned_data(self):
        _t_ref, t_dut = make_sets(seed=8)
        once, shifts_once = align_traces(t_dut, max_shift=4)
        twice, shifts_twice = align_traces(once, max_shift=4)
        # Second pass finds (almost) nothing left to fix.
        assert np.mean(shifts_twice == 0) > 0.9

    def test_verifier_is_deterministic_given_seed_at_api_level(self):
        t_ref, t_dut = make_sets(seed=9)
        verifier = WatermarkVerifier(PARAMS, strict=False)
        r1 = verifier.identify(t_ref, {"a": t_dut, "b": t_dut}, rng=11)
        r2 = verifier.identify(t_ref, {"a": t_dut, "b": t_dut}, rng=11)
        assert r1.means == r2.means
        assert r1.variances == r2.variances

    def test_identical_duts_tie_on_scores_with_shared_rng_stream(self):
        # Two DUT entries backed by the same trace pool produce
        # different random selections (the stream advances), but their
        # statistics must agree closely — a regression guard on
        # accidental reference re-draws between DUTs.
        t_ref, t_dut = make_sets(seed=10)
        verifier = WatermarkVerifier(PARAMS, strict=False)
        report = verifier.identify(t_ref, {"a": t_dut, "b": t_dut}, rng=12)
        assert report.means["a"] == pytest.approx(report.means["b"], abs=0.05)
