"""Tests for the scenario-sweep subsystem (spec, store, executor,
aggregation) and the engine plumbing it rides on."""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.experiments.runner import CampaignConfig, apply_config_overrides
from repro.sweeps import (
    ATTACKS,
    SCHEMA_VERSION,
    GridAxis,
    RandomAxis,
    SpecValidationError,
    SweepOptions,
    SweepSpec,
    SweepStore,
    expand_scenarios,
    render_status,
    run,
    run_sweep,
    scenario_config,
    spec_from_dict,
    spec_to_dict,
    sweep_status,
)
from repro.sweeps.aggregate import (
    accuracy_pivot,
    render_sweep_summary,
    roc_by_axis,
    tidy_accuracy,
)
from repro.sweeps.executor import SweepReport

#: Cheap correlation parameters shared by the executor tests: a full
#: campaign at this point takes a few tens of milliseconds.
QUICK = {
    "parameters.k": 4,
    "parameters.m": 4,
    "parameters.n1": 32,
    "parameters.n2": 64,
}


def quick_spec(name="quick", sigmas=(0.5, 1.0), attacks=("none",), seed=5):
    return SweepSpec(
        name=name,
        grid=(
            GridAxis("noise.sigma", tuple(sigmas)),
            GridAxis("attack", tuple(attacks)),
        ),
        base=dict(QUICK),
        seed=seed,
    )


def store_digests(root):
    # Byte-identity is defined over the top-level result files only:
    # operational metadata (.leases/, .attempts/, failed/) is excluded.
    digests = {}
    for entry in sorted(os.listdir(root)):
        path = os.path.join(root, entry)
        if entry.startswith(".") or not os.path.isfile(path):
            continue
        with open(path, "rb") as handle:
            digests[entry] = hashlib.sha256(handle.read()).hexdigest()
    return digests


class TestSweepSpec:
    def test_grid_expansion_count_and_order(self):
        spec = SweepSpec(
            name="s",
            grid=(
                GridAxis("noise.sigma", (0.5, 1.0, 1.5)),
                GridAxis("watermarked", (True, False)),
            ),
        )
        assert spec.n_scenarios == 6
        scenarios = expand_scenarios(spec)
        assert len(scenarios) == 6
        # Rightmost axis fastest.
        assert [s.assignment["noise.sigma"] for s in scenarios[:2]] == [0.5, 0.5]
        assert [s.assignment["watermarked"] for s in scenarios[:2]] == [True, False]

    def test_unknown_field_rejected_at_construction(self):
        with pytest.raises(KeyError, match="unknown sweep field"):
            GridAxis("noise.sigmaa", (1.0,))
        with pytest.raises(KeyError, match="unknown sweep field"):
            SweepSpec(name="s", base={"nope": 1})

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="no values"):
            GridAxis("noise.sigma", ())
        with pytest.raises(ValueError, match="duplicate"):
            GridAxis("noise.sigma", (1.0, 1.0))
        with pytest.raises(ValueError, match="swept twice"):
            SweepSpec(
                name="s",
                grid=(
                    GridAxis("noise.sigma", (1.0,)),
                    GridAxis("noise.sigma", (2.0,)),
                ),
            )
        with pytest.raises(ValueError, match="n_random"):
            SweepSpec(name="s", random=(RandomAxis("noise.sigma", 0.1, 2.0),))

    def test_scenario_ids_unique_and_reproducible(self):
        spec = quick_spec(sigmas=(0.5, 1.0, 1.5), attacks=("none", "strip"))
        first = [s.scenario_id for s in expand_scenarios(spec)]
        second = [s.scenario_id for s in expand_scenarios(quick_spec(
            sigmas=(0.5, 1.0, 1.5), attacks=("none", "strip")))]
        assert first == second
        assert len(set(first)) == len(first)

    def test_derived_seeds_depend_on_spec_seed_not_name(self):
        base = expand_scenarios(quick_spec(seed=5))[0]
        renamed = expand_scenarios(quick_spec(name="other", seed=5))[0]
        reseeded = expand_scenarios(quick_spec(seed=6))[0]
        assert base.overrides == renamed.overrides
        assert base.overrides["measurement_seed"] != reseeded.overrides[
            "measurement_seed"
        ]

    def test_explicit_seed_not_overwritten(self):
        spec = SweepSpec(
            name="s",
            grid=(GridAxis("noise.sigma", (1.0,)),),
            base={"measurement_seed": 123},
        )
        scenario = expand_scenarios(spec)[0]
        assert scenario.overrides["measurement_seed"] == 123

    def test_random_axes_deterministic_per_seed(self):
        def draws(seed):
            spec = SweepSpec(
                name="r",
                random=(RandomAxis("noise.sigma", 0.2, 2.0, log=True),),
                n_random=5,
                seed=seed,
            )
            return [s.assignment["noise.sigma"] for s in expand_scenarios(spec)]

        assert draws(1) == draws(1)
        assert draws(1) != draws(2)
        assert all(0.2 <= v <= 2.0 for v in draws(1))

    def test_random_integer_axis(self):
        spec = SweepSpec(
            name="r",
            random=(RandomAxis("parameters.n2", 200, 2000, integer=True),),
            n_random=4,
            base={"parameters.k": 4, "parameters.m": 4, "parameters.n1": 32},
            seed=3,
        )
        values = [s.assignment["parameters.n2"] for s in expand_scenarios(spec)]
        assert all(isinstance(v, int) for v in values)

    def test_scenario_config_applies_overrides(self):
        spec = SweepSpec(
            name="s",
            grid=(GridAxis("noise.sigma", (1.7,)), GridAxis("attack", ("strip",))),
            base={"parameters.n2": 2000, "engine": "interpreted"},
        )
        scenario = expand_scenarios(spec)[0]
        config = scenario_config(scenario)
        assert config.noise.sigma == 1.7
        assert config.parameters.n2 == 2000
        assert config.engine == "interpreted"
        assert scenario.attack == "strip"

    def test_spec_dict_round_trip(self):
        spec = SweepSpec(
            name="rt",
            grid=(GridAxis("noise.sigma", (0.5, 1.5)),),
            random=(RandomAxis("variation.component_sigma", 0.01, 0.1),),
            n_random=3,
            base={"watermarked": False},
            seed=11,
        )
        clone = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert clone == spec
        assert [s.scenario_id for s in expand_scenarios(clone)] == [
            s.scenario_id for s in expand_scenarios(spec)
        ]


class TestSpecWireFormat:
    """The versioned JSON wire format the sweep service speaks."""

    def full_spec(self):
        return SweepSpec(
            name="wire",
            grid=(
                GridAxis("noise.sigma", (0.5, 1.5)),
                GridAxis("attack", ("none", "strip")),
            ),
            random=(
                RandomAxis("variation.component_sigma", 0.01, 0.1, log=True),
                RandomAxis("parameters.n2", 64, 256, integer=True),
            ),
            n_random=3,
            base={"watermarked": False, "parameters.k": 4},
            seed=11,
        )

    def test_round_trip_is_lossless(self):
        spec = self.full_spec()
        payload = spec.to_json_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        wire = json.dumps(payload)  # must actually survive JSON text
        clone = SweepSpec.from_json_dict(json.loads(wire))
        assert clone == spec
        assert [s.scenario_id for s in expand_scenarios(clone)] == [
            s.scenario_id for s in expand_scenarios(spec)
        ]

    def test_defaults_omitted_fields_round_trip(self):
        spec = SweepSpec(name="d", grid=(GridAxis("attack", ("none",)),))
        assert SweepSpec.from_json_dict(spec.to_json_dict()) == spec

    @pytest.mark.parametrize(
        "mutate, path",
        [
            (lambda p: p.pop("schema_version"), "schema_version"),
            (lambda p: p.update(schema_version=99), "schema_version"),
            (lambda p: p.update(extra=1), "extra"),
            (lambda p: p.update(name=7), "name"),
            (lambda p: p.update(seed="x"), "seed"),
            (lambda p: p.update(n_random=True), "n_random"),
            (lambda p: p["grid"][0].update(field="bogus"), "grid[0].field"),
            (lambda p: p["grid"][0].update(values="ha"), "grid[0].values"),
            (lambda p: p["grid"][0].pop("field"), "grid[0].field"),
            (lambda p: p["random"][0].update(low="x"), "random[0].low"),
            (
                lambda p: p["random"][0].update(unexpected=1),
                "random[0].unexpected",
            ),
            (lambda p: p.update(base={"bogus": 1}), "base.bogus"),
            (
                lambda p: p.update(base={"noise.sigma": [1]}),
                "base.noise.sigma",
            ),
            (lambda p: p.update(grid="no"), "grid"),
        ],
    )
    def test_validation_errors_name_offending_path(self, mutate, path):
        payload = self.full_spec().to_json_dict()
        mutate(payload)
        with pytest.raises(SpecValidationError) as excinfo:
            SweepSpec.from_json_dict(payload)
        assert excinfo.value.path == path
        assert str(excinfo.value).startswith(path + ":")

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(SpecValidationError) as excinfo:
            SweepSpec.from_json_dict(["not", "a", "dict"])
        assert excinfo.value.path == "$"


class TestConfigOverrides:
    def test_nested_and_top_level(self):
        config = apply_config_overrides(
            CampaignConfig(),
            {"noise.sigma": 0.3, "watermarked": False, "adc.bits": 8},
        )
        assert config.noise.sigma == 0.3
        assert config.watermarked is False
        assert config.adc.bits == 8

    def test_nullable_nested_field(self):
        config = apply_config_overrides(
            CampaignConfig(), {"adc": None, "variation": None}
        )
        assert config.adc is None and config.variation is None

    def test_unknown_paths_raise(self):
        with pytest.raises(KeyError):
            apply_config_overrides(CampaignConfig(), {"noise.sugma": 1.0})
        with pytest.raises(KeyError):
            apply_config_overrides(CampaignConfig(), {"watermarked.x": 1})
        with pytest.raises(KeyError):
            apply_config_overrides(CampaignConfig(), {"noise.sigma.deep": 1})

    def test_conflicting_whole_and_sub_override(self):
        with pytest.raises(KeyError, match="cannot override both"):
            apply_config_overrides(
                CampaignConfig(), {"adc": None, "adc.bits": 8}
            )


class TestSweepStore:
    def test_round_trip(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        record = {"scenario_id": "abc", "metrics": {"accuracy": {"x": 1.0}}}
        arrays = {"C/IP_A/DUT#1": np.arange(4.0)}
        assert not store.has("abc")
        store.put("abc", record, arrays)
        assert store.has("abc") and "abc" in store
        assert store.get("abc") == record
        np.testing.assert_array_equal(
            store.get_arrays("abc")["C/IP_A/DUT#1"], np.arange(4.0)
        )
        assert store.ids() == ["abc"]
        assert len(store) == 1

    def test_no_temp_residue_and_deterministic_bytes(self, tmp_path):
        a, b = SweepStore(str(tmp_path / "a")), SweepStore(str(tmp_path / "b"))
        record = {"scenario_id": "abc", "value": 1.25}
        arrays = {"x": np.ones(3)}
        a.put("abc", record, arrays)
        b.put("abc", record, arrays)
        assert store_digests(a.root) == store_digests(b.root)
        assert not [f for f in os.listdir(a.root) if f.startswith(".tmp-")]


class TestRunSweep:
    def test_executes_then_resumes(self, tmp_path):
        spec = quick_spec()
        store = SweepStore(str(tmp_path / "store"))
        report = run_sweep(spec, store, n_workers=1)
        assert isinstance(report, SweepReport)
        assert report.n_scenarios == 2
        assert report.n_executed == 2 and report.n_cached == 0
        again = run_sweep(spec, store, n_workers=1)
        assert again.n_executed == 0 and again.n_cached == 2

    def test_interrupted_sweep_reruns_only_missing(self, tmp_path):
        spec = quick_spec(sigmas=(0.5, 1.0, 1.5))
        store = SweepStore(str(tmp_path / "store"))
        run_sweep(spec, store, n_workers=1)
        before = store_digests(store.root)
        # Simulate a kill mid-sweep: one scenario's result never landed.
        victim = expand_scenarios(spec)[1].scenario_id
        os.unlink(store.record_path(victim))
        os.unlink(store.arrays_path(victim))
        report = run_sweep(spec, store, n_workers=1)
        assert report.executed_ids == [victim]
        assert report.n_cached == 2
        # The re-executed scenario reproduces its exact bytes.
        assert store_digests(store.root) == before

    def test_extending_a_sweep_reuses_overlap(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        run_sweep(quick_spec(sigmas=(0.5, 1.0)), store, n_workers=1)
        extended = quick_spec(sigmas=(0.5, 1.0, 1.5, 2.0))
        report = run_sweep(extended, store, n_workers=1)
        assert report.n_cached == 2 and report.n_executed == 2

    def test_failure_quarantines_and_continues(self, tmp_path):
        # n1 = 2 < k = 4 violates expression (1) at campaign time, so
        # that scenario can never succeed; it must be quarantined while
        # every sibling completes and the sweep returns normally.
        from repro.sweeps import FailureLog, RetryPolicy

        spec = SweepSpec(
            name="fail",
            grid=(GridAxis("parameters.n1", (32, 2, 48)),),
            base={k: v for k, v in QUICK.items() if k != "parameters.n1"},
        )
        store = SweepStore(str(tmp_path / "store"))
        report = run_sweep(
            spec,
            store,
            n_workers=1,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        bad = expand_scenarios(spec)[1].scenario_id
        assert report.failed_ids == [bad]
        assert len(store) == 2
        good_ids = {
            s.scenario_id for s in expand_scenarios(spec)
            if s.scenario_id != bad
        }
        assert set(store.ids()) == good_ids
        quarantine = FailureLog(store.root).load_quarantine(bad)
        assert quarantine["attempts"] == 2
        assert quarantine["error"]["type"]

    def test_progress_callback(self, tmp_path):
        spec = quick_spec()
        store = SweepStore(str(tmp_path / "store"))
        seen = []
        run_sweep(spec, store, progress=lambda sid, ran: seen.append((sid, ran)))
        assert sorted(sid for sid, ran in seen if ran) == sorted(store.ids())
        seen.clear()
        run_sweep(spec, store, progress=lambda sid, ran: seen.append((sid, ran)))
        assert all(not ran for _, ran in seen) and len(seen) == 2

    def test_rejects_bad_worker_count(self, tmp_path):
        with pytest.raises(ValueError):
            run_sweep(quick_spec(), SweepStore(str(tmp_path)), n_workers=0)


class TestWorkerDeterminism:
    def test_four_workers_bit_identical_to_one(self, tmp_path):
        spec = quick_spec(sigmas=(0.4, 0.8, 1.2, 1.6), attacks=("none", "strip"))
        serial = SweepStore(str(tmp_path / "serial"))
        pooled = SweepStore(str(tmp_path / "pooled"))
        report1 = run_sweep(spec, serial, n_workers=1)
        report4 = run_sweep(spec, pooled, n_workers=4)
        assert report1.n_executed == report4.n_executed == 8
        assert report1.executed_ids == report4.executed_ids
        assert store_digests(serial.root) == store_digests(pooled.root)


class TestAttacks:
    def test_attack_names(self):
        assert set(ATTACKS) == {"none", "strip", "strip_pads"}

    def test_unknown_attack_fails_fast(self):
        from repro.sweeps.scenario import apply_attack

        with pytest.raises(KeyError, match="unknown attack"):
            apply_attack({}, "melt")

    def test_strip_attack_defeats_identification(self, tmp_path):
        # At low noise the genuine fleet identifies perfectly; a fully
        # stripped DUT fleet must not (the keyed signature is gone).
        store = SweepStore(str(tmp_path / "store"))
        spec = quick_spec(sigmas=(0.25,), attacks=("none", "strip"))
        run_sweep(spec, store, n_workers=1)
        rows = tidy_accuracy(store, expand_scenarios(spec))
        by_attack = {
            row["attack"]: row["accuracy"]
            for row in rows
            if row["distinguisher"] == "higher-mean"
        }
        assert by_attack["none"] == 1.0
        assert by_attack["strip"] < 1.0


class TestAggregation:
    @pytest.fixture(scope="class")
    def populated(self, tmp_path_factory):
        spec = quick_spec(sigmas=(0.5, 1.0), attacks=("none", "strip"), seed=9)
        store = SweepStore(str(tmp_path_factory.mktemp("agg")))
        run_sweep(spec, store, n_workers=1)
        return spec, store

    def test_tidy_rows_carry_axes(self, populated):
        spec, store = populated
        rows = tidy_accuracy(store, expand_scenarios(spec))
        assert len(rows) == 4 * 2  # scenarios x distinguishers
        for row in rows:
            assert {"scenario_id", "noise.sigma", "attack", "distinguisher",
                    "accuracy", "mean_confidence"} <= set(row)
            assert 0.0 <= row["accuracy"] <= 1.0

    def test_restriction_to_scenarios(self, populated):
        spec, store = populated
        subset = expand_scenarios(quick_spec(sigmas=(0.5,), attacks=("none",),
                                             seed=9))
        rows = tidy_accuracy(store, subset)
        assert len(rows) == 2

    def test_accuracy_pivot_renders(self, populated):
        spec, store = populated
        rows = tidy_accuracy(store, expand_scenarios(spec))
        table = accuracy_pivot(rows, "noise.sigma", "attack")
        assert "noise.sigma" in table and "strip" in table

    def test_roc_by_axis(self, populated):
        spec, store = populated
        rows = roc_by_axis(store, "noise.sigma", expand_scenarios(spec))
        assert [row["noise.sigma"] for row in rows] == [0.5, 1.0]
        for row in rows:
            assert 0.0 <= row["auc"] <= 1.0
            assert row["n_genuine"] == 8 and row["n_counterfeit"] == 24

    def test_summary_renders(self, populated):
        spec, store = populated
        text = render_sweep_summary(store, expand_scenarios(spec))
        assert "accuracy[lower-variance]" in text and "screening AUC" in text

    def test_empty_summary(self, tmp_path):
        store = SweepStore(str(tmp_path / "empty"))
        assert "no results" in render_sweep_summary(store)


class TestEnginePlumbing:
    def test_engine_reaches_devices(self):
        from repro.experiments.runner import manufacture_fleet

        refds, duts = manufacture_fleet(CampaignConfig(engine="interpreted"))
        assert all(d.engine == "interpreted" for d in refds.values())
        assert all(d.engine == "interpreted" for d in duts.values())

    def test_engines_agree_on_a_scenario(self, tmp_path):
        # The engine axis must not change results: the compiled engine
        # is bit-identical to the oracle, so every stored byte except
        # the engine override itself matches.
        from repro.sweeps.scenario import run_scenario

        def result(engine):
            spec = SweepSpec(
                name="e",
                grid=(GridAxis("noise.sigma", (0.5,)),),
                base=dict(QUICK, engine=engine),
            )
            payload = run_scenario(expand_scenarios(spec)[0])
            return payload["record"]["metrics"], payload["arrays"]

        compiled_metrics, compiled_arrays = result("compiled")
        interpreted_metrics, interpreted_arrays = result("interpreted")
        assert compiled_metrics == interpreted_metrics
        for key in compiled_arrays:
            np.testing.assert_array_equal(
                compiled_arrays[key], interpreted_arrays[key]
            )


class TestRocOrdering:
    def test_numeric_axis_values_sort_numerically(self, tmp_path):
        spec = SweepSpec(
            name="order",
            grid=(GridAxis("parameters.n2", (1024, 256, 512)),),
            base={k: v for k, v in QUICK.items() if k != "parameters.n2"},
        )
        store = SweepStore(str(tmp_path / "store"))
        run_sweep(spec, store, n_workers=1)
        rows = roc_by_axis(store, "parameters.n2", expand_scenarios(spec))
        assert [row["parameters.n2"] for row in rows] == [256, 512, 1024]


class TestUnifiedFacade:
    """``repro.sweeps.run`` and the deprecated aliases behind it."""

    def test_facade_and_aliases_byte_identical(self, tmp_path):
        from repro.sweeps import SchedulerOptions, run_scheduled_sweep

        spec = quick_spec(name="facade", attacks=("none", "strip"))
        facade = SweepStore(str(tmp_path / "facade"))
        run(spec, facade, SweepOptions(n_workers=1))

        alias = SweepStore(str(tmp_path / "alias"))
        with pytest.deprecated_call():
            run_sweep(spec, alias, n_workers=2)

        scheduled = SweepStore(str(tmp_path / "scheduled"))
        with pytest.deprecated_call():
            run_scheduled_sweep(
                spec,
                scheduled,
                options=SchedulerOptions(poll_interval=0.01),
            )

        reference = store_digests(facade.root)
        assert store_digests(alias.root) == reference
        assert store_digests(scheduled.root) == reference

    def test_scheduler_option_routes_to_lease_scheduler(self, tmp_path):
        from repro.sweeps import SchedulerOptions

        spec = quick_spec(name="routed", sigmas=(0.5,))
        store = SweepStore(str(tmp_path / "store"))
        run(
            spec,
            store,
            SweepOptions(scheduler=SchedulerOptions(poll_interval=0.01)),
        )
        # The lease scheduler (and only it) records attempt history.
        assert os.path.isdir(os.path.join(store.root, ".attempts"))
        assert len(store) == 1

    def test_default_options_run(self, tmp_path):
        spec = quick_spec(name="defaults", sigmas=(0.5,))
        store = SweepStore(str(tmp_path / "store"))
        report = run(spec, store)  # options default to SweepOptions()
        assert report.n_executed == 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepOptions(n_workers=0)


class TestSweepStatus:
    def test_counts_and_rendering(self, tmp_path):
        spec = quick_spec(name="status", attacks=("none", "strip"))
        scenario_ids = [s.scenario_id for s in expand_scenarios(spec)]
        store = SweepStore(str(tmp_path / "store"))

        empty = sweep_status(store.root, scenario_ids=scenario_ids)
        assert empty.completed == 0 and empty.pending == len(scenario_ids)
        assert not empty.done

        run(spec, store)
        status = sweep_status(store.root, scenario_ids=scenario_ids)
        assert status.completed == len(scenario_ids)
        assert status.pending == 0 and status.done
        assert status.quarantined == 0 and status.leased == 0
        text = render_status(status)
        assert text.startswith(f"completed {len(scenario_ids)}/")
        assert "pending 0" in text and "quarantined 0" in text
        payload = json.loads(json.dumps(status.to_json_dict()))
        assert payload["completed"] == len(scenario_ids)

    def test_unscoped_status_covers_whole_store(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        run(quick_spec(name="all", sigmas=(0.5,)), store)
        status = sweep_status(store.root)
        assert status.completed == 1
        assert status.total is None and status.pending is None

    def test_snapshot_does_not_create_metadata_dirs(self, tmp_path):
        store = SweepStore(str(tmp_path / "store"))
        sweep_status(store.root)
        assert not os.path.exists(os.path.join(store.root, ".leases"))
        assert not os.path.exists(os.path.join(store.root, ".attempts"))

    def test_quarantine_counted(self, tmp_path):
        from repro.sweeps import RetryPolicy

        spec = SweepSpec(
            name="qstat",
            grid=(GridAxis("parameters.n1", (32, 2)),),
            base={k: v for k, v in QUICK.items() if k != "parameters.n1"},
        )
        scenario_ids = [s.scenario_id for s in expand_scenarios(spec)]
        store = SweepStore(str(tmp_path / "store"))
        run(
            spec,
            store,
            SweepOptions(
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0)
            ),
        )
        status = sweep_status(store.root, scenario_ids=scenario_ids)
        assert status.completed == 1 and status.quarantined == 1
        assert status.pending == 0 and status.done
