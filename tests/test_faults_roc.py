"""Tests for measurement-fault injection and ROC analysis."""

import numpy as np
import pytest

from repro.acquisition.bench import MeasurementBench
from repro.acquisition.device import Device
from repro.acquisition.faults import (
    clip_traces,
    desynchronize,
    drop_samples,
    gain_drift,
    inject_spikes,
)
from repro.acquisition.traces import TraceSet
from repro.analysis.roc import (
    detection_gap_sweep,
    roc_from_scores,
    sample_mean_scores,
    screening_roc,
)
from repro.core.process import CorrelationProcess, ProcessParameters
from repro.experiments.designs import build_paper_ip
from repro.power.models import PowerModel


@pytest.fixture()
def traces(rng):
    return TraceSet("dev", rng.normal(0, 1, size=(20, 64)))


class TestFaultModels:
    def test_clip_limits_range(self, traces):
        clipped = clip_traces(traces, saturation_sigmas=0.5)
        center = traces.matrix.mean()
        spread = traces.matrix.std()
        assert clipped.matrix.max() <= center + 0.5 * spread + 1e-12
        assert clipped.matrix.min() >= center - 0.5 * spread - 1e-12

    def test_clip_validation(self, traces):
        with pytest.raises(ValueError):
            clip_traces(traces, saturation_sigmas=0)

    def test_dropout_replaces_fraction(self, traces):
        dropped = drop_samples(traces, dropout_rate=0.5, rng=1)
        changed = np.mean(dropped.matrix != traces.matrix)
        assert 0.3 < changed < 0.7

    def test_dropout_zero_is_identity(self, traces):
        dropped = drop_samples(traces, dropout_rate=0.0, rng=1)
        np.testing.assert_allclose(dropped.matrix, traces.matrix)

    def test_dropout_validation(self, traces):
        with pytest.raises(ValueError):
            drop_samples(traces, dropout_rate=1.0)

    def test_desynchronize_permutes_rows(self, traces):
        shifted = desynchronize(traces, max_shift=5, rng=2)
        # Values preserved per row (circular shift), order changed.
        for original, moved in zip(traces.matrix, shifted.matrix):
            assert sorted(original) == pytest.approx(sorted(moved))

    def test_desynchronize_zero_shift(self, traces):
        shifted = desynchronize(traces, max_shift=0)
        np.testing.assert_allclose(shifted.matrix, traces.matrix)

    def test_spikes_add_outliers(self, traces):
        spiked = inject_spikes(traces, rate=0.02, amplitude_sigmas=20, rng=3)
        assert np.abs(spiked.matrix).max() > np.abs(traces.matrix).max() * 3

    def test_gain_drift_scales_late_traces(self, traces):
        drifted = gain_drift(traces, drift_fraction=0.5)
        np.testing.assert_allclose(drifted.matrix[0], traces.matrix[0])
        np.testing.assert_allclose(drifted.matrix[-1], 1.5 * traces.matrix[-1])

    def test_fault_validation(self, traces):
        with pytest.raises(ValueError):
            desynchronize(traces, max_shift=-1)
        with pytest.raises(ValueError):
            inject_spikes(traces, rate=1.5)
        with pytest.raises(ValueError):
            gain_drift(traces, drift_fraction=-0.1)


class TestFaultImpactOnVerification:
    """Which bench faults break the correlation verification?"""

    PARAMS = ProcessParameters(k=20, m=10, n1=120, n2=1200)

    def _matching_sets(self):
        refd = Device("R", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        dut = Device("D", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
        bench = MeasurementBench(seed=4)
        return bench.measure(refd, 120), bench.measure(dut, 1200)

    def _mean_rho(self, t_ref, t_dut):
        process = CorrelationProcess(self.PARAMS, strict=False)
        return process.run(t_ref, t_dut, np.random.default_rng(0)).mean

    def test_mild_clipping_tolerated(self):
        t_ref, t_dut = self._matching_sets()
        baseline = self._mean_rho(t_ref, t_dut)
        clipped = clip_traces(t_dut, saturation_sigmas=2.5)
        assert self._mean_rho(t_ref, clipped) > baseline - 0.1

    def test_dropout_tolerated(self):
        t_ref, t_dut = self._matching_sets()
        baseline = self._mean_rho(t_ref, t_dut)
        dropped = drop_samples(t_dut, dropout_rate=0.05, rng=5)
        assert self._mean_rho(t_ref, dropped) > baseline - 0.1

    def test_gain_drift_tolerated(self):
        # Pearson is gain invariant per trace.
        t_ref, t_dut = self._matching_sets()
        baseline = self._mean_rho(t_ref, t_dut)
        drifted = gain_drift(t_dut, drift_fraction=0.3)
        assert self._mean_rho(t_ref, drifted) > baseline - 0.05

    def test_desynchronisation_is_fatal(self):
        # The scheme requires aligned traces (the paper resets all FSMs
        # before measuring); heavy trigger jitter destroys the match.
        t_ref, t_dut = self._matching_sets()
        baseline = self._mean_rho(t_ref, t_dut)
        shifted = desynchronize(t_dut, max_shift=100, rng=6)
        assert self._mean_rho(t_ref, shifted) < baseline - 0.3


class TestROC:
    def test_separable_populations_auc_near_one(self):
        curve = roc_from_scores([0.9, 0.95, 0.92], [0.1, 0.2, 0.15])
        assert curve.auc == pytest.approx(1.0)

    def test_identical_populations_auc_half(self, rng):
        scores = rng.normal(0, 1, size=500)
        curve = roc_from_scores(scores, rng.normal(0, 1, size=500))
        assert curve.auc == pytest.approx(0.5, abs=0.06)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            roc_from_scores([], [0.1])

    def test_curve_endpoints(self):
        curve = roc_from_scores([1.0, 2.0], [0.0, 0.5])
        assert curve.true_positive_rates.max() == 1.0
        assert curve.false_positive_rates.min() == 0.0

    def test_operating_point_respects_fpr(self):
        curve = screening_roc(rng=0)
        threshold, fpr, tpr = curve.operating_point(max_fpr=0.01)
        assert fpr <= 0.01
        assert tpr > 0.9  # the reproduction's operating point separates well

    def test_operating_point_validation(self):
        curve = roc_from_scores([1.0, 2.0], [0.0, 0.5])
        with pytest.raises(ValueError):
            curve.operating_point(max_fpr=-0.1)

    def test_sample_mean_scores_shapes(self):
        genuine, counterfeit = sample_mean_scores(0.98, 0.93, 20, 1024, 100, rng=1)
        assert genuine.shape == (100,)
        assert counterfeit.shape == (100,)
        assert genuine.mean() > counterfeit.mean()

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            sample_mean_scores(1.0, 0.9, 20, 1024, 10)
        with pytest.raises(ValueError):
            sample_mean_scores(0.9, 0.8, 1, 1024, 10)

    def test_auc_grows_with_gap(self):
        sweep = detection_gap_sweep([0.001, 0.01, 0.05], n_samples=500, rng=2)
        aucs = [auc for _gap, auc in sweep]
        assert aucs[0] < aucs[-1]
        assert aucs[-1] > 0.99

    def test_gap_sweep_validation(self):
        with pytest.raises(ValueError):
            detection_gap_sweep([0.0])
