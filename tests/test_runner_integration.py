"""Integration tests: the full paper campaign on simulated hardware.

These use the session-scoped ``paper_campaign`` fixture (n1 = 400,
n2 = 10 000, k = 50, m = 20 — the paper's exact parameters).
"""

import numpy as np

from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.runner import (
    CampaignConfig,
    DUT_ORDER,
    REF_ORDER,
    run_campaign,
)
from repro.core.process import ProcessParameters


class TestPaperCampaign:
    def test_all_sixteen_sets_present(self, paper_campaign):
        for ref in REF_ORDER:
            sets = paper_campaign.correlation_sets(ref)
            assert set(sets) == set(DUT_ORDER)
            for c in sets.values():
                assert c.shape == (20,)

    def test_mean_distinguisher_identifies_every_row(self, paper_campaign):
        assert paper_campaign.accuracy("higher-mean") == 1.0

    def test_variance_distinguisher_identifies_every_row(self, paper_campaign):
        assert paper_campaign.accuracy("lower-variance") == 1.0

    def test_verdict_matrix_is_diagonal(self, paper_campaign):
        matrix = paper_campaign.verdict_matrix()
        for ref in REF_ORDER:
            for chosen in matrix[ref].values():
                assert chosen == EXPECTED_MATCHES[ref]

    def test_all_correct_flag(self, paper_campaign):
        assert paper_campaign.all_correct

    def test_matching_means_high(self, paper_campaign):
        # The diagonal means sit in the high-correlation regime, as in
        # the paper's Table I (0.936..0.947).
        for ref in REF_ORDER:
            match = EXPECTED_MATCHES[ref]
            assert paper_campaign.means[ref][match] > 0.9

    def test_matching_variances_small(self, paper_campaign):
        # Diagonal variances are tiny, as in Table II (1e-6..2e-5).
        for ref in REF_ORDER:
            match = EXPECTED_MATCHES[ref]
            assert paper_campaign.variances[ref][match] < 1e-4

    def test_variance_confidence_exceeds_mean_confidence(self, paper_campaign):
        # The paper's central finding (Section V.A).
        mean_deltas = paper_campaign.confidence_distances("higher-mean")
        var_deltas = paper_campaign.confidence_distances("lower-variance")
        for ref in REF_ORDER:
            assert var_deltas[ref] > mean_deltas[ref]

    def test_variance_confidence_in_papers_regime(self, paper_campaign):
        # Paper: Delta_v in [44.9 %, 99.2 %].  Same order of magnitude.
        var_deltas = paper_campaign.confidence_distances("lower-variance")
        for ref in REF_ORDER:
            assert var_deltas[ref] > 20.0

    def test_coefficients_bounded(self, paper_campaign):
        for ref in REF_ORDER:
            for c in paper_campaign.correlation_sets(ref).values():
                assert np.all(c <= 1.0)
                assert np.all(c >= -1.0)


class TestSmallCampaignVariants:
    # Smaller than the paper's plan, but with enough k and m that the
    # variance estimate over the C set stays stable (m = 10 would make
    # the lower-variance verdict flaky — exactly why the paper uses
    # m = 20).
    SMALL = ProcessParameters(k=40, m=16, n1=320, n2=6400)

    def test_no_variation_ablation_still_identifies(self):
        # E6: disabling process variation cannot hurt.
        config = CampaignConfig(
            parameters=self.SMALL, variation=None, measurement_seed=11
        )
        outcome = run_campaign(config)
        assert outcome.accuracy("lower-variance") == 1.0
        assert outcome.accuracy("higher-mean") == 1.0

    def test_fresh_reference_ablation_runs(self):
        # E8: the non-single-reference variant still completes (its
        # statistical cost is measured in the benchmark).
        config = CampaignConfig(
            parameters=self.SMALL, single_reference=False, measurement_seed=12
        )
        outcome = run_campaign(config)
        assert set(outcome.reports) == set(REF_ORDER)

    def test_unwatermarked_ablation_causes_collisions(self):
        # E9: without the leakage component, IP_B/C/D are identical
        # designs — the gray rows cannot be reliably separated.
        config = CampaignConfig(
            parameters=self.SMALL,
            watermarked=False,
            variation=None,
            measurement_seed=13,
        )
        outcome = run_campaign(config)
        gray_rows = ("IP_B", "IP_C", "IP_D")
        for ref in gray_rows:
            means = outcome.means[ref]
            gray_means = [means[d] for d in ("DUT#2", "DUT#3", "DUT#4")]
            # All gray DUTs collide at essentially the same mean.
            assert max(gray_means) - min(gray_means) < 0.02

    def test_campaign_reproducibility(self):
        config = CampaignConfig(parameters=self.SMALL, measurement_seed=14)
        o1 = run_campaign(config)
        o2 = run_campaign(config)
        for ref in REF_ORDER:
            for dut in DUT_ORDER:
                np.testing.assert_allclose(
                    o1.reports[ref].results[dut].coefficients,
                    o2.reports[ref].results[dut].coefficients,
                )
