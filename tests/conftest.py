"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for everything: property tests stay meaningful
# but the suite finishes quickly.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def paper_campaign():
    """One full paper-parameter campaign, shared by integration tests."""
    from repro.experiments.runner import CampaignConfig, run_campaign

    config = CampaignConfig(measurement_seed=42, analysis_seed=7)
    return run_campaign(config)


@pytest.fixture(scope="session")
def device_fleet():
    """The eight manufactured devices with process variation."""
    from repro.experiments.designs import build_device_fleet
    from repro.power.variation import VariationModel

    return build_device_fleet(variation_model=VariationModel(), seed=2014)


@pytest.fixture()
def rng():
    """A fresh, seeded random generator per test."""
    return np.random.default_rng(12345)
