"""Tests for the table/figure reproduction drivers."""

import pytest

from repro.core.distinguishers import (
    confidence_distance_higher,
    confidence_distance_lower,
)
from repro.experiments.figure4 import (
    figure4_panels,
    figure4_shape_holds,
    render_figure4,
    render_panel_ascii,
)
from repro.experiments.figure5 import (
    PAPER_M_MAX,
    figure5_data,
    figure5_shape_holds,
    render_figure5,
)
from repro.experiments.runner import DUT_ORDER, REF_ORDER
from repro.experiments.tables import (
    PAPER_TABLE1_DELTAS,
    PAPER_TABLE1_MEANS,
    PAPER_TABLE2_DELTAS,
    PAPER_TABLE2_VARIANCES,
    compare_table1,
    compare_table2,
    render_paper_table1,
    render_paper_table2,
    render_table1,
    render_table2,
)


class TestPaperConstants:
    def test_table1_deltas_consistent_with_means(self):
        # The published Delta_mean values follow from the published
        # means via the confidence-distance formula.
        for ref, per_dut in PAPER_TABLE1_MEANS.items():
            delta = confidence_distance_higher(list(per_dut.values()))
            assert delta == pytest.approx(PAPER_TABLE1_DELTAS[ref], abs=0.31)

    def test_table2_deltas_consistent_with_variances(self):
        for ref, per_dut in PAPER_TABLE2_VARIANCES.items():
            delta = confidence_distance_lower(list(per_dut.values()))
            assert delta == pytest.approx(PAPER_TABLE2_DELTAS[ref], abs=0.4)

    def test_paper_diagonals_win(self):
        for ref, dut in (
            ("IP_A", "DUT#1"),
            ("IP_B", "DUT#2"),
            ("IP_C", "DUT#3"),
            ("IP_D", "DUT#4"),
        ):
            row1 = PAPER_TABLE1_MEANS[ref]
            row2 = PAPER_TABLE2_VARIANCES[ref]
            assert max(row1, key=lambda d: row1[d]) == dut
            assert min(row2, key=lambda d: row2[d]) == dut


class TestTableComparisons:
    def test_table1_diagonal_wins(self, paper_campaign):
        comparison = compare_table1(paper_campaign)
        assert comparison.diagonal_wins

    def test_table2_diagonal_wins(self, paper_campaign):
        comparison = compare_table2(paper_campaign)
        assert comparison.diagonal_wins

    def test_variance_deltas_dominate_mean_deltas(self, paper_campaign):
        t1 = compare_table1(paper_campaign)
        t2 = compare_table2(paper_campaign)
        for ref in REF_ORDER:
            assert t2.measured_deltas[ref] > t1.measured_deltas[ref]

    def test_rendered_tables_contain_all_cells(self, paper_campaign):
        text1 = render_table1(paper_campaign)
        text2 = render_table2(paper_campaign)
        for name in REF_ORDER + DUT_ORDER:
            assert name in text1
            assert name in text2
        assert "Delta_mean" in text1
        assert "Delta_v" in text2

    def test_paper_table_renderers(self):
        assert "0.947" in render_paper_table1()
        assert "9.900e-07" in render_paper_table2()


class TestFigure4:
    def test_panels_from_existing_campaign(self, paper_campaign):
        panels = figure4_panels(outcome=paper_campaign)
        assert set(panels) == set(REF_ORDER)

    def test_shape_holds(self, paper_campaign):
        panels = figure4_panels(outcome=paper_campaign)
        assert figure4_shape_holds(panels)

    def test_concatenated_series_has_80_points(self, paper_campaign):
        panels = figure4_panels(outcome=paper_campaign)
        values, labels = panels["IP_A"].concatenated()
        assert values.shape == (80,)
        assert len(labels) == 80

    def test_ascii_rendering(self, paper_campaign):
        panels = figure4_panels(outcome=paper_campaign)
        text = render_panel_ascii(panels["IP_B"])
        assert "IP_B" in text
        assert "legend" in text

    def test_full_figure_rendering(self, paper_campaign):
        text = render_figure4(figure4_panels(outcome=paper_campaign))
        for ref in REF_ORDER:
            assert ref in text

    def test_render_height_validation(self, paper_campaign):
        panels = figure4_panels(outcome=paper_campaign)
        with pytest.raises(ValueError):
            render_panel_ascii(panels["IP_A"], height=2)


class TestFigure5:
    def test_data_fields(self):
        data = figure5_data()
        assert len(data.series) == PAPER_M_MAX
        assert data.limit == pytest.approx(0.004679, abs=1e-5)
        assert data.p_zeta_at_paper_m == pytest.approx(0.0045, abs=2e-4)

    def test_minimal_m_near_paper(self):
        data = figure5_data()
        assert abs(data.min_m_within_5pct - 17) <= 3

    def test_shape_holds(self):
        assert figure5_shape_holds(figure5_data())

    def test_render(self):
        text = render_figure5(figure5_data())
        assert "alpha" in text
        assert "*" in text

    def test_custom_alpha(self):
        import math

        data = figure5_data(alpha=2.0)
        assert data.limit == pytest.approx(1 - 1.5 * math.exp(-0.5), rel=1e-9)
