"""Tests for the uniform distinct selection U_X(k)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.acquisition.traces import TraceSet
from repro.core.selection import (
    batch_has_reuse,
    count_cross_selection_reuse,
    reuse_of_element,
    select_traces,
    selection_indices_batch,
    uniform_distinct_indices,
)


class TestUniformDistinct:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    def test_indices_are_distinct(self, n, k):
        if k > n:
            return
        rng = np.random.default_rng(0)
        indices = uniform_distinct_indices(n, k, rng)
        assert len(set(indices.tolist())) == k

    def test_indices_in_range(self, rng):
        indices = uniform_distinct_indices(100, 30, rng)
        assert np.all(indices >= 0)
        assert np.all(indices < 100)

    def test_rejects_k_larger_than_n(self, rng):
        with pytest.raises(ValueError):
            uniform_distinct_indices(5, 6, rng)

    def test_rejects_nonpositive_k(self, rng):
        with pytest.raises(ValueError):
            uniform_distinct_indices(5, 0, rng)

    def test_k_equals_n_is_a_permutation(self, rng):
        indices = uniform_distinct_indices(10, 10, rng)
        assert sorted(indices.tolist()) == list(range(10))

    def test_uniform_coverage(self):
        # Each element should be selected with probability k/n.
        rng = np.random.default_rng(1)
        counts = np.zeros(20)
        trials = 2000
        for _ in range(trials):
            counts[uniform_distinct_indices(20, 5, rng)] += 1
        expected = trials * 5 / 20
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))


class TestSelectTraces:
    def test_selects_rows(self, rng):
        traces = TraceSet("d", np.arange(40, dtype=float).reshape(10, 4))
        selected = select_traces(traces, 3, rng)
        assert selected.shape == (3, 4)
        for row in selected:
            assert any(np.array_equal(row, original) for original in traces.matrix)


class TestBatch:
    def test_shape(self, rng):
        batch = selection_indices_batch(100, 5, 7, rng)
        assert batch.shape == (7, 5)

    def test_rows_individually_distinct(self, rng):
        batch = selection_indices_batch(50, 10, 20, rng)
        for row in batch:
            assert len(set(row.tolist())) == 10

    def test_rejects_nonpositive_m(self, rng):
        with pytest.raises(ValueError):
            selection_indices_batch(10, 2, 0, rng)


class TestReuseCounting:
    def test_no_reuse(self):
        batch = np.array([[0, 1], [2, 3]])
        assert count_cross_selection_reuse(batch) == 0
        assert not batch_has_reuse(batch)

    def test_single_reuse(self):
        batch = np.array([[0, 1], [1, 2]])
        assert count_cross_selection_reuse(batch) == 1
        assert batch_has_reuse(batch)

    def test_reuse_of_specific_element(self):
        batch = np.array([[0, 1], [1, 2], [3, 4]])
        assert reuse_of_element(batch, 1)
        assert not reuse_of_element(batch, 0)
        assert not reuse_of_element(batch, 9)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            count_cross_selection_reuse(np.array([1, 2]))
        with pytest.raises(ValueError):
            reuse_of_element(np.array([1, 2]), 1)

    def test_reuse_rate_decreases_with_alpha(self):
        # Larger trace pools make cross-selection reuse rarer (property
        # P1 of the paper, checked on the actual machinery).
        rng = np.random.default_rng(5)
        k, m = 5, 10
        rates = []
        for alpha in (1, 16, 256):
            hits = 0
            for _ in range(300):
                batch = selection_indices_batch(alpha * k * m, k, m, rng)
                hits += batch_has_reuse(batch)
            rates.append(hits / 300)
        # Near-saturation at alpha = 1; clearly rarer as alpha grows.
        assert rates[0] >= rates[1] > rates[2]
