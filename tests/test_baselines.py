"""Tests for the related-work baseline schemes."""

import numpy as np
import pytest

from repro.acquisition.bench import acquire_traces
from repro.acquisition.device import Device
from repro.baselines.becker import (
    BeckerDetector,
    attach_pn_leakage,
    pn_sequence,
)
from repro.baselines.output_mark import (
    OutputMark,
    OutputMarkVerifier,
    collision_rate,
    embed_output_mark,
    verify_output_mark,
)
from repro.baselines.state_insertion import (
    StateInsertionWatermark,
    embed_state_insertion,
    verify_state_insertion,
    visited_watermark_states,
)
from repro.fsm.counters import build_binary_counter
from repro.fsm.machine import MealyMachine
from repro.fsm.watermark import WatermarkedIP
from repro.hdl.netlist import Netlist
from repro.power.models import PowerModel


def simple_mealy():
    """A 4-state up/down saturating counter over inputs {0, 1}."""
    states = [0, 1, 2, 3]
    return MealyMachine(
        states=states,
        alphabet=[0, 1],
        transition=lambda s, x: min(s + 1, 3) if x else max(s - 1, 0),
        output=lambda s, x: s,
        initial_state=0,
    )


class TestOutputMark:
    MARK = OutputMark(trigger=(1, 0, 1), signature=(9, 8, 7))

    def test_embedded_machine_answers_trigger(self):
        marked = embed_output_mark(simple_mealy(), self.MARK)
        assert verify_output_mark(marked, self.MARK)

    def test_plain_machine_does_not_answer(self):
        assert not verify_output_mark(simple_mealy(), self.MARK)

    def test_verifier_wrapper(self):
        marked = embed_output_mark(simple_mealy(), self.MARK)
        result = OutputMarkVerifier(self.MARK).verify(marked)
        assert result["authentic"]
        assert result["requires_io_access"]

    def test_collision_rate_low(self):
        marked = embed_output_mark(simple_mealy(), self.MARK)
        rng = np.random.default_rng(0)
        probes = [tuple(rng.integers(0, 2, size=3)) for _ in range(64)]
        assert collision_rate(marked, self.MARK, probes) < 0.1

    def test_rejects_trigger_outside_alphabet(self):
        with pytest.raises(ValueError):
            embed_output_mark(
                simple_mealy(), OutputMark(trigger=(7,), signature=(1,))
            )

    def test_mark_validation(self):
        with pytest.raises(ValueError):
            OutputMark(trigger=(), signature=())
        with pytest.raises(ValueError):
            OutputMark(trigger=(1,), signature=(1, 2))


class TestStateInsertion:
    WM = StateInsertionWatermark(steering_word=(1, 1, 0), signature=(5, 6, 7))

    def test_embed_and_verify(self):
        marked, stats = embed_state_insertion(simple_mealy(), self.WM)
        assert verify_state_insertion(marked, self.WM)
        assert stats.added_states == 3
        assert stats.original_states == 4
        assert stats.overhead_ratio == pytest.approx(0.75)

    def test_plain_machine_fails_verification(self):
        assert not verify_state_insertion(simple_mealy(), self.WM)

    def test_steering_word_walks_added_states(self):
        marked, _stats = embed_state_insertion(simple_mealy(), self.WM)
        visited = visited_watermark_states(marked, self.WM)
        assert len(visited) >= 1

    def test_wrong_symbol_falls_back(self):
        marked, _stats = embed_state_insertion(simple_mealy(), self.WM)
        states, _outputs = marked.run((1, 0, 0))  # deviates at step 2
        assert states[-1] in simple_mealy().states

    def test_rejects_symbol_outside_alphabet(self):
        with pytest.raises(ValueError):
            embed_state_insertion(
                simple_mealy(),
                StateInsertionWatermark(steering_word=(9,), signature=(0,)),
            )

    def test_overhead_is_the_papers_criticism(self):
        # The paper's leakage component adds zero FSM states; this
        # baseline adds one per signature symbol.
        wm = StateInsertionWatermark(
            steering_word=(1,) * 8, signature=tuple(range(8))
        )
        _marked, stats = embed_state_insertion(simple_mealy(), wm)
        assert stats.added_states == 8


class TestPNSequence:
    def test_length(self):
        assert len(pn_sequence(100, seed=1)) == 100

    def test_bits_only(self):
        assert set(pn_sequence(200, seed=3)) <= {0, 1}

    def test_balanced(self):
        bits = pn_sequence(1000, seed=5)
        assert 0.35 < np.mean(bits) < 0.65

    def test_seed_changes_sequence(self):
        assert pn_sequence(64, seed=1) != pn_sequence(64, seed=2)

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            pn_sequence(10, seed=0)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            pn_sequence(0, seed=1)


class TestBeckerDetector:
    def make_device(self, with_pn=True, seed=0x1234):
        netlist = Netlist("host")
        register = build_binary_counter(netlist, 8)
        if with_pn:
            attach_pn_leakage(netlist, seed=seed, leak_width=6)
        netlist.validate()
        ip = WatermarkedIP(
            name="host",
            netlist=netlist,
            state_register=register,
            kw=None,
            fsm_kind="binary",
        )
        return Device("dev", ip, PowerModel(), default_cycles=256)

    def test_detects_embedded_pn(self):
        device = self.make_device(with_pn=True)
        traces = acquire_traces(device, 200, rng=1)
        detector = BeckerDetector(seed=0x1234)
        detection = detector.detect(traces, samples_per_cycle=4)
        assert detection.detected
        assert detection.correlation > 0.3

    def test_no_pn_no_detection(self):
        device = self.make_device(with_pn=False)
        traces = acquire_traces(device, 200, rng=1)
        detection = BeckerDetector(seed=0x1234).detect(traces, samples_per_cycle=4)
        assert not detection.detected

    def test_wrong_seed_no_detection(self):
        device = self.make_device(with_pn=True, seed=0x1234)
        traces = acquire_traces(device, 200, rng=1)
        detection = BeckerDetector(seed=0x4321).detect(traces, samples_per_cycle=4)
        assert not detection.detected

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BeckerDetector(seed=1, threshold=0.0)

    def test_length_mismatch_rejected(self):
        device = self.make_device()
        traces = acquire_traces(device, 10, rng=1)
        with pytest.raises(ValueError):
            BeckerDetector(seed=1).detect(traces, samples_per_cycle=3)

    def test_noise_robustness_with_averaging(self):
        device = self.make_device(with_pn=True)
        noisy = acquire_traces(
            device, 400, rng=2, oscilloscope=None
        )
        detector = BeckerDetector(seed=0x1234)
        few = detector.detect(noisy, samples_per_cycle=4, n_average=5)
        many = detector.detect(noisy, samples_per_cycle=4, n_average=400)
        assert many.correlation >= few.correlation - 0.05
