"""Tests for wires and bit-vector helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.wires import Wire, bit, hamming_distance, hamming_weight, mask

values = st.integers(min_value=0, max_value=2**32 - 1)


class TestHamming:
    def test_weight_examples(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(0b1010) == 2

    def test_distance_examples(self):
        assert hamming_distance(0, 0xFF) == 8
        assert hamming_distance(0b1100, 0b1010) == 2

    @given(values)
    def test_distance_to_self_is_zero(self, a):
        assert hamming_distance(a, a) == 0

    @given(values, values)
    def test_distance_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(values, values, values)
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)

    @given(values, values)
    def test_distance_is_weight_of_xor(self, a, b):
        assert hamming_distance(a, b) == hamming_weight(a ^ b)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            hamming_weight(-1)
        with pytest.raises(ValueError):
            hamming_distance(-1, 0)


class TestBitAndMask:
    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    def test_bit_rejects_negative_index(self):
        with pytest.raises(ValueError):
            bit(1, -1)

    def test_mask_values(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(16) == 0xFFFF

    def test_mask_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mask(0)


class TestWire:
    def test_initial_state(self):
        wire = Wire("w", 8, initial=3)
        assert wire.value == 3
        assert wire.previous == 3
        assert wire.toggles() == 0

    def test_drive_and_toggles(self):
        wire = Wire("w", 8)
        wire.drive(0b1111)
        assert wire.toggles() == 4
        wire.latch_previous()
        assert wire.toggles() == 0

    def test_drive_rejects_overflow(self):
        wire = Wire("w", 4)
        with pytest.raises(ValueError):
            wire.drive(16)

    def test_drive_rejects_negative(self):
        wire = Wire("w", 4)
        with pytest.raises(ValueError):
            wire.drive(-1)

    def test_reset_restores_initial(self):
        wire = Wire("w", 8, initial=5)
        wire.drive(200)
        wire.latch_previous()
        wire.reset()
        assert wire.value == 5
        assert wire.previous == 5

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Wire("w", 0)

    def test_rejects_initial_overflow(self):
        with pytest.raises(ValueError):
            Wire("w", 2, initial=4)

    def test_repr_contains_name(self):
        assert "w" in repr(Wire("w", 8))
