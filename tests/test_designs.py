"""Tests for the paper's four designed IPs and the device fleet."""

import numpy as np
import pytest

from repro.experiments.designs import (
    DUT_CONTENTS,
    EXPECTED_MATCHES,
    IP_SPECS,
    KW1,
    KW2,
    KW3,
    PERIOD_CYCLES,
    build_device_fleet,
    build_ip,
    build_paper_ip,
)
from repro.fsm.properties import period
from repro.fsm.counters import binary_counter_machine, gray_counter_machine
from repro.hdl.simulator import Simulator
from repro.power.variation import VariationModel


class TestSpecs:
    def test_four_ips(self):
        assert set(IP_SPECS) == {"IP_A", "IP_B", "IP_C", "IP_D"}

    def test_ip_a_is_binary_with_kw1(self):
        assert IP_SPECS["IP_A"] == ("binary", KW1)

    def test_b_and_c_and_d_are_gray(self):
        for name in ("IP_B", "IP_C", "IP_D"):
            assert IP_SPECS[name][0] == "gray"

    def test_a_and_b_share_kw1(self):
        assert IP_SPECS["IP_A"][1] == IP_SPECS["IP_B"][1] == KW1

    def test_c_and_d_have_distinct_keys(self):
        keys = {IP_SPECS[name][1] for name in ("IP_B", "IP_C", "IP_D")}
        assert keys == {KW1, KW2, KW3}
        assert len(keys) == 3

    def test_dut_contents_match_expected(self):
        for dut, ip in DUT_CONTENTS.items():
            assert EXPECTED_MATCHES[ip] == dut

    def test_period_constant(self):
        assert PERIOD_CYCLES == 256


class TestBuildIP:
    def test_watermarked_has_h_register(self):
        ip = build_paper_ip("IP_A")
        assert ip.is_watermarked
        assert ip.kw == KW1

    def test_unwatermarked_variant(self):
        ip = build_paper_ip("IP_A", watermarked=False)
        assert not ip.is_watermarked
        assert ip.h_register is None

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_paper_ip("IP_Z")

    def test_unknown_fsm_kind_rejected(self):
        with pytest.raises(ValueError):
            build_ip("x", "johnson", 0)

    def test_netlists_validate(self):
        for name in IP_SPECS:
            build_paper_ip(name).netlist.validate()

    def test_fsm_periods_are_256(self):
        assert period(binary_counter_machine(8)) == PERIOD_CYCLES
        assert period(gray_counter_machine(8)) == PERIOD_CYCLES

    def test_fsm_behaviour_unchanged_by_watermark(self):
        marked = build_paper_ip("IP_B")
        plain = build_paper_ip("IP_B", watermarked=False)
        seq_marked = Simulator(marked.netlist).state_sequence("ctr_reg", 300)
        seq_plain = Simulator(plain.netlist).state_sequence("ctr_reg", 300)
        assert seq_marked == seq_plain


class TestFleet:
    def test_fleet_shape(self):
        refds, duts = build_device_fleet(seed=1)
        assert set(refds) == set(IP_SPECS)
        assert set(duts) == set(DUT_CONTENTS)

    def test_devices_have_independent_netlists(self):
        refds, duts = build_device_fleet(seed=1)
        assert refds["IP_A"].ip.netlist is not duts["DUT#1"].ip.netlist

    def test_matching_devices_same_ip_content(self):
        refds, duts = build_device_fleet(seed=1)
        for ref_name, dut_name in EXPECTED_MATCHES.items():
            assert refds[ref_name].ip.kw == duts[dut_name].ip.kw
            assert refds[ref_name].ip.fsm_kind == duts[dut_name].ip.fsm_kind

    def test_no_variation_gives_identical_waveforms(self):
        refds, duts = build_device_fleet(variation_model=None, seed=1)
        np.testing.assert_allclose(
            refds["IP_A"].deterministic_waveform(),
            duts["DUT#1"].deterministic_waveform(),
        )

    def test_variation_perturbs_waveforms(self):
        refds, duts = build_device_fleet(
            variation_model=VariationModel(), seed=1
        )
        ref = refds["IP_A"].deterministic_waveform()
        dut = duts["DUT#1"].deterministic_waveform()
        assert not np.allclose(ref, dut)

    def test_variation_is_seeded(self):
        fleet1 = build_device_fleet(variation_model=VariationModel(), seed=9)
        fleet2 = build_device_fleet(variation_model=VariationModel(), seed=9)
        np.testing.assert_allclose(
            fleet1[0]["IP_C"].deterministic_waveform(),
            fleet2[0]["IP_C"].deterministic_waveform(),
        )

    def test_default_cycles_is_one_period(self):
        refds, _duts = build_device_fleet(seed=1)
        assert refds["IP_A"].default_cycles == PERIOD_CYCLES

    def test_matching_pair_correlates_highest_deterministically(self):
        refds, duts = build_device_fleet(
            variation_model=VariationModel(), seed=2014
        )
        from repro.core.correlation import pearson

        for ref_name, dut_name in EXPECTED_MATCHES.items():
            ref_wave = refds[ref_name].deterministic_waveform()
            correlations = {
                name: pearson(ref_wave, dut.deterministic_waveform())
                for name, dut in duts.items()
            }
            assert max(correlations, key=lambda n: correlations[n]) == dut_name
