"""Tests for the CLI, the public API surface and the report module."""

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main
from repro.core.report import (
    render_comparison,
    render_matrix_table,
    render_means_table,
    render_variances_table,
    render_verdicts,
    summarize_scores,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import repro.acquisition
        import repro.analysis
        import repro.attacks
        import repro.baselines
        import repro.core
        import repro.crypto
        import repro.experiments
        import repro.fsm
        import repro.hdl
        import repro.power

        for module in (
            repro.core,
            repro.crypto,
            repro.hdl,
            repro.fsm,
            repro.power,
            repro.acquisition,
            repro.experiments,
            repro.analysis,
            repro.baselines,
            repro.attacks,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_paper_plan_exported(self):
        assert repro.PAPER_PLAN.parameters.n2 == 10_000


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["plan", "--alpha", "5", "--k", "25"])
        assert args.command == "plan"
        assert args.alpha == 5.0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_command(self, capsys):
        assert main(["plan", "--alpha", "10", "--k", "50"]) == 0
        out = capsys.readouterr().out
        assert "P(zeta) limit" in out
        assert "n2 (DUT traces)" in out

    def test_figure5_command(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "f_alpha(m)" in out
        assert "paper: 0.0045" in out

    def test_figure5_custom_alpha(self, capsys):
        assert main(["figure5", "--alpha", "3"]) == 0
        assert "alpha = 3" in capsys.readouterr().out

    def test_collisions_command(self, capsys):
        assert main(["collisions"]) == 0
        out = capsys.readouterr().out
        assert "32640" in out
        assert "worst pair" in out

    def test_keysearch_command(self, capsys):
        assert main(["keysearch", "--traces", "150"]) == 0
        out = capsys.readouterr().out
        assert "recovered: True" in out


class TestReportRendering:
    MATRIX = {
        "IP_X": {"DUT#1": 0.95, "DUT#2": 0.50},
        "IP_Y": {"DUT#1": 0.40, "DUT#2": 0.90},
    }

    def test_means_table(self):
        text = render_means_table(self.MATRIX, ["DUT#1", "DUT#2"])
        assert "0.950" in text
        assert "Delta_mean" in text

    def test_variances_table(self):
        matrix = {
            "IP_X": {"DUT#1": 1e-6, "DUT#2": 1e-4},
        }
        text = render_variances_table(matrix, ["DUT#1", "DUT#2"])
        assert "1.000e-06" in text
        assert "99.00%" in text

    def test_matrix_table_rejects_unknown_style(self):
        with pytest.raises(ValueError):
            render_matrix_table(self.MATRIX, ["DUT#1", "DUT#2"], "bogus", "x")

    def test_comparison_line(self):
        line = render_comparison("P(zeta)", 0.0045, 0.004474)
        assert "paper=0.0045" in line
        assert "measured=0.004474" in line

    def test_summarize_scores(self):
        text = summarize_scores({"DUT#1": 0.9}, style="mean")
        assert text == "DUT#1=0.900"

    def test_render_verdicts(self, paper_campaign):
        text = render_verdicts(paper_campaign.reports["IP_A"])
        assert "IP_A" in text
        assert "higher-mean" in text
        assert "unanimous" in text
