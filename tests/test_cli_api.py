"""Tests for the CLI, the public API surface and the report module."""

import pytest

import repro
from repro.cli import build_parser, main
from repro.core.report import (
    render_comparison,
    render_matrix_table,
    render_means_table,
    render_variances_table,
    render_verdicts,
    summarize_scores,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import repro.acquisition
        import repro.analysis
        import repro.attacks
        import repro.baselines
        import repro.core
        import repro.crypto
        import repro.experiments
        import repro.fsm
        import repro.hdl
        import repro.power

        for module in (
            repro.core,
            repro.crypto,
            repro.hdl,
            repro.fsm,
            repro.power,
            repro.acquisition,
            repro.experiments,
            repro.analysis,
            repro.baselines,
            repro.attacks,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_paper_plan_exported(self):
        assert repro.PAPER_PLAN.parameters.n2 == 10_000


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["plan", "--alpha", "5", "--k", "25"])
        assert args.command == "plan"
        assert args.alpha == 5.0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_command(self, capsys):
        assert main(["plan", "--alpha", "10", "--k", "50"]) == 0
        out = capsys.readouterr().out
        assert "P(zeta) limit" in out
        assert "n2 (DUT traces)" in out

    def test_figure5_command(self, capsys):
        assert main(["figure5"]) == 0
        out = capsys.readouterr().out
        assert "f_alpha(m)" in out
        assert "paper: 0.0045" in out

    def test_figure5_custom_alpha(self, capsys):
        assert main(["figure5", "--alpha", "3"]) == 0
        assert "alpha = 3" in capsys.readouterr().out

    def test_collisions_command(self, capsys):
        assert main(["collisions"]) == 0
        out = capsys.readouterr().out
        assert "32640" in out
        assert "worst pair" in out

    def test_keysearch_command(self, capsys):
        assert main(["keysearch", "--traces", "150"]) == 0
        out = capsys.readouterr().out
        assert "recovered: True" in out


class TestReportRendering:
    MATRIX = {
        "IP_X": {"DUT#1": 0.95, "DUT#2": 0.50},
        "IP_Y": {"DUT#1": 0.40, "DUT#2": 0.90},
    }

    def test_means_table(self):
        text = render_means_table(self.MATRIX, ["DUT#1", "DUT#2"])
        assert "0.950" in text
        assert "Delta_mean" in text

    def test_variances_table(self):
        matrix = {
            "IP_X": {"DUT#1": 1e-6, "DUT#2": 1e-4},
        }
        text = render_variances_table(matrix, ["DUT#1", "DUT#2"])
        assert "1.000e-06" in text
        assert "99.00%" in text

    def test_matrix_table_rejects_unknown_style(self):
        with pytest.raises(ValueError):
            render_matrix_table(self.MATRIX, ["DUT#1", "DUT#2"], "bogus", "x")

    def test_comparison_line(self):
        line = render_comparison("P(zeta)", 0.0045, 0.004474)
        assert "paper=0.0045" in line
        assert "measured=0.004474" in line

    def test_summarize_scores(self):
        text = summarize_scores({"DUT#1": 0.9}, style="mean")
        assert text == "DUT#1=0.900"

    def test_render_verdicts(self, paper_campaign):
        text = render_verdicts(paper_campaign.reports["IP_A"])
        assert "IP_A" in text
        assert "higher-mean" in text
        assert "unanimous" in text


class TestSweepCLI:
    def test_parser_accepts_sweep_options(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "--engine", "interpreted",
                "sweep",
                "--axis", "noise.sigma=0.5,1.0",
                "--base", "parameters.k=8",
                "--store", "somewhere",
                "--workers", "2",
            ]
        )
        assert args.command == "sweep"
        assert args.engine == "interpreted"
        assert args.axis == [("noise.sigma", [0.5, 1.0])]
        assert args.base == [("parameters.k", 8)]
        assert args.workers == 2

    def test_parser_rejects_malformed_axis(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--axis", "noise.sigma"])
        capsys.readouterr()

    def test_engine_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "warp", "campaign"])
        capsys.readouterr()

    def test_sweep_command_runs_and_resumes(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = [
            "sweep",
            "--axis", "noise.sigma=0.5,1.0",
            "--axis", "attack=none,strip",
            "--base", "parameters.k=4",
            "--base", "parameters.m=4",
            "--base", "parameters.n1=32",
            "--base", "parameters.n2=64",
            "--store", store,
            "--workers", "1",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 scenarios" in out
        assert "executed 4" in out
        assert "accuracy[lower-variance]" in out
        assert "screening AUC" in out
        # Second invocation is served entirely from the store.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed 0" in out
        assert "reused 4" in out

    def test_default_sweep_grid_is_at_least_24_scenarios(self):
        from repro.cli import DEFAULT_SWEEP_AXES

        total = 1
        for values in DEFAULT_SWEEP_AXES.values():
            total *= len(values)
        assert total >= 24

    def test_default_sweep_runs_and_store_serves_rerun(self, tmp_path, capsys):
        # Acceptance: the stock `repro-watermark sweep` covers >= 24
        # scenarios, and a rerun executes nothing.
        store = str(tmp_path / "store")
        argv = ["sweep", "--store", store, "--workers", "1"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "24 scenarios" in out
        assert "executed 24" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed 0" in out
        assert "reused 24" in out

    def test_random_only_sweep_has_no_default_grid(self, tmp_path, capsys):
        assert main([
            "sweep",
            "--random", "noise.sigma=0.2:2.0:log",
            "--samples", "2",
            "--base", "parameters.k=4",
            "--base", "parameters.m=4",
            "--base", "parameters.n1=32",
            "--base", "parameters.n2=64",
            "--store", str(tmp_path / "store"),
            "--workers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios" in out

    def test_random_axis_rejects_unknown_modifier(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--random", "noise.sigma=0.1:2.0:LOG"]
            )
        capsys.readouterr()

    def test_duplicate_axis_option_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="twice"):
            main([
                "sweep",
                "--axis", "noise.sigma=0.5",
                "--axis", "noise.sigma=1.0,2.0",
                "--store", str(tmp_path / "store"),
            ])

    def test_quarantined_scenario_reported_and_exit_nonzero(
        self, tmp_path, capsys
    ):
        # n1 = 2 < k = 4 can never run; with the retry budget exhausted
        # the scenario is quarantined, the sibling completes, and the
        # command signals degradation through its exit code.
        status = main([
            "sweep",
            "--axis", "parameters.n1=32,2",
            "--base", "parameters.k=4",
            "--base", "parameters.m=4",
            "--base", "parameters.n2=64",
            "--store", str(tmp_path / "store"),
            "--workers", "1",
            "--max-retries", "0",
        ])
        assert status == 1
        out = capsys.readouterr().out
        assert "QUARANTINED 1 scenario(s)" in out
        assert "executed 1" in out

    def test_scheduler_flags_run_lease_mode(self, tmp_path, capsys):
        assert main([
            "sweep",
            "--axis", "noise.sigma=0.5,1.0",
            "--base", "parameters.k=4",
            "--base", "parameters.m=4",
            "--base", "parameters.n1=32",
            "--base", "parameters.n2=64",
            "--store", str(tmp_path / "store"),
            "--workers", "2",
            "--lease-ttl", "10",
            "--scenario-timeout", "120",
            "--scrub",
        ]) == 0
        out = capsys.readouterr().out
        assert "lease scheduler" in out
        assert "executed 2" in out

    def test_random_int_modifier_for_integer_fields(self, tmp_path, capsys):
        assert main([
            "sweep",
            "--random", "parameters.n2=128:512:int",
            "--samples", "2",
            "--base", "parameters.k=4",
            "--base", "parameters.m=4",
            "--base", "parameters.n1=32",
            "--store", str(tmp_path / "store"),
            "--workers", "1",
        ]) == 0
        assert "2 scenarios" in capsys.readouterr().out

    def test_invalid_axis_field_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid sweep"):
            main(["sweep", "--axis", "bogus=1",
                  "--store", str(tmp_path / "store")])

    def test_reversed_random_bounds_exit_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="invalid sweep"):
            main(["sweep", "--random", "noise.sigma=2.0:0.5", "--samples", "2",
                  "--store", str(tmp_path / "store")])
