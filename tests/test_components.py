"""Tests for combinational components and their activity models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.component import ActivityEvent, KIND_COMB
from repro.hdl.wires import Wire

bytes_ = st.integers(min_value=0, max_value=255)


def make_xor():
    a, b, out = Wire("a", 8), Wire("b", 8), Wire("out", 8)
    return XorArray("xor", a, b, out), a, b, out


class TestConstant:
    def test_drives_value(self):
        out = Wire("out", 8)
        Constant("k", out, 0x5A).evaluate()
        assert out.value == 0x5A

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            Constant("k", Wire("out", 4), 16)

    def test_no_activity(self):
        out = Wire("out", 8)
        component = Constant("k", out, 1)
        component.evaluate()
        assert component.activity() == []


class TestXorArray:
    @given(bytes_, bytes_)
    def test_computes_xor(self, x, y):
        component, a, b, out = make_xor()
        a.drive(x)
        b.drive(y)
        component.evaluate()
        assert out.value == x ^ y

    def test_activity_counts_output_toggles(self):
        component, a, b, out = make_xor()
        a.drive(0x0F)
        component.evaluate()
        out.latch_previous()
        a.drive(0x00)
        component.evaluate()
        events = component.activity()
        assert len(events) == 1
        assert events[0].kind == KIND_COMB
        assert events[0].amount == 4.0

    def test_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            XorArray("x", Wire("a", 8), Wire("b", 4), Wire("o", 8))


class TestIncrementer:
    @given(bytes_)
    def test_increments_mod_256(self, x):
        a, out = Wire("a", 8), Wire("out", 8)
        component = Incrementer("inc", a, out)
        a.drive(x)
        component.evaluate()
        assert out.value == (x + 1) % 256

    def test_carry_ripple_lengths(self):
        a, out = Wire("a", 8), Wire("out", 8)
        component = Incrementer("inc", a, out)
        expectations = {0b0: 1, 0b1: 2, 0b11: 3, 0b0111: 4, 0xFF: 8}
        for value, ripple in expectations.items():
            a.drive(value)
            assert component.carry_ripple_length() == ripple

    def test_ripple_capped_at_width(self):
        a, out = Wire("a", 4), Wire("out", 4)
        component = Incrementer("inc", a, out)
        a.drive(0xF)
        assert component.carry_ripple_length() == 4

    def test_activity_grows_with_ripple(self):
        a, out = Wire("a", 8), Wire("out", 8)
        component = Incrementer("inc", a, out)
        a.drive(0x00)
        component.evaluate()
        low = component.activity()[0].amount
        a.drive(0x7F)
        component.evaluate()
        high = component.activity()[0].amount
        assert high > low


class TestGrayConverters:
    @given(bytes_)
    def test_binary_to_gray_formula(self, x):
        a, out = Wire("a", 8), Wire("out", 8)
        component = BinaryToGray("b2g", a, out)
        a.drive(x)
        component.evaluate()
        assert out.value == x ^ (x >> 1)

    @given(bytes_)
    def test_gray_roundtrip(self, x):
        a, g = Wire("a", 8), Wire("g", 8)
        b2g = BinaryToGray("b2g", a, g)
        a.drive(x)
        b2g.evaluate()
        g2, back = Wire("g2", 8), Wire("back", 8)
        g2b = GrayToBinary("g2b", g2, back)
        g2.drive(g.value)
        g2b.evaluate()
        assert back.value == x

    def test_gray_to_binary_non_power_of_two_width(self):
        a, out = Wire("a", 5), Wire("out", 5)
        component = GrayToBinary("g2b", a, out)
        for x in range(32):
            a.drive(x ^ (x >> 1))
            component.evaluate()
            assert out.value == x


class TestMux2:
    def test_selects_a_then_b(self):
        select, a, b, out = Wire("s", 1), Wire("a", 8), Wire("b", 8), Wire("o", 8)
        mux = Mux2("mux", select, a, b, out)
        a.drive(10)
        b.drive(20)
        select.drive(0)
        mux.evaluate()
        assert out.value == 10
        select.drive(1)
        mux.evaluate()
        assert out.value == 20

    def test_rejects_wide_select(self):
        with pytest.raises(ValueError):
            Mux2("m", Wire("s", 2), Wire("a", 8), Wire("b", 8), Wire("o", 8))


class TestLookupLogic:
    def test_applies_function(self):
        a, out = Wire("a", 8), Wire("out", 8)
        logic = LookupLogic("f", (a,), out, lambda x: (x * 3) % 256)
        a.drive(7)
        logic.evaluate()
        assert out.value == 21

    def test_multiple_inputs(self):
        a, b, out = Wire("a", 8), Wire("b", 8), Wire("out", 8)
        logic = LookupLogic("f", (a, b), out, lambda x, y: (x + y) % 256)
        a.drive(3)
        b.drive(4)
        logic.evaluate()
        assert out.value == 7

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            LookupLogic("f", (), Wire("o", 8), lambda: 0)

    def test_glitch_factor_in_activity(self):
        a, out = Wire("a", 8), Wire("out", 8)
        logic = LookupLogic("f", (a,), out, lambda x: x, glitch_factor=1.0)
        a.drive(0xFF)
        logic.evaluate()
        events = logic.activity()
        # 8 output toggles + 1.0 * 8 input toggles.
        assert events[0].amount == 16.0


class TestTransitionTable:
    def test_follows_table(self):
        state, nxt = Wire("s", 2), Wire("n", 2)
        table = TransitionTable("t", state, nxt, {0: 1, 1: 2, 2: 0})
        state.drive(1)
        table.evaluate()
        assert nxt.value == 2

    def test_unknown_state_raises(self):
        state, nxt = Wire("s", 2), Wire("n", 2)
        table = TransitionTable("t", state, nxt, {0: 1})
        state.drive(3)
        with pytest.raises(KeyError):
            table.evaluate()

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            TransitionTable("t", Wire("s", 2), Wire("n", 2), {})


class TestActivityEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ActivityEvent("c", "bogus", 1.0)

    def test_rejects_negative_amount(self):
        with pytest.raises(ValueError):
            ActivityEvent("c", KIND_COMB, -1.0)
