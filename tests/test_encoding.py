"""Tests for state encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fsm.encoding import (
    binary_decode,
    binary_encode,
    encoding_hd_profile,
    gray_decode,
    gray_encode,
    johnson_encode,
    johnson_sequence,
    one_hot_decode,
    one_hot_encode,
)

indices8 = st.integers(min_value=0, max_value=255)


class TestBinary:
    @given(indices8)
    def test_roundtrip(self, i):
        assert binary_decode(binary_encode(i, 8), 8) == i

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            binary_encode(256, 8)


class TestGray:
    @given(indices8)
    def test_roundtrip(self, i):
        assert gray_decode(gray_encode(i, 8), 8) == i

    @given(st.integers(min_value=0, max_value=254))
    def test_adjacent_codes_differ_in_one_bit(self, i):
        a = gray_encode(i, 8)
        b = gray_encode(i + 1, 8)
        assert bin(a ^ b).count("1") == 1

    def test_wraparound_also_single_bit(self):
        a = gray_encode(255, 8)
        b = gray_encode(0, 8)
        assert bin(a ^ b).count("1") == 1

    def test_is_a_permutation(self):
        codes = [gray_encode(i, 8) for i in range(256)]
        assert sorted(codes) == list(range(256))

    def test_known_prefix(self):
        assert [gray_encode(i, 3) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]


class TestOneHot:
    @given(st.integers(min_value=0, max_value=15))
    def test_roundtrip(self, i):
        assert one_hot_decode(one_hot_encode(i, 16), 16) == i

    def test_rejects_non_one_hot(self):
        with pytest.raises(ValueError):
            one_hot_decode(0b11, 8)
        with pytest.raises(ValueError):
            one_hot_decode(0, 8)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot_encode(8, 8)
        with pytest.raises(ValueError):
            one_hot_decode(1 << 9, 8)


class TestJohnson:
    def test_sequence_length_is_twice_width(self):
        assert len(johnson_sequence(4)) == 8

    def test_four_bit_sequence(self):
        assert johnson_sequence(4) == [
            0b0000, 0b0001, 0b0011, 0b0111, 0b1111, 0b1110, 0b1100, 0b1000,
        ]

    def test_adjacent_codes_single_bit(self):
        codes = johnson_sequence(8)
        n = len(codes)
        for i in range(n):
            a, b = codes[i], codes[(i + 1) % n]
            assert bin(a ^ b).count("1") == 1

    def test_periodicity_of_encode(self):
        assert johnson_encode(0, 4) == johnson_encode(8, 4)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            johnson_encode(-1, 4)


class TestHDProfile:
    def test_gray_profile_all_ones(self):
        codes = [gray_encode(i, 8) for i in range(256)]
        assert encoding_hd_profile(codes) == [1] * 256

    def test_binary_profile_is_carry_pattern(self):
        codes = list(range(8))
        # HD(i, i+1 mod 8): 1,2,1,3,1,2,1 then HD(7,0)=3.
        assert encoding_hd_profile(codes) == [1, 2, 1, 3, 1, 2, 1, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            encoding_hd_profile([])
