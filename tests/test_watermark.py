"""Tests for the watermark leakage component."""

import pytest

from repro.crypto.sbox import SBOX
from repro.fsm.counters import build_binary_counter, build_gray_counter
from repro.fsm.watermark import (
    WatermarkedIP,
    WatermarkKeyError,
    attach_leakage_component,
    fold_to_sbox_width,
    leakage_sequence,
)
from repro.hdl.netlist import Netlist
from repro.hdl.simulator import Simulator


def watermarked_binary_counter(kw=0x5A, width=8):
    netlist = Netlist("ip")
    register = build_binary_counter(netlist, width)
    h_register = attach_leakage_component(netlist, netlist.wires["ctr_state"], kw)
    return netlist, register, h_register


class TestAttachment:
    def test_netlist_validates(self):
        netlist, _reg, _h = watermarked_binary_counter()
        netlist.validate()

    def test_adds_expected_components(self):
        netlist, _reg, _h = watermarked_binary_counter()
        names = {component.name for component in netlist.components}
        assert {"wm_key", "wm_xor", "wm_sbox", "wm_hreg", "wm_pads"} <= names

    def test_rejects_out_of_range_key(self):
        netlist = Netlist("ip")
        build_binary_counter(netlist, 8)
        with pytest.raises(WatermarkKeyError):
            attach_leakage_component(netlist, netlist.wires["ctr_state"], 256)

    def test_custom_prefix(self):
        netlist = Netlist("ip")
        build_binary_counter(netlist, 8)
        attach_leakage_component(netlist, netlist.wires["ctr_state"], 1, prefix="L")
        assert "L_h" in netlist.wires


class TestFunctionalBehaviour:
    def test_does_not_disturb_the_fsm(self):
        # The leakage component must not change the FSM behaviour.
        plain = Netlist("plain")
        build_binary_counter(plain, 8)
        marked, _reg, _h = watermarked_binary_counter()
        plain_seq = Simulator(plain).state_sequence("ctr_reg", 300)
        marked_seq = Simulator(marked).state_sequence("ctr_reg", 300)
        assert plain_seq == marked_seq

    def test_h_register_follows_sbox_of_state_xor_key(self):
        kw = 0x5A
        netlist, _reg, _h = watermarked_binary_counter(kw=kw)
        simulator = Simulator(netlist)
        h_values = simulator.state_sequence("wm_hreg", 20)
        # H(t) latches SBox[state(t-1) ^ kw]; state(t) = t+1 from reset 0.
        expected = [SBOX[t ^ kw] for t in range(20)]
        assert h_values == expected

    def test_different_keys_different_h_sequences(self):
        netlist1, _r1, _h1 = watermarked_binary_counter(kw=0x11)
        netlist2, _r2, _h2 = watermarked_binary_counter(kw=0x22)
        seq1 = Simulator(netlist1).state_sequence("wm_hreg", 64)
        seq2 = Simulator(netlist2).state_sequence("wm_hreg", 64)
        assert seq1 != seq2

    def test_gray_counter_h_sequence(self):
        kw = 0xC3
        netlist = Netlist("ip")
        build_gray_counter(netlist, 8)
        attach_leakage_component(netlist, netlist.wires["ctr_state"], kw)
        h_values = Simulator(netlist).state_sequence("wm_hreg", 10)
        from repro.fsm.encoding import gray_encode

        expected = [SBOX[gray_encode(t, 8) ^ kw] for t in range(10)]
        assert h_values == expected


class TestLeakageSequenceModel:
    def test_matches_hardware(self):
        kw = 0x77
        netlist, _reg, _h = watermarked_binary_counter(kw=kw)
        hardware = Simulator(netlist).state_sequence("wm_hreg", 32)
        software = leakage_sequence(range(32), kw)
        assert hardware == software

    def test_rejects_bad_key(self):
        with pytest.raises(WatermarkKeyError):
            leakage_sequence([0], kw=999)


class TestFolding:
    def test_narrow_passes_through(self):
        assert fold_to_sbox_width(0x3F, 6) == 0x3F

    def test_eight_bit_identity(self):
        assert fold_to_sbox_width(0xAB, 8) == 0xAB

    def test_wide_folds_by_xor(self):
        assert fold_to_sbox_width(0x1FF, 9) == (0xFF ^ 0x01)

    def test_sixteen_bit_fold(self):
        assert fold_to_sbox_width(0xABCD, 16) == (0xCD ^ 0xAB)

    def test_wide_state_component_attaches(self):
        netlist = Netlist("wide")
        build_binary_counter(netlist, 12)
        h = attach_leakage_component(netlist, netlist.wires["ctr_state"], 0x5A)
        netlist.validate()
        values = Simulator(netlist).state_sequence("wm_hreg", 10)
        expected = [SBOX[fold_to_sbox_width(t, 12) ^ 0x5A] for t in range(10)]
        assert values == expected

    def test_narrow_state_component_attaches(self):
        netlist = Netlist("narrow")
        build_binary_counter(netlist, 4)
        attach_leakage_component(netlist, netlist.wires["ctr_state"], 0x5A)
        netlist.validate()
        values = Simulator(netlist).state_sequence("wm_hreg", 10)
        expected = [SBOX[(t % 16) ^ 0x5A] for t in range(10)]
        assert values == expected


class TestWatermarkedIPDataclass:
    def test_is_watermarked_flag(self):
        netlist, register, h_register = watermarked_binary_counter()
        ip = WatermarkedIP(
            name="x",
            netlist=netlist,
            state_register=register,
            kw=0x5A,
            fsm_kind="binary",
            h_register=h_register,
        )
        assert ip.is_watermarked
        assert "Kw=0x5a" in repr(ip)

    def test_unmarked_repr(self):
        netlist = Netlist("plain")
        register = build_binary_counter(netlist, 8)
        ip = WatermarkedIP(
            name="x",
            netlist=netlist,
            state_register=register,
            kw=None,
            fsm_kind="binary",
        )
        assert not ip.is_watermarked
        assert "unmarked" in repr(ip)
