"""Comparing the paper's verification with related-work baselines.

Three baselines from the paper's Section II are implemented in
:mod:`repro.baselines`; this example runs all of them next to the
paper's scheme on the same designs and summarises the trade-offs:

* output-mark insertion [16] — needs functional I/O access;
* added-state FSM watermark [12] — needs I/O access *and* pays FSM
  state overhead;
* spread-spectrum side-channel watermark (Becker et al.) [17] — power
  pin only, but requires dedicated PN-generator logic;
* this paper — power pin only, reuses the FSM the IP already has, and
  needs a reference device instead of a stored secret sequence.

Run with::

    python examples/baseline_comparison.py
"""

import numpy as np

from repro import (
    Device,
    MeasurementBench,
    PowerModel,
    ProcessParameters,
    WatermarkVerifier,
    build_paper_ip,
)
from repro.acquisition.bench import acquire_traces
from repro.baselines.becker import BeckerDetector, attach_pn_leakage
from repro.baselines.output_mark import (
    OutputMark,
    embed_output_mark,
    verify_output_mark,
)
from repro.baselines.state_insertion import (
    StateInsertionWatermark,
    embed_state_insertion,
    verify_state_insertion,
)
from repro.fsm.counters import build_binary_counter
from repro.fsm.machine import MealyMachine
from repro.fsm.watermark import WatermarkedIP
from repro.hdl.netlist import Netlist


def host_mealy() -> MealyMachine:
    """A small bus-arbiter-like Mealy machine to watermark."""
    states = list(range(6))
    return MealyMachine(
        states=states,
        alphabet=[0, 1],
        transition=lambda s, x: (s + 1) % 6 if x else max(s - 1, 0),
        output=lambda s, x: s,
        initial_state=0,
    )


def main() -> None:
    print("=== Baseline 1: output-mark insertion [16] ===")
    mark = OutputMark(trigger=(1, 0, 1, 1), signature=(0xA, 0xB, 0xC, 0xD))
    marked = embed_output_mark(host_mealy(), mark)
    print(f"verification via trigger inputs: {verify_output_mark(marked, mark)}")
    print("requires: functional access to IP inputs AND outputs\n")

    print("=== Baseline 2: added-state FSM watermark [12] ===")
    wm = StateInsertionWatermark(steering_word=(1, 1, 1), signature=(7, 8, 9))
    marked_fsm, stats = embed_state_insertion(host_mealy(), wm)
    print(f"verification via steering word: {verify_state_insertion(marked_fsm, wm)}")
    print(
        f"overhead: {stats.added_states} extra states on "
        f"{stats.original_states} ({stats.overhead_ratio:.0%})"
    )
    print("requires: functional I/O access; pays FSM redundancy\n")

    print("=== Baseline 3: spread-spectrum side-channel watermark [17] ===")
    netlist = Netlist("host")
    register = build_binary_counter(netlist, 8)
    attach_pn_leakage(netlist, seed=0x2D2D, leak_width=6)
    ip = WatermarkedIP(
        name="host", netlist=netlist, state_register=register,
        kw=None, fsm_kind="binary",
    )
    device = Device("becker-dev", ip, PowerModel(), default_cycles=256)
    traces = acquire_traces(device, 300, rng=4)
    detection = BeckerDetector(seed=0x2D2D).detect(traces, samples_per_cycle=4)
    print(
        f"matched-filter detection: {detection.detected} "
        f"(rho = {detection.correlation:.3f} vs threshold {detection.threshold})"
    )
    print("requires: power pin only + stored PN secret + extra PN generator\n")

    print("=== This paper: reference-device correlation verification ===")
    refd = Device("RefD", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
    genuine = Device("DUT", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
    other = Device("DUT-other", build_paper_ip("IP_C"), PowerModel(), default_cycles=256)
    parameters = ProcessParameters(k=50, m=20, n1=400, n2=10_000)
    bench = MeasurementBench(seed=33)
    report = WatermarkVerifier(parameters).identify(
        bench.measure(refd, parameters.n1),
        {
            "DUT": bench.measure(genuine, parameters.n2),
            "DUT-other": bench.measure(other, parameters.n2),
        },
        rng=6,
    )
    for verdict in report.verdicts:
        print(
            f"[{verdict.distinguisher:>14}] -> {verdict.chosen_dut} "
            f"({verdict.confidence_percent:.1f}%)"
        )
    print(
        "requires: power pin only + one trusted reference device; "
        "zero added FSM states, leakage keyed by Kw"
    )


if __name__ == "__main__":
    main()
