"""Parameter planning: derive (n1, n2, k, m) the paper's way.

Section V.B's recipe:

1. choose the acceptable probability P(zeta) that a DUT trace is
   reused across the m random k-selections — this fixes alpha;
2. pick the smallest m whose f_alpha(m) is close enough to its limit;
3. pick k freely (it only costs acquisition time; it never changes
   P(zeta));
4. set n2 = alpha * k * m and n1 >= k.

This example reproduces Fig. 5, cross-checks the closed form by
Monte-Carlo simulation of the actual selection code, and prints plans
for a few operating points.

Run with::

    python examples/parameter_planning.py
"""

from repro.analysis.montecarlo import estimate_reuse_probability
from repro.core.parameters import (
    alpha_for_target_probability,
    plan_parameters,
    reuse_probability,
    reuse_probability_limit,
)
from repro.experiments.figure5 import figure5_data, render_figure5


def main() -> None:
    # Fig. 5 for the paper's alpha = 10.
    data = figure5_data(alpha=10.0)
    print(render_figure5(data))
    print(f"\nP(zeta) at the paper's m = 20: {reuse_probability(10.0, 20):.6f}")
    print(f"(the paper reports 0.0045)")

    # Cross-check the closed form against the real selection machinery.
    estimate = estimate_reuse_probability(alpha=10.0, k=50, m=20, trials=2000, rng=0)
    print(
        f"Monte-Carlo on U_X(k) batches: {estimate.estimate:.5f} "
        f"(closed form {estimate.closed_form:.5f}, z = {estimate.z_score:+.2f})"
    )

    # Plan a few operating points.
    print("\nDerived plans (alpha chosen from a target P(zeta)):")
    print(f"{'target P':>10} {'alpha':>7} {'m':>4} {'k':>5} {'n1':>6} {'n2':>8}")
    for target in (0.01, 0.005, 0.001):
        alpha = alpha_for_target_probability(target)
        plan = plan_parameters(k=50, alpha=alpha)
        p = plan.parameters
        print(
            f"{target:>10} {alpha:>7.2f} {p.m:>4} {p.k:>5} {p.n1:>6} {p.n2:>8}"
        )

    # And the paper's own plan.
    paper = plan_parameters(k=50, alpha=10.0, m=20)
    print(
        f"\npaper plan: alpha=10, m=20, k=50 -> n2 = {paper.parameters.n2} "
        f"traces, P(zeta) = {paper.p_zeta:.4f} "
        f"(limit {reuse_probability_limit(10.0):.4f})"
    )


if __name__ == "__main__":
    main()
