"""Clone detection: find which product embeds your IP without paying.

Scenario (paper Section I): an IP designer suspects that one of four
competitor products contains an unlicensed copy ("clone") of their
watermarked FSM IP.  They have one trusted reference device and can
only measure the competitors' power pins — no access to internal state
or I/O protocols.

This reruns the paper's full Section IV experiment: four reference IPs
against four DUTs, printing Table I / Table II-style statistics and
the verdicts of both distinguishers.

Run with::

    python examples/clone_detection.py
"""

from repro.core.report import render_verdicts
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.experiments.tables import render_table1, render_table2
from repro.experiments.designs import EXPECTED_MATCHES


def main() -> None:
    print("Running the paper's 4x4 campaign (this takes a few seconds)...")
    outcome = run_campaign(CampaignConfig(measurement_seed=42, analysis_seed=7))

    print("\nMeans of the correlation sets (Table I layout):")
    print(render_table1(outcome))
    print("\nVariances of the correlation sets (Table II layout):")
    print(render_table2(outcome))

    print("\nVerdicts:")
    for ref in outcome.ref_order:
        print(render_verdicts(outcome.reports[ref]))
        expected = EXPECTED_MATCHES[ref]
        print(f"  ground truth: {expected}")
        print()

    accuracy_mean = outcome.accuracy("higher-mean")
    accuracy_var = outcome.accuracy("lower-variance")
    print(f"higher-mean identification accuracy:    {accuracy_mean:.0%}")
    print(f"lower-variance identification accuracy: {accuracy_var:.0%}")
    print(
        "\nThe variance confidence distances dominate the mean ones — "
        "the paper's Section V.A finding."
    )


if __name__ == "__main__":
    main()
