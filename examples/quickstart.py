"""Quickstart: verify that a device under test contains your watermarked IP.

This walks the complete pipeline of the paper on two simulated devices:

1. design an 8-bit Gray-counter IP and embed the leakage component (Kw);
2. "manufacture" a trusted reference device (RefD) and a device under
   test (DUT) on different dies;
3. measure power traces on both (the paper's ``Pw`` step);
4. run the correlation computation process and read the verdict.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Device,
    MeasurementBench,
    PowerModel,
    ProcessParameters,
    VariationModel,
    WatermarkVerifier,
    build_paper_ip,
)

import numpy as np


def main() -> None:
    # 1. Two devices carrying the same watermarked IP (IP_B: Gray
    #    counter + Kw1) and one carrying a different key (IP_C).
    power_model = PowerModel()
    variation = VariationModel()
    rng = np.random.default_rng(1)

    def manufacture(name, ip_name):
        ip = build_paper_ip(ip_name)
        component_names = [c.name for c in ip.netlist.components]
        return Device(
            name,
            ip,
            power_model,
            variation=variation.sample(component_names, rng),
        )

    refd = manufacture("RefD", "IP_B")
    genuine = manufacture("DUT-genuine", "IP_B")
    wrong_key = manufacture("DUT-wrong-key", "IP_C")

    # 2. Measure: n1 = 400 reference traces, n2 = 10 000 per DUT
    #    (the paper's parameters; see examples/parameter_planning.py
    #    for how these numbers are derived).
    parameters = ProcessParameters(k=50, m=20, n1=400, n2=10_000)
    bench = MeasurementBench(seed=42)
    t_ref = bench.measure(refd, parameters.n1)
    t_duts = {
        device.name: bench.measure(device, parameters.n2)
        for device in (genuine, wrong_key)
    }

    # 3. Verify.
    verifier = WatermarkVerifier(parameters)
    report = verifier.identify(t_ref, t_duts, rng=7)

    # 4. Read the verdict.
    print("Correlation statistics per device under test:")
    for name in t_duts:
        result = report.results[name]
        print(
            f"  {name:>15}: mean rho = {result.mean:+.3f}   "
            f"v(C) = {result.variance:.3e}"
        )
    print()
    for verdict in report.verdicts:
        print(
            f"[{verdict.distinguisher:>14}] the watermarked IP is in "
            f"{verdict.chosen_dut} (confidence {verdict.confidence_percent:.1f}%)"
        )
    assert all(v.chosen_dut == "DUT-genuine" for v in report.verdicts)
    print("\nBoth distinguishers agree: the genuine device is identified.")


if __name__ == "__main__":
    main()
