"""Counterfeit screening: find the unmarked device in a production lot.

Scenario (paper Section I, second objective): every device in a lot is
supposed to contain the watermarked IP; counterfeits slipped in that
either lack the watermark entirely or were re-marked with a different
key.  Screening is an *absolute* per-device test against the reference
— not a pick-the-best identification.

On a highly linear FSM even an unmarked counterfeit correlates
strongly with the reference (the counter's switching dominates the
power trace), so the pass/fail floor cannot be a universal constant.
The practical recipe, implemented in
:meth:`~repro.core.verification.WatermarkVerifier.calibrate_mean_floor`,
is to measure a second trusted device (the "golden" DUT) and place the
floor a few standard deviations below the genuine correlation level.

Run with::

    python examples/counterfeit_screening.py
"""

import numpy as np

from repro import (
    Device,
    MeasurementBench,
    PowerModel,
    ProcessParameters,
    VariationModel,
    WatermarkVerifier,
)
from repro.experiments.designs import build_ip, build_paper_ip


def main() -> None:
    power_model = PowerModel()
    variation = VariationModel()
    rng = np.random.default_rng(3)

    def manufacture(name, ip):
        component_names = [c.name for c in ip.netlist.components]
        return Device(
            name, ip, power_model, variation=variation.sample(component_names, rng)
        )

    # Trusted hardware: the reference device plus a golden DUT used
    # only to calibrate the screening floor.
    refd = manufacture("RefD", build_paper_ip("IP_B"))
    golden = manufacture("golden", build_paper_ip("IP_B"))

    # The lot: three genuine devices, one counterfeit with a foreign
    # key, and one counterfeit with no watermark at all.
    lot = {
        "unit-001": manufacture("unit-001", build_paper_ip("IP_B")),
        "unit-002": manufacture("unit-002", build_paper_ip("IP_B")),
        "unit-003": manufacture("unit-003", build_paper_ip("IP_B")),
        "unit-004": manufacture("unit-004", build_ip("fake", "gray", 0x99)),
        "unit-005": manufacture("unit-005", build_ip("bare", "gray", None)),
    }
    genuine = {"unit-001", "unit-002", "unit-003"}

    parameters = ProcessParameters(k=50, m=20, n1=400, n2=10_000)
    bench = MeasurementBench(seed=11)
    t_ref = bench.measure(refd, parameters.n1)
    t_golden = bench.measure(golden, parameters.n2)
    t_lot = {name: bench.measure(dev, parameters.n2) for name, dev in lot.items()}

    verifier = WatermarkVerifier(parameters)
    floor = verifier.calibrate_mean_floor(t_ref, t_golden, rng=4, n_sigmas=10)
    print(f"calibrated screening floor (golden DUT - 10 sigma): {floor:.4f}\n")

    screenings = verifier.screen(t_ref, t_lot, rng=5, mean_floor=floor)

    print(f"{'device':>10}  {'mean rho':>9}  {'v(C)':>10}  verdict")
    for screening in sorted(screenings, key=lambda s: s.device_name):
        verdict = "GENUINE" if screening.authentic else "COUNTERFEIT"
        print(
            f"{screening.device_name:>10}  {screening.mean:+9.3f}  "
            f"{screening.variance:10.2e}  {verdict}"
        )
        if not screening.authentic:
            print(f"{'':>10}  reason: {screening.reason}")

    flagged = {s.device_name for s in screenings if not s.authentic}
    assert flagged == set(lot) - genuine, (flagged, genuine)
    print("\nExactly the two counterfeits were flagged.")


if __name__ == "__main__":
    main()
