"""Adversarial analysis: what can an attacker do about the watermark?

Three attacks against the paper's scheme, run end to end:

1. **strip** the leakage component after full netlist reverse
   engineering — functionality preserved, but the clone falls out of
   the matching cluster and screening flags it;
2. **mask** the signature under injected noise — the defender answers
   by raising k (averaging wins back sqrt(k));
3. **recover the key** with a 256-template CPA — succeeds, which is
   exactly why the scheme's value is legal proof of ownership rather
   than key secrecy.

Run with::

    python examples/attack_analysis.py
"""

from repro import (
    Device,
    MeasurementBench,
    PowerModel,
    ProcessParameters,
    WatermarkVerifier,
    build_paper_ip,
)
from repro.acquisition.bench import acquire_traces
from repro.attacks import (
    defender_k_escalation,
    masking_sweep,
    strip_watermark,
    template_key_search,
)
from repro.experiments.designs import KW1


def attack_1_strip() -> None:
    print("=== Attack 1: strip the leakage component ===")
    refd = Device("RefD", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)
    genuine = Device("genuine", build_paper_ip("IP_B"), PowerModel(), default_cycles=256)

    stripped_ip = build_paper_ip("IP_B")
    report = strip_watermark(stripped_ip)
    print(f"adversary removed: {', '.join(report.removed_components)}")
    stripped = Device("stripped", stripped_ip, PowerModel(), default_cycles=256)

    params = ProcessParameters(k=50, m=20, n1=400, n2=10_000)
    bench = MeasurementBench(seed=8)
    t_ref = bench.measure(refd, params.n1)
    t_golden = bench.measure(genuine, params.n2)
    verifier = WatermarkVerifier(params)
    floor = verifier.calibrate_mean_floor(t_ref, t_golden, rng=1)
    screenings = verifier.screen(
        t_ref,
        {"stripped-clone": bench.measure(stripped, params.n2)},
        rng=2,
        mean_floor=floor,
    )
    s = screenings[0]
    print(
        f"stripped clone: mean rho = {s.mean:.3f} vs floor {floor:.3f} "
        f"-> {'CAUGHT' if not s.authentic else 'missed'}\n"
    )


def attack_2_mask() -> None:
    print("=== Attack 2: mask the signature under injected noise ===")
    points = masking_sweep([1.0, 4.0, 8.0], seed=5)
    for point in points:
        print(
            f"  attacker noise sigma={point.noise_sigma:4.1f}: "
            f"mean-acc {point.mean_accuracy:.2f}, "
            f"variance-acc {point.variance_accuracy:.2f}, "
            f"matching rho {point.matching_mean:.3f}"
        )
    print("defender raises k under sigma = 2.0 (variance distinguisher"
          " recovers once k >> sigma^2):")
    for k, point in defender_k_escalation(2.0, (10, 40, 160)).items():
        print(
            f"  k={k:>4}: mean-acc {point.mean_accuracy:.2f}, "
            f"variance-acc {point.variance_accuracy:.2f}"
        )
    print()


def attack_3_key_search() -> None:
    print("=== Attack 3: template search for the 8-bit key ===")
    device = Device("DUT", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
    traces = acquire_traces(device, 300, rng=1)
    result = template_key_search(
        traces, list(range(256)), KW1, samples_per_cycle=4, n_average=300
    )
    print(
        f"true key 0x{result.true_key:02X}: recovered = {result.succeeded}, "
        f"rank {result.rank_of_true_key()}, margin {result.margin:.3f}"
    )
    print(
        "-> Kw resists accidental collision, not deliberate physical "
        "search; ownership proof comes from the court scenario."
    )


def main() -> None:
    attack_1_strip()
    attack_2_mask()
    attack_3_key_search()


if __name__ == "__main__":
    main()
