"""Watermarking an arbitrary FSM — "any digital system which possesses
a FSM" (paper Section II).

The paper evaluates on counters (the worst case), but the method is
FSM-generic.  This example defines a small protocol-controller Moore
machine (an idealised packet receiver), synthesises it to a netlist
with the library's FSM builder, attaches the leakage component with
two different keys, and shows the verification separates them.

Run with::

    python examples/custom_fsm_watermarking.py
"""

import numpy as np

from repro import (
    Device,
    MeasurementBench,
    PowerModel,
    ProcessParameters,
    WatermarkVerifier,
)
from repro.fsm.builder import build_fsm
from repro.fsm.machine import MooreMachine
from repro.fsm.properties import linearity_score, period, verification_sequence_length
from repro.fsm.watermark import WatermarkedIP, attach_leakage_component
from repro.hdl.netlist import Netlist


def packet_receiver() -> MooreMachine:
    """IDLE -> SYNC -> HEADER -> PAYLOAD x4 -> CRC -> ACK -> IDLE."""
    states = [
        "idle", "sync", "header",
        "payload0", "payload1", "payload2", "payload3",
        "crc", "ack",
    ]
    order = {state: states[(i + 1) % len(states)] for i, state in enumerate(states)}
    return MooreMachine(states, order, "idle")


def build_device(name: str, kw: int, seed: int) -> Device:
    machine = packet_receiver()
    netlist = Netlist(name)
    register = build_fsm(netlist, machine, encoding="binary")
    h_register = attach_leakage_component(netlist, netlist.wires["fsm_state"], kw)
    ip = WatermarkedIP(
        name=name,
        netlist=netlist,
        state_register=register,
        kw=kw,
        fsm_kind="packet-receiver",
        h_register=h_register,
    )
    # Measure a whole number of FSM periods (paper Section IV.A: the
    # state sequence must be longer than the FSM's periodicity).
    cycles = 28 * verification_sequence_length(machine)
    return Device(name, ip, PowerModel(), default_cycles=cycles)


def main() -> None:
    machine = packet_receiver()
    print(f"packet receiver FSM: {machine.n_states} states")
    print(f"period: {period(machine)} cycles")
    codes = [i for i in range(machine.n_states)] * 2
    print(f"linearity score of its binary coding: {linearity_score(codes):.2f}")
    print(
        f"minimum verification sequence: "
        f"{verification_sequence_length(machine)} cycles\n"
    )

    refd = build_device("RefD(Kw=0x3C)", kw=0x3C, seed=0)
    genuine = build_device("DUT-licensed", kw=0x3C, seed=1)
    forged = build_device("DUT-forged-key", kw=0xA7, seed=2)

    parameters = ProcessParameters(k=50, m=20, n1=400, n2=10_000)
    bench = MeasurementBench(seed=21)
    t_ref = bench.measure(refd, parameters.n1)
    t_duts = {
        device.name: bench.measure(device, parameters.n2)
        for device in (genuine, forged)
    }

    verifier = WatermarkVerifier(parameters)
    report = verifier.identify(t_ref, t_duts, rng=9)
    for name, result in report.results.items():
        print(f"{name:>16}: mean rho = {result.mean:+.3f}  v(C) = {result.variance:.2e}")
    for verdict in report.verdicts:
        print(
            f"[{verdict.distinguisher:>14}] -> {verdict.chosen_dut} "
            f"({verdict.confidence_percent:.1f}%)"
        )
    assert all(v.chosen_dut == "DUT-licensed" for v in report.verdicts)
    print("\nThe licensed device is identified; the forged key does not collide.")


if __name__ == "__main__":
    main()
