"""Exporting a watermarked IP to synthesisable Verilog and VCD.

The simulated substrate is a means, not the end: a real deployment of
the paper's scheme puts the watermarked netlist on an FPGA.  This
example builds IP_B (Gray counter + leakage component with Kw1),
writes a synthesisable Verilog module, and dumps a VCD waveform of the
first FSM period for inspection in GTKWave.

Run with::

    python examples/rtl_export.py [output_dir]

Without an argument the files go to a fresh temporary directory, so
running the example never litters the working tree (pass an explicit
directory — e.g. ``rtl_out`` — to keep the files around).  The
exported module round-trips: ``repro.hdl.verilog_parse`` reads it
back into a bit-identical netlist (see ``tests/test_verilog_parse.py``).
"""

import os
import sys
import tempfile

from repro.experiments.designs import build_paper_ip
from repro.hdl.vcd import write_vcd
from repro.hdl.verilog import export_testbench, export_verilog


def main() -> None:
    if len(sys.argv) > 1:
        output_dir = sys.argv[1]
        os.makedirs(output_dir, exist_ok=True)
    else:
        output_dir = tempfile.mkdtemp(prefix="rtl_export_")

    ip = build_paper_ip("IP_B")
    verilog_path = os.path.join(output_dir, "ip_b.v")
    testbench_path = os.path.join(output_dir, "ip_b_tb.v")
    vcd_path = os.path.join(output_dir, "ip_b.vcd")

    verilog = export_verilog(ip.netlist, module_name="ip_b_watermarked")
    with open(verilog_path, "w", encoding="ascii") as handle:
        handle.write(verilog)
    testbench = export_testbench(
        ip.netlist, module_name="ip_b_watermarked", cycles=256
    )
    with open(testbench_path, "w", encoding="ascii") as handle:
        handle.write(testbench)

    write_vcd(
        ip.netlist,
        cycles=256,
        path=vcd_path,
        wire_names=["ctr_state", "wm_addr", "wm_sbox_data", "wm_h"],
    )

    print(f"wrote {verilog_path} ({len(verilog.splitlines())} lines of Verilog)")
    print(f"wrote {testbench_path} (smoke testbench, dumps its own VCD)")
    print(f"wrote {vcd_path} (one full FSM period, 4 signals)")
    print()
    print("Verilog module interface:")
    for line in verilog.splitlines():
        if line.startswith("module") or "input " in line or "output " in line:
            print(f"  {line.strip().rstrip(',')}")
        if line == ");":
            break
    print()
    print(
        "The SBox is emitted as a case-table ROM and the watermark key "
        f"Kw=0x{ip.kw:02X} as a constant — synthesis will map them to "
        "block RAM and LUTs exactly as in the paper's Cyclone III flow."
    )


if __name__ == "__main__":
    main()
