"""Accuracy-vs-noise surface via the scenario-sweep subsystem.

The paper evaluates its verification scheme at one noise level; this
example sweeps the oscilloscope noise sigma against the DUT trace
budget and prints the resulting identification-accuracy surface plus
the screening ROC AUC per noise level:

1. declare the sweep once (:class:`repro.SweepSpec`) — a grid over
   ``noise.sigma`` and ``parameters.n2`` at a reduced, fast parameter
   point;
2. execute it (:func:`repro.run_sweep`) into a content-addressed
   :class:`repro.SweepStore` — rerunning this script reuses every
   scenario already on disk, and the result bytes are identical for
   any worker count;
3. aggregate the store into tidy tables.

Run with::

    python examples/noise_sweep.py [store_dir]
"""

import sys
import tempfile

from repro import GridAxis, SweepSpec, SweepStore, expand_scenarios, run_sweep
from repro.sweeps.aggregate import accuracy_pivot, roc_by_axis, tidy_accuracy
from repro.analysis.aggregate import render_rows


def main(store_dir: str = "") -> None:
    # 1. The sweep: 4 noise levels x 3 trace budgets, reduced-cost
    #    correlation parameters (k = 8, m = 8, alpha = 4..16).
    spec = SweepSpec(
        name="noise-surface",
        grid=(
            GridAxis("noise.sigma", (0.5, 1.0, 1.5, 2.0)),
            GridAxis("parameters.n2", (256, 512, 1024)),
        ),
        base={"parameters.k": 8, "parameters.m": 8, "parameters.n1": 64},
        seed=2014,
    )
    scenarios = expand_scenarios(spec)

    # 2. Execute into the (resumable) store.
    store = SweepStore(store_dir or tempfile.mkdtemp(prefix="noise_sweep_"))
    report = run_sweep(spec, store, n_workers=1)
    print(
        f"{report.n_scenarios} scenarios: executed {report.n_executed}, "
        f"reused {report.n_cached} from {store.root}"
    )

    # 3. Aggregate: the accuracy surface and the screening AUC.
    rows = tidy_accuracy(store, scenarios)
    for distinguisher in ("higher-mean", "lower-variance"):
        print()
        print(f"identification accuracy [{distinguisher}]:")
        print(
            accuracy_pivot(
                rows, "noise.sigma", "parameters.n2", distinguisher=distinguisher
            )
        )
    print()
    print("counterfeit-screening AUC by noise level:")
    print(render_rows(roc_by_axis(store, "noise.sigma", scenarios)))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "")
