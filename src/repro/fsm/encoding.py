"""State encodings: binary, Gray, one-hot and Johnson.

The paper's worst-case FSMs are an 8-bit binary counter and an 8-bit
Gray counter; encodings matter because they determine the register
Hamming-distance sequence — the very signal the power side channel
carries.  (A Gray counter switches exactly one state bit per step, so
its state register contributes almost no time-varying power, which is
what makes it the hard case.)
"""

from __future__ import annotations

from typing import List

from repro.hdl.wires import hamming_weight, mask


def binary_encode(index: int, width: int) -> int:
    """Natural binary encoding of ``index`` on ``width`` bits."""
    if not 0 <= index <= mask(width):
        raise ValueError(f"index {index} does not fit in {width} bits")
    return index


def binary_decode(code: int, width: int) -> int:
    """Inverse of :func:`binary_encode`."""
    if not 0 <= code <= mask(width):
        raise ValueError(f"code {code} does not fit in {width} bits")
    return code


def gray_encode(index: int, width: int) -> int:
    """Reflected-binary Gray code of ``index``."""
    if not 0 <= index <= mask(width):
        raise ValueError(f"index {index} does not fit in {width} bits")
    return index ^ (index >> 1)


def gray_decode(code: int, width: int) -> int:
    """Inverse Gray code (prefix XOR from the MSB down)."""
    if not 0 <= code <= mask(width):
        raise ValueError(f"code {code} does not fit in {width} bits")
    index = 0
    accumulator = 0
    for position in range(width - 1, -1, -1):
        accumulator ^= (code >> position) & 1
        index |= accumulator << position
    return index


def one_hot_encode(index: int, n_states: int) -> int:
    """One-hot encoding: state i sets only bit i."""
    if not 0 <= index < n_states:
        raise ValueError(f"index {index} out of range for {n_states} states")
    return 1 << index


def one_hot_decode(code: int, n_states: int) -> int:
    """Inverse one-hot encoding; rejects non-one-hot codes."""
    if code <= 0 or hamming_weight(code) != 1:
        raise ValueError(f"code {code:#x} is not one-hot")
    index = code.bit_length() - 1
    if index >= n_states:
        raise ValueError(f"code {code:#x} out of range for {n_states} states")
    return index


def johnson_encode(index: int, width: int) -> int:
    """Johnson (twisted-ring) counter code for step ``index``.

    A ``width``-bit Johnson counter cycles through ``2 * width`` codes:
    it fills with ones from the LSB, then drains.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    period = 2 * width
    step = index % period
    if step <= width:
        return mask(width) >> (width - step) if step else 0
    ones = period - step
    return (mask(width) >> (width - ones) << (width - ones)) if ones else 0


def johnson_sequence(width: int) -> List[int]:
    """The full period of a ``width``-bit Johnson counter."""
    return [johnson_encode(step, width) for step in range(2 * width)]


def encoding_hd_profile(codes: List[int]) -> List[int]:
    """Hamming distances along a cyclic code sequence.

    Entry ``i`` is HD(codes[i], codes[(i+1) % n]).  For a Gray sequence
    this is all ones; for binary counting it is the carry-ripple
    profile (1, 2, 1, 3, 1, 2, 1, 4, ...).
    """
    if not codes:
        raise ValueError("code sequence must be non-empty")
    n = len(codes)
    return [
        hamming_weight(codes[i] ^ codes[(i + 1) % n]) for i in range(n)
    ]
