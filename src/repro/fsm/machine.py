"""Generic finite state machines.

The paper targets the FSM of an arbitrary digital IP; this module
provides the abstract machine model the rest of the library builds on.
A :class:`MooreMachine` is defined by a transition map and per-state
outputs; :class:`MealyMachine` adds input-dependent outputs.  Both
expose the state sequence from any initial state, which the property
analysis (:mod:`repro.fsm.properties`) and the netlist builder
(:mod:`repro.fsm.builder`) consume.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

State = Hashable
Symbol = Hashable


class FSMDefinitionError(Exception):
    """The machine definition is inconsistent (missing transitions...)."""


class MooreMachine:
    """A deterministic Moore machine over a single implicit input.

    The paper's designs are input-independent ("it is not necessary to
    send specific input vectors"), so the core model is an autonomous
    machine: one successor per state.  Use :class:`MealyMachine` for
    input-dependent systems.
    """

    def __init__(
        self,
        states: Iterable[State],
        transitions: Dict[State, State],
        initial_state: State,
        outputs: Optional[Dict[State, int]] = None,
    ):
        self.states: Tuple[State, ...] = tuple(states)
        if not self.states:
            raise FSMDefinitionError("a machine needs at least one state")
        if len(set(self.states)) != len(self.states):
            raise FSMDefinitionError("duplicate states in machine definition")
        state_set = set(self.states)
        for source, target in transitions.items():
            if source not in state_set:
                raise FSMDefinitionError(f"transition from unknown state {source!r}")
            if target not in state_set:
                raise FSMDefinitionError(f"transition to unknown state {target!r}")
        missing = state_set - set(transitions)
        if missing:
            raise FSMDefinitionError(
                f"states without outgoing transition: {sorted(map(repr, missing))}"
            )
        if initial_state not in state_set:
            raise FSMDefinitionError(f"unknown initial state {initial_state!r}")
        self.transitions = dict(transitions)
        self.initial_state = initial_state
        self.outputs = dict(outputs) if outputs is not None else {}

    @property
    def n_states(self) -> int:
        return len(self.states)

    def successor(self, state: State) -> State:
        """The unique successor of ``state``."""
        return self.transitions[state]

    def output(self, state: State) -> int:
        """Moore output in ``state`` (0 if no output map was given)."""
        return self.outputs.get(state, 0)

    def run(self, n_steps: int, initial_state: Optional[State] = None) -> List[State]:
        """State sequence of length ``n_steps`` starting from the initial
        state (the start state itself is the first element)."""
        if n_steps <= 0:
            raise ValueError(f"n_steps must be positive, got {n_steps}")
        state = self.initial_state if initial_state is None else initial_state
        if state not in self.transitions:
            raise FSMDefinitionError(f"unknown start state {state!r}")
        sequence = [state]
        for _step in range(n_steps - 1):
            state = self.successor(state)
            sequence.append(state)
        return sequence


class MealyMachine:
    """A deterministic Mealy machine with an explicit input alphabet."""

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transition: Callable[[State, Symbol], State],
        output: Callable[[State, Symbol], int],
        initial_state: State,
    ):
        self.states = tuple(states)
        self.alphabet = tuple(alphabet)
        if not self.states:
            raise FSMDefinitionError("a machine needs at least one state")
        if not self.alphabet:
            raise FSMDefinitionError("a Mealy machine needs a non-empty alphabet")
        if initial_state not in set(self.states):
            raise FSMDefinitionError(f"unknown initial state {initial_state!r}")
        self._transition = transition
        self._output = output
        self.initial_state = initial_state

    def step(self, state: State, symbol: Symbol) -> Tuple[State, int]:
        """One transition: returns (next state, output)."""
        if symbol not in self.alphabet:
            raise ValueError(f"symbol {symbol!r} not in alphabet")
        next_state = self._transition(state, symbol)
        if next_state not in set(self.states):
            raise FSMDefinitionError(
                f"transition function left the state space: {next_state!r}"
            )
        return next_state, self._output(state, symbol)

    def run(self, symbols: Iterable[Symbol]) -> Tuple[List[State], List[int]]:
        """Feed a symbol sequence; returns (visited states, outputs)."""
        state = self.initial_state
        states = [state]
        outputs: List[int] = []
        for symbol in symbols:
            state, out = self.step(state, symbol)
            states.append(state)
            outputs.append(out)
        return states, outputs

    def as_autonomous(self, driving_symbol: Symbol) -> MooreMachine:
        """Freeze one input symbol, yielding an autonomous Moore machine.

        This mirrors the paper's setup where "the same input sequence is
        sent to the four IPs": under a fixed input, any Mealy machine
        becomes an autonomous state-sequence generator.
        """
        transitions = {
            state: self.step(state, driving_symbol)[0] for state in self.states
        }
        outputs = {
            state: self.step(state, driving_symbol)[1] for state in self.states
        }
        return MooreMachine(self.states, transitions, self.initial_state, outputs)
