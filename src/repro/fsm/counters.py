"""Counter FSMs and their netlist realisations.

The paper's evaluation deliberately uses the *worst case* FSMs for a
power side channel: 8-bit binary and Gray counters ("extremely linear,
cyclic and the amount of information leaked by the power consumption
signal is limited").  This module provides both the abstract machines
(for analysis) and synthesisable netlists (for power simulation).

The Gray counter is realised the standard way — an internal binary
counter plus a binary-to-Gray converter on the state output — so its
power signature still contains the binary carry-ripple pattern, shared
with the plain binary counter.  That shared component is what produces
the high cross-correlations between different IPs in the paper's
Table I.
"""

from __future__ import annotations

from typing import List

from typing import Sequence

from repro.fsm.encoding import gray_encode, johnson_sequence
from repro.fsm.machine import MooreMachine
from repro.hdl.combinational import BinaryToGray, Incrementer, LookupLogic
from repro.hdl.io import ClockTree
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.wires import mask

#: Clock-tree load charged per register bit (buffer fan-out model).
CLOCK_LOAD_PER_BIT = 1.5


def binary_counter_machine(width: int) -> MooreMachine:
    """Abstract ``width``-bit binary counter (period ``2**width``)."""
    n = 1 << width
    states = range(n)
    transitions = {i: (i + 1) % n for i in states}
    outputs = {i: i for i in states}
    return MooreMachine(states, transitions, 0, outputs)


def gray_counter_machine(width: int) -> MooreMachine:
    """Abstract ``width``-bit Gray counter over Gray-coded states."""
    n = 1 << width
    codes = [gray_encode(i, width) for i in range(n)]
    transitions = {codes[i]: codes[(i + 1) % n] for i in range(n)}
    outputs = {code: code for code in codes}
    return MooreMachine(codes, transitions, codes[0], outputs)


def johnson_counter_machine(width: int) -> MooreMachine:
    """Abstract ``width``-bit Johnson counter (period ``2 * width``)."""
    codes = johnson_sequence(width)
    transitions = {codes[i]: codes[(i + 1) % len(codes)] for i in range(len(codes))}
    outputs = {code: code for code in codes}
    return MooreMachine(codes, transitions, codes[0], outputs)


def lfsr_machine(width: int, taps: List[int], seed: int = 1) -> MooreMachine:
    """Fibonacci LFSR as a Moore machine.

    ``taps`` lists the bit positions (LSB = 0) XORed into the feedback.
    A maximal-length tap set yields period ``2**width - 1``; state 0 is
    a fixed point and must not be used as the seed.
    """
    if seed == 0:
        raise ValueError("LFSR seed must be non-zero (0 is a fixed point)")
    if not 0 < seed <= mask(width):
        raise ValueError(f"seed {seed} does not fit in {width} bits")
    for tap in taps:
        if not 0 <= tap < width:
            raise ValueError(f"tap {tap} out of range for width {width}")

    def step(state: int) -> int:
        feedback = 0
        for tap in taps:
            feedback ^= (state >> tap) & 1
        return ((state << 1) | feedback) & mask(width)

    states = set()
    state = seed
    while state not in states:
        states.add(state)
        state = step(state)
    ordered = sorted(states)
    transitions = {s: step(s) for s in ordered}
    outputs = {s: s for s in ordered}
    return MooreMachine(ordered, transitions, seed, outputs)


def build_binary_counter(
    netlist: Netlist, width: int, prefix: str = "ctr"
) -> DRegister:
    """Add an incrementing binary counter to ``netlist``.

    Returns the state register; its Q wire (named ``{prefix}_state``)
    carries the counter value and is the hook point for the watermark
    leakage component.
    """
    state = netlist.wire(f"{prefix}_state", width)
    next_state = netlist.wire(f"{prefix}_next", width)
    netlist.add(Incrementer(f"{prefix}_inc", state, next_state))
    register = DRegister(f"{prefix}_reg", next_state, state)
    netlist.add(register)
    netlist.add(ClockTree(f"{prefix}_clk", CLOCK_LOAD_PER_BIT * width))
    return register


def build_johnson_counter(
    netlist: Netlist, width: int, prefix: str = "ctr"
) -> DRegister:
    """Add a Johnson (twisted-ring) counter: shift left, feed back the
    inverted MSB.  Period ``2 * width``; exactly one bit toggles per
    cycle, like a Gray counter."""
    state = netlist.wire(f"{prefix}_state", width)
    next_state = netlist.wire(f"{prefix}_next", width)

    def twist(value: int) -> int:
        msb = (value >> (width - 1)) & 1
        return ((value << 1) | (msb ^ 1)) & mask(width)

    netlist.add(
        LookupLogic(f"{prefix}_twist", (state,), next_state, twist, glitch_factor=0.1)
    )
    register = DRegister(f"{prefix}_reg", next_state, state)
    netlist.add(register)
    netlist.add(ClockTree(f"{prefix}_clk", CLOCK_LOAD_PER_BIT * width))
    return register


def build_lfsr(
    netlist: Netlist,
    width: int,
    taps: Sequence[int],
    seed: int = 1,
    prefix: str = "ctr",
) -> DRegister:
    """Add a Fibonacci LFSR (shift left, XOR feedback from ``taps``).

    An LFSR is the opposite extreme from a counter: its state register
    switches pseudo-randomly, making it an *easy* case for the power
    side channel — useful as a contrast workload in experiments.
    """
    if seed == 0 or not 0 < seed <= mask(width):
        raise ValueError(f"seed must be a non-zero {width}-bit value")
    for tap in taps:
        if not 0 <= tap < width:
            raise ValueError(f"tap {tap} out of range for width {width}")
    state = netlist.wire(f"{prefix}_state", width, seed)
    next_state = netlist.wire(f"{prefix}_next", width)
    tap_tuple = tuple(taps)

    def step(value: int) -> int:
        feedback = 0
        for tap in tap_tuple:
            feedback ^= (value >> tap) & 1
        return ((value << 1) | feedback) & mask(width)

    netlist.add(
        LookupLogic(f"{prefix}_fb", (state,), next_state, step, glitch_factor=0.3)
    )
    register = DRegister(f"{prefix}_reg", next_state, state, reset_value=seed)
    netlist.add(register)
    netlist.add(ClockTree(f"{prefix}_clk", CLOCK_LOAD_PER_BIT * width))
    return register


def build_gray_counter(netlist: Netlist, width: int, prefix: str = "ctr") -> DRegister:
    """Add a Gray counter (internal binary counter + converter).

    The externally visible state wire ``{prefix}_state`` carries the
    Gray code; the internal binary register still ripples, exactly as
    in the common FPGA realisation.
    """
    binary = netlist.wire(f"{prefix}_binary", width)
    next_binary = netlist.wire(f"{prefix}_binary_next", width)
    gray_next = netlist.wire(f"{prefix}_gray_next", width)
    state = netlist.wire(f"{prefix}_state", width)

    netlist.add(Incrementer(f"{prefix}_inc", binary, next_binary))
    binary_register = DRegister(f"{prefix}_binreg", next_binary, binary)
    netlist.add(binary_register)
    netlist.add(BinaryToGray(f"{prefix}_b2g", next_binary, gray_next))
    gray_register = DRegister(f"{prefix}_reg", gray_next, state)
    netlist.add(gray_register)
    netlist.add(ClockTree(f"{prefix}_clk", CLOCK_LOAD_PER_BIT * 2 * width))
    return gray_register
