"""FSM framework: machines, encodings, counters, properties, synthesis
and the paper's watermark leakage component."""

from repro.fsm.builder import build_fsm, make_encoder, state_width
from repro.fsm.counters import (
    binary_counter_machine,
    build_binary_counter,
    build_gray_counter,
    build_johnson_counter,
    build_lfsr,
    gray_counter_machine,
    johnson_counter_machine,
    lfsr_machine,
)
from repro.fsm.encoding import (
    binary_decode,
    binary_encode,
    encoding_hd_profile,
    gray_decode,
    gray_encode,
    johnson_encode,
    johnson_sequence,
    one_hot_decode,
    one_hot_encode,
)
from repro.fsm.machine import FSMDefinitionError, MealyMachine, MooreMachine
from repro.fsm.properties import (
    hd_sequence,
    is_permutation,
    linearity_score,
    period,
    reachable_states,
    transient_length,
    verification_sequence_length,
)
from repro.fsm.watermark import (
    WatermarkedIP,
    WatermarkKeyError,
    attach_leakage_component,
    attach_wide_leakage_component,
    fold_to_sbox_width,
    leakage_sequence,
    wide_leakage_sequence,
)

__all__ = [
    "MooreMachine",
    "MealyMachine",
    "FSMDefinitionError",
    "binary_encode",
    "binary_decode",
    "gray_encode",
    "gray_decode",
    "one_hot_encode",
    "one_hot_decode",
    "johnson_encode",
    "johnson_sequence",
    "encoding_hd_profile",
    "binary_counter_machine",
    "gray_counter_machine",
    "johnson_counter_machine",
    "lfsr_machine",
    "build_binary_counter",
    "build_gray_counter",
    "build_johnson_counter",
    "build_lfsr",
    "build_fsm",
    "make_encoder",
    "state_width",
    "period",
    "transient_length",
    "reachable_states",
    "is_permutation",
    "hd_sequence",
    "linearity_score",
    "verification_sequence_length",
    "attach_leakage_component",
    "attach_wide_leakage_component",
    "leakage_sequence",
    "wide_leakage_sequence",
    "fold_to_sbox_width",
    "WatermarkedIP",
    "WatermarkKeyError",
]
