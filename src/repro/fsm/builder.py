"""Synthesis of abstract Moore machines into netlists.

Given a :class:`~repro.fsm.machine.MooreMachine` and a state encoding,
the builder emits a state register plus table-driven next-state logic —
the canonical synchronous FSM realisation.  This is how arbitrary
(non-counter) FSMs enter the power-simulation flow, demonstrating the
paper's claim that the method "can be adapted to any kind of digital
systems which possess a FSM".
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Optional

from repro.fsm.encoding import binary_encode, gray_encode, one_hot_encode
from repro.fsm.machine import MooreMachine
from repro.hdl.combinational import TransitionTable
from repro.hdl.io import ClockTree
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister

State = Hashable

#: Clock-tree load charged per register bit.
CLOCK_LOAD_PER_BIT = 1.5

#: Supported encoding styles.
ENCODINGS = ("binary", "gray", "one-hot")


def state_width(n_states: int, encoding: str) -> int:
    """Register width needed for ``n_states`` under an encoding style."""
    if n_states <= 0:
        raise ValueError(f"n_states must be positive, got {n_states}")
    if encoding == "one-hot":
        return n_states
    if encoding in ("binary", "gray"):
        return max(1, math.ceil(math.log2(n_states)))
    raise ValueError(f"unknown encoding {encoding!r}; choose from {ENCODINGS}")


def make_encoder(
    machine: MooreMachine, encoding: str
) -> Dict[State, int]:
    """Assign a code to every state of ``machine``.

    States are numbered in definition order; the chosen style maps
    numbers to codes.
    """
    width = state_width(machine.n_states, encoding)
    encoder: Callable[[int], int]
    if encoding == "binary":
        encoder = lambda i: binary_encode(i, width)  # noqa: E731
    elif encoding == "gray":
        encoder = lambda i: gray_encode(i, width)  # noqa: E731
    elif encoding == "one-hot":
        encoder = lambda i: one_hot_encode(i, machine.n_states)  # noqa: E731
    else:
        raise ValueError(f"unknown encoding {encoding!r}; choose from {ENCODINGS}")
    return {state: encoder(i) for i, state in enumerate(machine.states)}


def build_fsm(
    netlist: Netlist,
    machine: MooreMachine,
    encoding: str = "binary",
    prefix: str = "fsm",
    encoder: Optional[Dict[State, int]] = None,
) -> DRegister:
    """Synthesise ``machine`` into ``netlist``.

    Returns the state register; the wire ``{prefix}_state`` carries the
    encoded state and is the hook point for the watermark component.
    A custom ``encoder`` (state → code) may be supplied, e.g. to match
    a legacy encoding; otherwise one is derived from ``encoding``.
    """
    codes = encoder if encoder is not None else make_encoder(machine, encoding)
    if set(codes) != set(machine.states):
        raise ValueError("encoder must cover exactly the machine's states")
    if len(set(codes.values())) != len(codes):
        raise ValueError("encoder must be injective")

    width = max(code.bit_length() for code in codes.values())
    width = max(width, 1)
    table = {
        codes[state]: codes[machine.successor(state)] for state in machine.states
    }

    state = netlist.wire(f"{prefix}_state", width, codes[machine.initial_state])
    next_state = netlist.wire(f"{prefix}_next", width)
    netlist.add(TransitionTable(f"{prefix}_logic", state, next_state, table))
    register = DRegister(
        f"{prefix}_reg", next_state, state, reset_value=codes[machine.initial_state]
    )
    netlist.add(register)
    netlist.add(ClockTree(f"{prefix}_clk", CLOCK_LOAD_PER_BIT * width))
    return register
