"""The paper's side-channel leakage component (the watermark).

Figure 3 of the paper: the FSM state is XORed with a secret watermark
key ``Kw``, fed through the AES SBox stored in RAM, and the result is
latched into an output register ``H`` driving output pads.  The
component

* never feeds back into the FSM (it "does not interfere with the
  working FSM"),
* adds strong non-linearity to the state sequence's power signature,
  so even an "extremely linear" counter leaks a rich, device-specific
  waveform,
* is *keyed*: two identical FSMs with different ``Kw`` produce
  different SBox-output sequences, which "reduces the risk of
  collision between different IPs with the same FSM".

For FSMs wider or narrower than the 8-bit SBox address, the state is
XOR-folded (wider) or zero-extended (narrower) onto 8 bits first; for
the paper's 8-bit counters this adapter is the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.sbox import SBOX
from repro.hdl.combinational import Constant, LookupLogic, XorArray
from repro.hdl.io import OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.wires import Wire, mask

#: The SBox address/data width, fixed by AES.
SBOX_WIDTH = 8


class WatermarkKeyError(Exception):
    """The watermark key is out of range for the leakage component."""


def fold_to_sbox_width(value: int, width: int) -> int:
    """XOR-fold ``value`` (on ``width`` bits) down to the SBox width.

    Narrow values pass through (zero-extension is implicit).  This is
    the software model of the adapter logic used for non-8-bit FSMs.
    """
    if width <= SBOX_WIDTH:
        return value
    folded = 0
    remaining = value
    while remaining:
        folded ^= remaining & mask(SBOX_WIDTH)
        remaining >>= SBOX_WIDTH
    return folded


def attach_leakage_component(
    netlist: Netlist,
    state: Wire,
    kw: int,
    prefix: str = "wm",
) -> DRegister:
    """Attach the watermark leakage component to a state wire.

    Adds:  ``Kw`` constant → XOR with (folded) state → SBox ROM →
    output register ``H`` → output pads.  Returns the ``H`` register.
    """
    if not 0 <= kw <= mask(SBOX_WIDTH):
        raise WatermarkKeyError(
            f"watermark key must fit the SBox width ({SBOX_WIDTH} bits), got {kw}"
        )

    if state.width > SBOX_WIDTH:
        folded = netlist.wire(f"{prefix}_folded", SBOX_WIDTH)
        netlist.add(
            LookupLogic(
                f"{prefix}_fold",
                (state,),
                folded,
                lambda value, w=state.width: fold_to_sbox_width(value, w),
                glitch_factor=0.25,
            )
        )
        sbox_input = folded
    elif state.width < SBOX_WIDTH:
        widened = netlist.wire(f"{prefix}_widened", SBOX_WIDTH)
        netlist.add(
            LookupLogic(
                f"{prefix}_widen",
                (state,),
                widened,
                lambda value: value,
                glitch_factor=0.0,
            )
        )
        sbox_input = widened
    else:
        sbox_input = state

    key_wire = netlist.wire(f"{prefix}_kw", SBOX_WIDTH)
    address = netlist.wire(f"{prefix}_addr", SBOX_WIDTH)
    sbox_data = netlist.wire(f"{prefix}_sbox_data", SBOX_WIDTH)
    h_out = netlist.wire(f"{prefix}_h", SBOX_WIDTH)

    netlist.add(Constant(f"{prefix}_key", key_wire, kw))
    netlist.add(XorArray(f"{prefix}_xor", sbox_input, key_wire, address))
    netlist.add(SyncROM(f"{prefix}_sbox", address, sbox_data, list(SBOX)))
    h_register = DRegister(f"{prefix}_hreg", sbox_data, h_out)
    netlist.add(h_register)
    netlist.add(OutputPort(f"{prefix}_pads", h_out))
    return h_register


def attach_wide_leakage_component(
    netlist: Netlist,
    state: Wire,
    kw: int,
    prefix: str = "wm",
) -> DRegister:
    """Extension: a 16-bit-keyed leakage component (two SBox stages).

    ``H = SBox[SBox[state ^ kw_lo] ^ kw_hi]`` with ``kw`` a 16-bit key.
    The paper's 8-bit key resists *accidental* collision but falls to a
    256-template search (see :mod:`repro.attacks.forgery`); cascading a
    second keyed SBox squares the template count at the cost of one
    more ROM — the natural "future work" hardening.

    Only 8-bit state wires are supported (the paper's designs).
    """
    if state.width != SBOX_WIDTH:
        raise WatermarkKeyError(
            f"wide leakage component requires an {SBOX_WIDTH}-bit state wire"
        )
    if not 0 <= kw <= mask(2 * SBOX_WIDTH):
        raise WatermarkKeyError(
            f"wide watermark key must fit {2 * SBOX_WIDTH} bits, got {kw}"
        )
    kw_lo = kw & mask(SBOX_WIDTH)
    kw_hi = (kw >> SBOX_WIDTH) & mask(SBOX_WIDTH)

    key_lo = netlist.wire(f"{prefix}_kw_lo", SBOX_WIDTH)
    key_hi = netlist.wire(f"{prefix}_kw_hi", SBOX_WIDTH)
    addr1 = netlist.wire(f"{prefix}_addr1", SBOX_WIDTH)
    data1 = netlist.wire(f"{prefix}_data1", SBOX_WIDTH)
    addr2 = netlist.wire(f"{prefix}_addr2", SBOX_WIDTH)
    data2 = netlist.wire(f"{prefix}_data2", SBOX_WIDTH)
    h_out = netlist.wire(f"{prefix}_h", SBOX_WIDTH)

    netlist.add(Constant(f"{prefix}_key_lo", key_lo, kw_lo))
    netlist.add(Constant(f"{prefix}_key_hi", key_hi, kw_hi))
    netlist.add(XorArray(f"{prefix}_xor1", state, key_lo, addr1))
    netlist.add(SyncROM(f"{prefix}_sbox1", addr1, data1, list(SBOX)))
    netlist.add(XorArray(f"{prefix}_xor2", data1, key_hi, addr2))
    netlist.add(SyncROM(f"{prefix}_sbox2", addr2, data2, list(SBOX)))
    h_register = DRegister(f"{prefix}_hreg", data2, h_out)
    netlist.add(h_register)
    netlist.add(OutputPort(f"{prefix}_pads", h_out))
    return h_register


def wide_leakage_sequence(state_codes, kw: int):
    """Software model of the two-stage component: one H per state."""
    if not 0 <= kw <= mask(2 * SBOX_WIDTH):
        raise WatermarkKeyError(f"wide watermark key out of range: {kw}")
    kw_lo = kw & mask(SBOX_WIDTH)
    kw_hi = (kw >> SBOX_WIDTH) & mask(SBOX_WIDTH)
    return [SBOX[SBOX[code ^ kw_lo] ^ kw_hi] for code in state_codes]


def leakage_sequence(state_codes, kw: int, width: int = SBOX_WIDTH):
    """Software model: the H values produced by a state-code sequence.

    ``H(t) = SBox[fold(state(t-1)) ^ Kw]`` (one register delay).  Useful
    for functional cross-checks against the netlist simulation.
    """
    if not 0 <= kw <= mask(SBOX_WIDTH):
        raise WatermarkKeyError(f"watermark key out of range: {kw}")
    values = []
    for code in state_codes:
        folded = fold_to_sbox_width(code, width)
        values.append(SBOX[folded ^ kw])
    return values


@dataclass
class WatermarkedIP:
    """A complete watermarked IP: netlist + metadata.

    ``state_register`` is the FSM's state register and ``h_register``
    the leakage component's output register; both are inside
    ``netlist``.  ``kw`` is the embedded watermark key.
    """

    name: str
    netlist: Netlist
    state_register: DRegister
    kw: Optional[int]
    fsm_kind: str
    h_register: Optional[DRegister] = None
    description: str = field(default="")

    @property
    def is_watermarked(self) -> bool:
        return self.h_register is not None

    def __repr__(self) -> str:
        mark = f"Kw={self.kw:#04x}" if self.is_watermarked else "unmarked"
        return f"WatermarkedIP({self.name!r}, {self.fsm_kind}, {mark})"
