"""Structural and dynamical properties of FSMs.

The paper relies on two FSM properties:

* **periodicity** — "designed IPs are cyclic and it is possible to know
  exactly the periodicity of the designed FSM"; the verification needs
  state sequences longer than one period;
* **linearity** — counters are "extremely linear", the worst case for a
  power side channel because their switching activity carries little
  entropy.

This module computes both, plus reachability, so library users can
check whether a given FSM is an easy or hard verification target
before measuring anything.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set

import numpy as np

from repro.fsm.machine import MooreMachine
from repro.hdl.wires import hamming_weight

State = Hashable


def reachable_states(machine: MooreMachine, start: State = None) -> Set[State]:
    """States reachable from ``start`` (default: the initial state)."""
    state = machine.initial_state if start is None else start
    seen: Set[State] = set()
    while state not in seen:
        seen.add(state)
        state = machine.successor(state)
    return seen


def period(machine: MooreMachine, start: State = None) -> int:
    """Length of the cycle eventually entered from ``start``.

    For an autonomous deterministic machine every trajectory is a
    "rho": a transient tail followed by a cycle.  Uses Brent's
    algorithm, O(tail + period) successor calls.
    """
    start_state = machine.initial_state if start is None else start
    power = 1
    cycle_length = 1
    tortoise = start_state
    hare = machine.successor(start_state)
    while tortoise != hare:
        if power == cycle_length:
            tortoise = hare
            power *= 2
            cycle_length = 0
        hare = machine.successor(hare)
        cycle_length += 1
    return cycle_length


def transient_length(machine: MooreMachine, start: State = None) -> int:
    """Number of steps before the trajectory enters its cycle."""
    start_state = machine.initial_state if start is None else start
    cycle_length = period(machine, start_state)
    ahead = start_state
    for _ in range(cycle_length):
        ahead = machine.successor(ahead)
    tail = 0
    behind = start_state
    while behind != ahead:
        behind = machine.successor(behind)
        ahead = machine.successor(ahead)
        tail += 1
    return tail


def is_permutation(machine: MooreMachine) -> bool:
    """True when the transition map is a bijection on the state set.

    Counters are permutations (every state has in-degree one); machines
    with merging paths are not, and have transients.
    """
    targets = list(machine.transitions.values())
    return len(set(targets)) == len(machine.states)


def hd_sequence(codes: Sequence[int]) -> List[int]:
    """Hamming distances between consecutive codes (len(codes) - 1)."""
    if len(codes) < 2:
        raise ValueError("need at least two codes for an HD sequence")
    return [hamming_weight(a ^ b) for a, b in zip(codes, codes[1:])]


def linearity_score(codes: Sequence[int]) -> float:
    """How *linear* (predictable) a code sequence's switching is, in [0, 1].

    Defined as ``1 - normalised entropy`` of the consecutive-HD
    histogram: a Gray counter (HD constantly 1) scores 1.0; a sequence
    whose HDs are uniform over all observed values scores 0.0.  This
    operationalises the paper's "extremely linear" characterisation of
    counters: high score ⇒ little information in the power signal.
    """
    distances = hd_sequence(codes)
    values, counts = np.unique(distances, return_counts=True)
    if len(values) == 1:
        return 1.0
    probabilities = counts / counts.sum()
    entropy = -np.sum(probabilities * np.log2(probabilities))
    max_entropy = np.log2(len(values))
    return float(1.0 - entropy / max_entropy)


def state_sequence_codes(
    machine: MooreMachine, encode: Dict[State, int], n_steps: int
) -> List[int]:
    """Encoded state trajectory of length ``n_steps``."""
    return [encode[state] for state in machine.run(n_steps)]


def verification_sequence_length(machine: MooreMachine, margin: int = 1) -> int:
    """Minimum measurement length per the paper's rule.

    "Verification of watermarked FSMs is possible if the state sequence
    is long enough, i.e. ... longer than the periodicity of the tested
    FSM."  Returns ``transient + margin * period``.
    """
    if margin < 1:
        raise ValueError(f"margin must be >= 1, got {margin}")
    return transient_length(machine) + margin * period(machine)
