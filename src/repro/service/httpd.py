"""A deliberately small asyncio HTTP/1.1 layer for the sweep service.

The repo's tier-1 dependency set is numpy + scipy; pulling in a web
framework for five JSON endpoints would be the tail wagging the dog.
This module implements exactly the slice of HTTP the service needs on
top of ``asyncio.start_server``:

* request parsing (request line, headers, ``Content-Length`` bodies)
  with hard size limits;
* pattern routing (``/sweeps/{job_id}/rows`` style placeholders);
* JSON responses (a handler returns ``(status, payload)``);
* chunked NDJSON streaming (a handler declared with ``stream=True``
  returns an async iterator of JSON-able objects, each written as one
  ``application/x-ndjson`` line the moment it is yielded);
* uniform JSON error bodies via :class:`HTTPError`.

Connections are single-request (``Connection: close``): every client
of this service either polls (cheap reconnects) or holds one long
streaming response, so keep-alive buys nothing but parser state.
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
from dataclasses import dataclass, field
from typing import AsyncIterator, Awaitable, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bounds a request must fit in (a sweep-spec payload is a few
#: kilobytes; anything bigger than these is not a legitimate client).
MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_LINE_BYTES = 64 * 1024
MAX_HEADERS = 100

_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

_logger = logging.getLogger(__name__)


class HTTPError(Exception):
    """Abort request handling with an HTTP status and JSON detail."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(f"{status}: {message}")


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    #: Captures of the matched route's ``{placeholder}`` segments.
    params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> object:
        """The request body parsed as JSON (400 on malformed input)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HTTPError(400, f"request body is not valid JSON: {error}")


#: A JSON handler returns (status, payload); a stream handler returns
#: an async iterator of JSON-able objects (one NDJSON line each).
JSONHandler = Callable[[Request], Awaitable[Tuple[int, object]]]
StreamHandler = Callable[[Request], AsyncIterator[object]]


@dataclass(frozen=True)
class _Route:
    method: str
    pattern: "re.Pattern[str]"
    handler: Callable
    stream: bool


def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    parts = re.split(r"(\{[a-zA-Z_]\w*\})", pattern)
    regex = "".join(
        f"(?P<{part[1:-1]}>[^/]+)"
        if part.startswith("{") and part.endswith("}")
        else re.escape(part)
        for part in parts
    )
    return re.compile(f"^{regex}$")


class Router:
    """Method + path-pattern dispatch table."""

    def __init__(self) -> None:
        self._routes: List[_Route] = []

    def add(
        self,
        method: str,
        pattern: str,
        handler: Callable,
        stream: bool = False,
    ) -> None:
        self._routes.append(
            _Route(method.upper(), _compile_pattern(pattern), handler, stream)
        )

    def match(
        self, method: str, path: str
    ) -> Tuple[Optional[_Route], Optional[Dict[str, str]], List[str]]:
        """Resolve a request; returns (route, params, methods-for-path).

        ``route`` is None when nothing matched; ``methods-for-path``
        then distinguishes 404 (empty) from 405 (other methods serve
        this path).
        """
        allowed: List[str] = []
        for route in self._routes:
            found = route.pattern.match(path)
            if found is None:
                continue
            if route.method == method.upper():
                return route, found.groupdict(), allowed
            allowed.append(route.method)
        return None, None, allowed


async def _read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the wire (None on a closed connection)."""
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HTTPError(400, "request line too long")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HTTPError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, colon, value = line.decode("latin-1").partition(":")
        if not colon:
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HTTPError(400, "too many headers")
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HTTPError(400, "malformed Content-Length")
    if length < 0:
        raise HTTPError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise HTTPError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _json_bytes(payload: object) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


def _head(status: int, content_type: str, extra: str = "") -> bytes:
    phrase = _PHRASES.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Connection: close\r\n"
        f"{extra}\r\n"
    ).encode("latin-1")


class HTTPServer:
    """Route-dispatching connection handler over ``asyncio`` streams."""

    def __init__(self, router: Router):
        self.router = router

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        except Exception:  # noqa: BLE001 — a connection never kills the server
            _logger.exception("unhandled error on connection")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await _read_request(reader)
        except HTTPError as error:
            await self._write_json(
                writer, error.status, {"error": error.message}
            )
            return
        if request is None:
            return
        route, params, allowed = self.router.match(request.method, request.path)
        if route is None:
            if allowed:
                await self._write_json(
                    writer,
                    405,
                    {"error": f"use {', '.join(sorted(set(allowed)))}"},
                    extra=f"Allow: {', '.join(sorted(set(allowed)))}\r\n",
                )
            else:
                await self._write_json(
                    writer, 404, {"error": f"no route for {request.path}"}
                )
            return
        request.params = params or {}
        if route.stream:
            await self._run_stream(writer, route, request)
        else:
            await self._run_json(writer, route, request)

    async def _run_json(
        self, writer: asyncio.StreamWriter, route: _Route, request: Request
    ) -> None:
        try:
            status, payload = await route.handler(request)
        except HTTPError as error:
            status, payload = error.status, {"error": error.message}
        except Exception as error:  # noqa: BLE001 — surface as 500
            _logger.exception(
                "handler for %s %s failed", request.method, request.path
            )
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        await self._write_json(writer, status, payload)

    async def _run_stream(
        self, writer: asyncio.StreamWriter, route: _Route, request: Request
    ) -> None:
        """Chunked NDJSON: each yielded object becomes one line-chunk."""
        try:
            stream = route.handler(request)
        except HTTPError as error:
            await self._write_json(writer, error.status, {"error": error.message})
            return
        headers_sent = False
        try:
            async for item in stream:
                if not headers_sent:
                    writer.write(
                        _head(
                            200,
                            "application/x-ndjson; charset=utf-8",
                            "Transfer-Encoding: chunked\r\n",
                        )
                    )
                    headers_sent = True
                self._write_chunk(writer, _json_bytes(item))
                await writer.drain()
        except HTTPError as error:
            if not headers_sent:
                await self._write_json(
                    writer, error.status, {"error": error.message}
                )
                return
            self._write_chunk(
                writer, _json_bytes({"kind": "error", "error": error.message})
            )
        except Exception as error:  # noqa: BLE001 — mid-stream failure
            _logger.exception(
                "stream for %s %s failed", request.method, request.path
            )
            if not headers_sent:
                await self._write_json(
                    writer,
                    500,
                    {"error": f"{type(error).__name__}: {error}"},
                )
                return
            self._write_chunk(
                writer,
                _json_bytes(
                    {"kind": "error", "error": f"{type(error).__name__}: {error}"}
                ),
            )
        if not headers_sent:
            # An empty stream is still a successful (contentless) response.
            writer.write(
                _head(
                    200,
                    "application/x-ndjson; charset=utf-8",
                    "Transfer-Encoding: chunked\r\n",
                )
            )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        writer.write(data)
        writer.write(b"\r\n")

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        extra: str = "",
    ) -> None:
        body = _json_bytes(payload)
        writer.write(
            _head(
                status,
                "application/json; charset=utf-8",
                f"Content-Length: {len(body)}\r\n{extra}",
            )
        )
        writer.write(body)
        await writer.drain()


__all__ = [
    "HTTPError",
    "HTTPServer",
    "MAX_BODY_BYTES",
    "Request",
    "Router",
]
