"""The sweep service: JSON endpoints over one shared store root.

Endpoints
---------

``GET /health``
    Liveness + instance facts (store root, job counts, spec schema
    version).

``POST /sweeps``
    Submit a sweep: body ``{"spec": <SweepSpec.to_json_dict()>,
    "options": {...}}``.  Returns 202 with the job description (200
    when an identical running job was joined — job ids are
    content-addressed, so resubmitting a spec is idempotent).
    Malformed specs return 400 with the offending path
    (:class:`~repro.sweeps.spec.SpecValidationError`).

``GET /sweeps`` / ``GET /sweeps/{job_id}``
    List jobs / poll one job: state, report, and the shared
    :func:`~repro.sweeps.status.sweep_status` snapshot (completed /
    pending / leased / quarantined / attempt counts straight from the
    store + lease + failure-log state), plus quarantine detail when
    scenarios failed.

``GET /sweeps/{job_id}/rows``
    Stream results as NDJSON while the job runs: one
    ``{"kind": "accuracy", ...}`` row per (scenario, distinguisher)
    the moment that scenario's record lands in the store, then
    ``{"kind": "roc", ...}`` screening rows grouped by a swept axis
    (``?axis=``, default: the first grid axis) and a final
    ``{"kind": "end", ...}`` summary.

``POST /admin/scrub``
    Store + lease + failure-log hygiene (crash residue removal); 409
    while this instance has running jobs.

Execution model
---------------

Jobs always run through the lease scheduler, so several service
instances may serve one store root concurrently: every scenario digest
is executed once across the fleet, duplicated execution (stale-lease
steals) is harmless by store idempotency, and repeated submissions of
an already-swept spec complete from cache.  The service holds no
result state of its own — the store root *is* the database, which is
what makes instances disposable.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from dataclasses import dataclass, replace
from typing import AsyncIterator, Dict, Optional, Tuple

import repro
from repro.service.httpd import HTTPError, HTTPServer, Request, Router
from repro.service.jobs import JobManager, SweepJob
from repro.sweeps.aggregate import roc_by_axis, tidy_accuracy
from repro.sweeps.api import SweepOptions
from repro.sweeps.scheduler import (
    FailureLog,
    LeaseManager,
    RetryPolicy,
    SchedulerOptions,
)
from repro.sweeps.spec import SCHEMA_VERSION, ATTACK_FIELD, SpecValidationError, SweepSpec
from repro.sweeps.store import SweepStore

_logger = logging.getLogger(__name__)

#: Seconds between store polls while streaming rows of a running job.
ROWS_POLL_INTERVAL = 0.2

#: Request-option keys accepted by ``POST /sweeps``.
_OPTION_KEYS = frozenset(
    {"n_workers", "max_retries", "scenario_timeout", "lease_ttl"}
)


class SweepService:
    """One service instance bound to a store root."""

    def __init__(
        self,
        store_root: str,
        default_options: Optional[SweepOptions] = None,
    ):
        self.store_root = store_root
        defaults = default_options or SweepOptions()
        if defaults.scheduler is None:
            # The service invariant: jobs are lease-scheduled, so any
            # number of instances can share this store root safely.
            defaults = replace(defaults, scheduler=SchedulerOptions())
        self.default_options = defaults
        self.jobs = JobManager(store_root)
        self.router = Router()
        self.router.add("GET", "/health", self._health)
        self.router.add("GET", "/sweeps", self._list)
        self.router.add("POST", "/sweeps", self._submit)
        self.router.add("GET", "/sweeps/{job_id}", self._poll)
        self.router.add("GET", "/sweeps/{job_id}/rows", self._rows, stream=True)
        self.router.add("POST", "/admin/scrub", self._scrub)
        self._httpd = HTTPServer(self.router)

    # -- option parsing ----------------------------------------------------

    def _merge_options(self, payload: object) -> SweepOptions:
        """Apply a submission's ``options`` over the instance defaults."""
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise HTTPError(400, "options: expected an object")
        for key in payload:
            if key not in _OPTION_KEYS:
                raise HTTPError(
                    400,
                    f"options.{key}: unknown option (accepted: "
                    f"{', '.join(sorted(_OPTION_KEYS))})",
                )
        defaults = self.default_options
        scheduler = defaults.scheduler or SchedulerOptions()
        try:
            n_workers = int(payload.get("n_workers", defaults.n_workers))
            retry = defaults.retry
            if "max_retries" in payload:
                retry = RetryPolicy(
                    max_attempts=int(payload["max_retries"]) + 1
                )
            scheduler_fields: Dict[str, object] = {}
            if "lease_ttl" in payload:
                scheduler_fields["lease_ttl"] = float(payload["lease_ttl"])
            if "scenario_timeout" in payload:
                timeout = payload["scenario_timeout"]
                scheduler_fields["scenario_timeout"] = (
                    None if timeout is None else float(timeout)
                )
            if scheduler_fields:
                scheduler = replace(scheduler, **scheduler_fields)
            return replace(
                defaults,
                n_workers=n_workers,
                retry=retry,
                scheduler=scheduler,
            )
        except (TypeError, ValueError) as error:
            raise HTTPError(400, f"options: {error}")

    def _job_or_404(self, request: Request) -> SweepJob:
        job_id = request.params["job_id"]
        job = self.jobs.get(job_id)
        if job is None:
            raise HTTPError(
                404,
                f"unknown job {job_id!r} (jobs live in the instance that "
                "accepted them; resubmit the spec — ids are "
                "content-addressed, so it joins or cheaply re-runs)",
            )
        return job

    # -- handlers ----------------------------------------------------------

    async def _health(self, request: Request) -> Tuple[int, object]:
        jobs = self.jobs.jobs()
        return 200, {
            "status": "ok",
            "version": repro.__version__,
            "spec_schema_version": SCHEMA_VERSION,
            "store": self.store_root,
            "jobs": {
                "total": len(jobs),
                "running": sum(1 for job in jobs if job.running),
            },
        }

    async def _list(self, request: Request) -> Tuple[int, object]:
        return 200, {"jobs": [job.describe() for job in self.jobs.jobs()]}

    async def _submit(self, request: Request) -> Tuple[int, object]:
        payload = request.json()
        if not isinstance(payload, dict) or "spec" not in payload:
            raise HTTPError(400, 'body must be {"spec": {...}, "options": {...}}')
        try:
            spec = SweepSpec.from_json_dict(payload["spec"])
        except SpecValidationError as error:
            raise HTTPError(400, f"spec.{error.path}: {error.detail}")
        options = self._merge_options(payload.get("options"))
        job, created = self.jobs.submit(spec, options)
        description = job.describe(job.status())
        description["created"] = created
        return (202 if created else 200), description

    async def _poll(self, request: Request) -> Tuple[int, object]:
        job = self._job_or_404(request)
        status = job.status()
        description = job.describe(status)
        if status.quarantined:
            log = FailureLog(self.store_root)
            detail = []
            for scenario_id in job.scenario_ids:
                record = log.load_quarantine(scenario_id)
                if record is None:
                    continue
                error = record.get("error", {})
                detail.append(
                    {
                        "scenario_id": scenario_id,
                        "attempts": record.get("attempts"),
                        "type": error.get("type"),
                        "message": error.get("message"),
                    }
                )
            description["quarantined"] = detail
        return 200, description

    async def _rows(self, request: Request) -> AsyncIterator[object]:
        job = self._job_or_404(request)
        axis = request.query.get("axis") or (
            job.spec.grid[0].field if job.spec.grid else ATTACK_FIELD
        )
        store = SweepStore(self.store_root)
        by_id = {s.scenario_id: s for s in job.scenarios}
        emitted: set = set()
        while True:
            for scenario_id in job.scenario_ids:
                if scenario_id in emitted or not store.has(scenario_id):
                    continue
                for row in tidy_accuracy(store, [by_id[scenario_id]]):
                    yield {"kind": "accuracy", **row}
                emitted.add(scenario_id)
            if len(emitted) == len(job.scenario_ids):
                break
            if not job.running:
                break  # terminal with quarantined/failed scenarios
            await asyncio.sleep(ROWS_POLL_INTERVAL)
        # Give the job thread a beat to reach its terminal state once
        # every scenario's record is on disk, so the trailer is final.
        while job.running and len(emitted) == len(job.scenario_ids):
            await asyncio.sleep(ROWS_POLL_INTERVAL)
        completed = [by_id[scenario_id] for scenario_id in job.scenario_ids
                     if scenario_id in emitted]
        for row in roc_by_axis(store, axis, completed):
            yield {"kind": "roc", "axis": axis, **row}
        yield {
            "kind": "end",
            "state": job.state,
            "completed": len(emitted),
            "total": len(job.scenario_ids),
        }

    async def _scrub(self, request: Request) -> Tuple[int, object]:
        running = self.jobs.n_running()
        if running:
            raise HTTPError(
                409,
                f"{running} job(s) are running on this instance; scrub "
                "only while no writer is active on the store root",
            )
        store = SweepStore(self.store_root)
        scheduler = self.default_options.scheduler or SchedulerOptions()
        removed = store.scrub()
        removed += LeaseManager(self.store_root, scheduler.lease_ttl).scrub()
        removed += FailureLog(self.store_root).scrub(store)
        _logger.info("scrub removed %d file(s)", len(removed))
        return 200, {"removed": len(removed), "paths": removed}

    # -- serving -----------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 8734) -> None:
        """Serve until cancelled (the async entry point)."""
        server = await asyncio.start_server(
            self._httpd.handle_connection, host, port
        )
        bound = server.sockets[0].getsockname()
        _logger.info(
            "sweep service on http://%s:%d (store: %s)",
            bound[0],
            bound[1],
            self.store_root,
        )
        async with server:
            await server.serve_forever()

    def run_forever(self, host: str = "127.0.0.1", port: int = 8734) -> None:
        """Blocking entry point (the CLI ``serve`` subcommand)."""
        try:
            asyncio.run(self.serve(host, port))
        except KeyboardInterrupt:
            pass


@dataclass
class ServiceHandle:
    """A service running in a daemon thread (tests, embedders)."""

    service: SweepService
    host: str
    port: int
    _thread: threading.Thread
    _loop: asyncio.AbstractEventLoop
    _stop: asyncio.Event

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)


def start_service(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHandle:
    """Start ``service`` on a background thread; returns once bound.

    ``port=0`` binds an ephemeral port (read it off the handle).
    """
    ready = threading.Event()
    state: Dict[str, object] = {}

    async def _main() -> None:
        stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                service._httpd.handle_connection, host, port
            )
        except OSError as error:
            state["error"] = error
            ready.set()
            return
        state["loop"] = asyncio.get_running_loop()
        state["stop"] = stop
        state["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        async with server:
            await stop.wait()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()),
        name="sweep-service",
        daemon=True,
    )
    thread.start()
    ready.wait()
    if "error" in state:
        raise state["error"]  # type: ignore[misc]
    return ServiceHandle(
        service=service,
        host=host,
        port=state["port"],  # type: ignore[arg-type]
        _thread=thread,
        _loop=state["loop"],  # type: ignore[arg-type]
        _stop=state["stop"],  # type: ignore[arg-type]
    )


__all__ = [
    "ROWS_POLL_INTERVAL",
    "ServiceHandle",
    "SweepService",
    "start_service",
]
