"""Background sweep jobs: content-addressed ids, lease-scheduled runs.

A *job* is one submitted :class:`~repro.sweeps.spec.SweepSpec`
executing through the unified :func:`repro.sweeps.run` facade in a
daemon thread.  Two properties make jobs safe and cheap by
construction:

* **Content-addressed identity.**  A job id is a digest of the spec's
  canonical JSON wire format, so resubmitting the same spec names the
  same job.  While that job is running, resubmission joins it instead
  of starting a second execution; after it finished, resubmission
  starts a fresh run whose scenarios are all already in the
  content-addressed store — it completes in roughly the time it takes
  to check (the "repeated questions are ~free" tier).

* **Lease-scheduled execution.**  The service always routes jobs
  through the lease scheduler
  (:class:`~repro.sweeps.scheduler.SchedulerOptions`), so any number
  of service instances may point at one store root: leases keep their
  workers off each other's scenarios, a dead instance's leases expire,
  and results publish through idempotent atomic writes — every
  scenario digest is executed exactly once across the fleet in the
  healthy case, and duplicated execution is harmless in every other.
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.sweeps.api import SweepOptions, run
from repro.sweeps.executor import SweepReport
from repro.sweeps.scheduler import error_info
from repro.sweeps.spec import Scenario, SweepSpec, canonical_json, expand_scenarios
from repro.sweeps.status import SweepStatus, sweep_status
from repro.sweeps.store import SweepStore

_logger = logging.getLogger(__name__)

#: Job states: ``running`` → exactly one of the terminal three.
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_QUARANTINED = "quarantined"  # finished, but some scenarios failed
JOB_ERROR = "error"  # the run itself raised (store unwritable, ...)


def job_id_for(spec: SweepSpec) -> str:
    """Deterministic job id: digest of the spec's canonical wire form."""
    return hashlib.sha256(
        canonical_json(spec.to_json_dict()).encode()
    ).hexdigest()[:16]


class SweepJob:
    """One background execution of a spec against the shared store."""

    def __init__(
        self,
        job_id: str,
        spec: SweepSpec,
        options: SweepOptions,
        store_root: str,
    ):
        self.job_id = job_id
        self.spec = spec
        self.options = options
        self.store_root = store_root
        self.scenarios: List[Scenario] = expand_scenarios(spec)
        self.scenario_ids: List[str] = [s.scenario_id for s in self.scenarios]
        self.state = JOB_RUNNING
        self.report: Optional[SweepReport] = None
        self.error: Optional[Dict[str, object]] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self._thread = threading.Thread(
            target=self._execute, name=f"sweep-job-{job_id}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    @property
    def running(self) -> bool:
        return self.state == JOB_RUNNING

    @property
    def lease_ttl(self) -> float:
        scheduler = self.options.scheduler
        return scheduler.lease_ttl if scheduler is not None else 30.0

    def _execute(self) -> None:
        try:
            report = run(self.spec, SweepStore(self.store_root), self.options)
        except Exception as error:  # noqa: BLE001 — surfaced via the API
            self.error = error_info(error)
            self.state = JOB_ERROR
            _logger.exception("job %s failed", self.job_id)
        else:
            self.report = report
            self.state = JOB_QUARANTINED if report.failed_ids else JOB_DONE
            _logger.info(
                "job %s finished: %d executed, %d cached, %d quarantined",
                self.job_id,
                report.n_executed,
                report.n_cached,
                report.n_failed,
            )
        finally:
            self.finished_at = time.time()

    def status(self) -> SweepStatus:
        """Live progress snapshot scoped to this job's scenarios."""
        return sweep_status(
            self.store_root,
            scenario_ids=self.scenario_ids,
            lease_ttl=self.lease_ttl,
        )

    def describe(self, status: Optional[SweepStatus] = None) -> Dict[str, object]:
        """The job's JSON form for API responses."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "name": self.spec.name,
            "state": self.state,
            "n_scenarios": len(self.scenario_ids),
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if status is not None:
            payload["status"] = status.to_json_dict()
        if self.report is not None:
            payload["report"] = {
                "executed": self.report.n_executed,
                "cached": self.report.n_cached,
                "failed_ids": list(self.report.failed_ids),
                "retried_ids": list(self.report.retried_ids),
            }
        if self.error is not None:
            payload["error"] = dict(self.error)
        return payload


class JobManager:
    """The set of jobs one service instance has accepted."""

    def __init__(self, store_root: str):
        self.store_root = store_root
        self._jobs: Dict[str, SweepJob] = {}
        self._lock = threading.Lock()

    def submit(
        self, spec: SweepSpec, options: SweepOptions
    ) -> Tuple[SweepJob, bool]:
        """Start (or join) the job for ``spec``.

        Returns ``(job, created)``: ``created`` is False when an
        identical spec is already running here and the caller joined
        it.  A terminal job is replaced by a fresh run — ~free when
        its results are all still in the store.
        """
        job_id = job_id_for(spec)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None and existing.running:
                return existing, False
            job = SweepJob(job_id, spec, options, self.store_root)
            self._jobs[job_id] = job
            job.start()
            _logger.info(
                "job %s submitted: %r, %d scenarios",
                job_id,
                spec.name,
                len(job.scenario_ids),
            )
            return job, True

    def get(self, job_id: str) -> Optional[SweepJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[SweepJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def n_running(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.running)


__all__ = [
    "JOB_DONE",
    "JOB_ERROR",
    "JOB_QUARANTINED",
    "JOB_RUNNING",
    "JobManager",
    "SweepJob",
    "job_id_for",
]
