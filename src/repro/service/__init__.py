"""Sweep-as-a-service: an async HTTP job layer over the lease scheduler.

``repro-watermark serve --store runs/sweep`` turns a store root into a
JSON API: submit serialized :class:`~repro.sweeps.spec.SweepSpec`
payloads to ``POST /sweeps``, poll progress on ``GET /sweeps/{id}``,
stream tidy result rows from ``GET /sweeps/{id}/rows`` as they land.
Jobs execute through the lease scheduler, so several instances may
share one store root — every scenario digest runs exactly once across
the fleet, and resubmitting an already-swept spec completes from
cache.  Built on the stdlib only (:mod:`asyncio` + hand-rolled
HTTP/1.1 in :mod:`repro.service.httpd`); no new dependencies.
"""

from repro.service.app import (
    ROWS_POLL_INTERVAL,
    ServiceHandle,
    SweepService,
    start_service,
)
from repro.service.httpd import HTTPError, HTTPServer, Request, Router
from repro.service.jobs import (
    JOB_DONE,
    JOB_ERROR,
    JOB_QUARANTINED,
    JOB_RUNNING,
    JobManager,
    SweepJob,
    job_id_for,
)

__all__ = [
    "HTTPError",
    "HTTPServer",
    "JOB_DONE",
    "JOB_ERROR",
    "JOB_QUARANTINED",
    "JOB_RUNNING",
    "JobManager",
    "ROWS_POLL_INTERVAL",
    "Request",
    "Router",
    "ServiceHandle",
    "SweepJob",
    "SweepService",
    "job_id_for",
    "start_service",
]
