"""Masking attacks: hiding the watermark under injected noise.

A cloner who cannot strip the leakage component may instead add an
on-die noise generator (or run the IP next to noisy co-tenants) to
drown the signature.  Because the verification k-averages traces, the
attacker must spend a *lot* of noise: averaging wins back a factor
sqrt(k), and the defender can simply raise k.

:func:`masking_sweep` measures identification accuracy against the
masking amplitude and returns the operating curve; the accompanying
benchmark shows the defender's counter-move (raising k) restoring
detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.acquisition.bench import MeasurementBench
from repro.acquisition.oscilloscope import Oscilloscope
from repro.core.process import ProcessParameters
from repro.core.verification import WatermarkVerifier
from repro.experiments.designs import EXPECTED_MATCHES, build_device_fleet
from repro.power.noise import NoiseModel


@dataclass(frozen=True)
class MaskingPoint:
    """One point of the masking operating curve."""

    noise_sigma: float
    mean_accuracy: float
    variance_accuracy: float
    matching_mean: float


def masking_sweep(
    sigmas: Sequence[float],
    parameters: ProcessParameters = None,
    seed: int = 42,
) -> List[MaskingPoint]:
    """Run the 4x4 campaign under increasing masking-noise amplitude.

    ``sigmas`` are total relative noise levels (measurement noise plus
    the attacker's injected noise).  Devices are manufactured without
    process variation so the sweep isolates the noise effect.
    """
    if not sigmas:
        raise ValueError("need at least one sigma")
    params = parameters if parameters is not None else ProcessParameters(
        k=40, m=16, n1=320, n2=6400
    )
    points: List[MaskingPoint] = []
    for sigma in sigmas:
        if sigma < 0:
            raise ValueError("noise sigma must be non-negative")
        refds, duts = build_device_fleet(variation_model=None, seed=2014)
        bench = MeasurementBench(
            Oscilloscope(NoiseModel(sigma=sigma)), seed=seed
        )
        t_duts = {name: bench.measure(dev, params.n2) for name, dev in duts.items()}
        verifier = WatermarkVerifier(params)
        rng = np.random.default_rng(seed + 1)
        correct = {"higher-mean": 0, "lower-variance": 0}
        matching_means = []
        for ref_name, ref_dev in refds.items():
            t_ref = bench.measure(ref_dev, params.n1)
            report = verifier.identify(t_ref, t_duts, rng=rng)
            expected = EXPECTED_MATCHES[ref_name]
            matching_means.append(report.means[expected])
            for verdict in report.verdicts:
                if verdict.chosen_dut == expected:
                    correct[verdict.distinguisher] += 1
        points.append(
            MaskingPoint(
                noise_sigma=float(sigma),
                mean_accuracy=correct["higher-mean"] / len(refds),
                variance_accuracy=correct["lower-variance"] / len(refds),
                matching_mean=float(np.mean(matching_means)),
            )
        )
    return points


def defender_k_escalation(
    attack_sigma: float,
    k_values: Sequence[int],
    m: int = 16,
    seed: int = 42,
) -> Dict[int, MaskingPoint]:
    """Defender response: raise k until detection returns.

    Returns ``{k: MaskingPoint}`` under a fixed attacker noise level.
    The averaged-noise power falls as ``sigma^2 / k``, so the defender
    restores the variance distinguisher once ``k >> sigma^2``; the mean
    distinguisher recovers much earlier (it only needs the score
    *ordering*, not a tight cluster).
    """
    if attack_sigma < 0:
        raise ValueError("attack sigma must be non-negative")
    outcomes: Dict[int, MaskingPoint] = {}
    for k in k_values:
        if k <= 0:
            raise ValueError("k must be positive")
        params = ProcessParameters(k=k, m=m, n1=8 * k, n2=10 * k * m)
        points = masking_sweep([attack_sigma], parameters=params, seed=seed)
        outcomes[k] = points[0]
    return outcomes
