"""Watermark-removal attacks.

The paper argues FSM-level watermarks are "difficult to remove without
damaging the functionality of the IP".  For the leakage component the
realistic removal attack is *stripping*: an adversary who fully
reverse-engineers the netlist deletes every component of the leakage
chain and re-fabricates.  This module implements that adversary so the
defence experiments can measure what detection looks like after it:

* a stripped clone keeps the FSM (functionality preserved) but loses
  the keyed signature — it drops out of the matching cluster and is
  caught by counterfeit screening (the E9/Robustness benches);
* partial stripping (removing only the output pads, the cheapest
  "quieting" attack) attenuates but does not remove the keyed power,
  because the RAM and the H register still switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.fsm.watermark import WatermarkedIP
from repro.hdl.netlist import Netlist


@dataclass(frozen=True)
class RemovalReport:
    """What the adversary managed to delete."""

    removed_components: List[str]
    removed_wires: List[str]

    @property
    def n_removed(self) -> int:
        return len(self.removed_components)


def _leakage_component_names(netlist: Netlist, prefix: str) -> Set[str]:
    return {
        component.name
        for component in netlist.components
        if component.name.startswith(f"{prefix}_")
    }


def strip_watermark(
    ip: WatermarkedIP,
    prefix: str = "wm",
    keep: Optional[Iterable[str]] = None,
) -> RemovalReport:
    """Remove the leakage component from a watermarked IP, in place.

    ``keep`` lists component names the adversary leaves in (e.g. keep
    everything except the pads for the partial attack).  The FSM is
    untouched; the netlist is revalidated afterwards, modelling a
    competent reverse engineer.
    """
    netlist = ip.netlist
    to_remove = _leakage_component_names(netlist, prefix)
    if keep is not None:
        to_remove -= set(keep)
    if not to_remove:
        return RemovalReport(removed_components=[], removed_wires=[])

    removed_components = sorted(to_remove)
    survivors = [c for c in netlist.components if c.name not in to_remove]

    # Wires driven or solely read by removed components become dead.
    used_wires = set()
    for component in survivors:
        for wire in list(component.input_wires) + list(component.output_wires):
            used_wires.add(wire.name)
    dead_wires = [
        name
        for name in list(netlist.wires)
        if name.startswith(f"{prefix}_") and name not in used_wires
    ]

    netlist.components = survivors
    netlist._component_names = {c.name: c for c in survivors}
    netlist._comb_order = None
    for name in dead_wires:
        del netlist.wires[name]

    if ip.h_register is not None and ip.h_register.name in to_remove:
        ip.h_register = None
        ip.kw = None
    netlist.validate()
    return RemovalReport(
        removed_components=removed_components, removed_wires=sorted(dead_wires)
    )


def strip_output_pads_only(ip: WatermarkedIP, prefix: str = "wm") -> RemovalReport:
    """The cheap attack: disconnect only the output pads.

    Leaves the XOR array, the SBox RAM and the H register switching —
    the keyed power is attenuated, not removed.
    """
    netlist = ip.netlist
    all_wm = _leakage_component_names(netlist, prefix)
    keep = {name for name in all_wm if not name.endswith("_pads")}
    return strip_watermark(ip, prefix=prefix, keep=keep)


#: Named DUT netlist transforms — the vocabulary of the sweep
#: ``attack`` axis and of the artifact layer's ``fleet_tag``, so every
#: consumer (scenario runner, campaign runner, artifact cache)
#: resolves the same name to the same tampering.  ``None`` means no
#: tampering; the callables mutate a
#: :class:`~repro.fsm.watermark.WatermarkedIP` in place.
FLEET_TRANSFORMS = {
    "none": None,
    "strip": strip_watermark,
    "strip_pads": strip_output_pads_only,
}


def apply_fleet_transform(duts, name: str) -> None:
    """Apply one named transform to every DUT's IP, in place.

    ``duts`` maps device names to objects exposing an ``ip`` attribute
    (see :class:`~repro.acquisition.device.Device`).  Unknown names
    raise ``KeyError`` so a typo fails loudly.
    """
    try:
        transform = FLEET_TRANSFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; choose from {sorted(FLEET_TRANSFORMS)}"
        ) from None
    if transform is None:
        return
    for device in duts.values():
        transform(device.ip)
