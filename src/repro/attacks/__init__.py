"""Adversarial analysis of the watermark scheme: removal, key
forgery/recovery, and masking-noise attacks, with defender
counter-moves.

:data:`FLEET_TRANSFORMS` is the registry of *named* DUT netlist
transforms — the vocabulary of the sweep ``attack`` axis and of the
artifact layer's ``fleet_tag`` — so that every consumer (scenario
runner, campaign runner, artifact cache) resolves the same name to the
same tampering.
"""

from repro.attacks.forgery import (
    KeySearchResult,
    forged_key_collision_correlation,
    predicted_h_switching,
    template_key_search,
)
from repro.attacks.masking import (
    MaskingPoint,
    defender_k_escalation,
    masking_sweep,
)
from repro.attacks.removal import (
    FLEET_TRANSFORMS,
    RemovalReport,
    apply_fleet_transform,
    strip_output_pads_only,
    strip_watermark,
)

__all__ = [
    "FLEET_TRANSFORMS",
    "apply_fleet_transform",
    "RemovalReport",
    "strip_watermark",
    "strip_output_pads_only",
    "KeySearchResult",
    "template_key_search",
    "predicted_h_switching",
    "forged_key_collision_correlation",
    "MaskingPoint",
    "masking_sweep",
    "defender_k_escalation",
]
