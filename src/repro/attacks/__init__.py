"""Adversarial analysis of the watermark scheme: removal, key
forgery/recovery, and masking-noise attacks, with defender
counter-moves."""

from repro.attacks.forgery import (
    KeySearchResult,
    forged_key_collision_correlation,
    predicted_h_switching,
    template_key_search,
)
from repro.attacks.masking import (
    MaskingPoint,
    defender_k_escalation,
    masking_sweep,
)
from repro.attacks.removal import (
    RemovalReport,
    strip_output_pads_only,
    strip_watermark,
)

__all__ = [
    "RemovalReport",
    "strip_watermark",
    "strip_output_pads_only",
    "KeySearchResult",
    "template_key_search",
    "predicted_h_switching",
    "forged_key_collision_correlation",
    "MaskingPoint",
    "masking_sweep",
    "defender_k_escalation",
]
