"""Key-recovery and forgery attacks on the watermark key ``Kw``.

The leakage component keys the power signature with an 8-bit secret.
An adversary holding the DUT (and knowing the scheme, per Kerckhoffs)
can mount a *template key search*: predict the H-register switching
sequence for every candidate key with the software leakage model and
correlate each prediction against averaged measured traces — exactly a
classic CPA attack, but here run by the *defender's adversary*.

The point of the experiment is honest threat analysis: an 8-bit key is
searchable (256 templates), so the scheme's security rests on the
difficulty of *removing* the component and on legal proof-of-ownership
(the paper's court scenario), not on key secrecy against a physical
attacker.  The module quantifies both the search's success and the
margin between the right key and the best wrong key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.acquisition.traces import TraceSet
from repro.fsm.watermark import leakage_sequence
from repro.hdl.wires import hamming_distance


def predicted_h_switching(
    state_codes: Sequence[int], kw: int, width: int = 8
) -> np.ndarray:
    """Per-cycle Hamming distance of the H register under key ``kw``.

    ``H(t)`` latches ``SBox[fold(state(t-1)) ^ kw]``; the power model's
    observable is ``HD(H(t-1), H(t))``.
    """
    h_values = leakage_sequence(state_codes, kw, width=width)
    distances = [0]
    for previous, current in zip(h_values, h_values[1:]):
        distances.append(hamming_distance(previous, current))
    return np.asarray(distances, dtype=float)


@dataclass(frozen=True)
class KeySearchResult:
    """Outcome of a template search over all candidate keys."""

    scores: Dict[int, float]
    best_key: int
    true_key: int

    @property
    def succeeded(self) -> bool:
        return self.best_key == self.true_key

    @property
    def margin(self) -> float:
        """Score gap between the best and the second-best candidate."""
        ordered = sorted(self.scores.values(), reverse=True)
        return ordered[0] - ordered[1]

    def rank_of_true_key(self) -> int:
        """1 = the true key scored highest."""
        ordered = sorted(self.scores, key=lambda k: self.scores[k], reverse=True)
        return ordered.index(self.true_key) + 1


def template_key_search(
    traces: TraceSet,
    state_codes: Sequence[int],
    true_key: int,
    samples_per_cycle: int,
    state_width: int = 8,
    n_average: int = 200,
) -> KeySearchResult:
    """CPA-style search for Kw over all 256 candidates.

    Averages ``n_average`` traces, reduces them to one value per cycle
    (summing the intra-cycle samples), and Pearson-correlates against
    the predicted H-switching series of each key.
    """
    if samples_per_cycle <= 0:
        raise ValueError("samples_per_cycle must be positive")
    count = min(n_average, traces.n_traces)
    averaged = traces.matrix[:count].mean(axis=0)
    if averaged.size % samples_per_cycle != 0:
        raise ValueError("trace length is not a multiple of samples_per_cycle")
    per_cycle = averaged.reshape(-1, samples_per_cycle).sum(axis=1)
    n_cycles = per_cycle.size
    codes = list(state_codes)[:n_cycles]
    if len(codes) < n_cycles:
        raise ValueError("state_codes shorter than the measured cycles")

    measured = per_cycle - per_cycle.mean()
    measured_norm = float(np.sqrt(np.sum(measured**2)))
    if measured_norm == 0:
        raise ValueError("measured trace has zero variance")

    scores: Dict[int, float] = {}
    for kw in range(256):
        predicted = predicted_h_switching(codes, kw, width=state_width)
        centered = predicted - predicted.mean()
        norm = float(np.sqrt(np.sum(centered**2)))
        if norm == 0:
            scores[kw] = 0.0
            continue
        scores[kw] = float(np.sum(centered * measured) / (norm * measured_norm))

    best_key = max(scores, key=lambda k: scores[k])
    return KeySearchResult(scores=scores, best_key=best_key, true_key=true_key)


def forged_key_collision_correlation(
    state_codes: Sequence[int], kw_a: int, kw_b: int, width: int = 8
) -> float:
    """Correlation between the H-switching series of two keys.

    A forger hoping to claim ownership with a different key needs this
    to be high; for the AES SBox it is near zero for any pair of
    distinct keys (see :mod:`repro.analysis.collisions`).
    """
    a = predicted_h_switching(state_codes, kw_a, width)
    b = predicted_h_switching(state_codes, kw_b, width)
    a = a - a.mean()
    b = b - b.mean()
    denominator = float(np.sqrt(np.sum(a * a) * np.sum(b * b)))
    if denominator == 0:
        return 0.0
    return float(np.sum(a * b) / denominator)
