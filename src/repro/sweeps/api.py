"""The one public entry point for executing a sweep.

Historically sweep execution grew two divergent front doors:
``run_sweep(spec, store, n_workers=, artifacts=, pool=, retry=,
scheduler=)`` and ``run_scheduled_sweep(spec, store, options=,
n_workers=, artifacts=)``.  Embedders (the HTTP sweep service, the
CLI, tests, notebooks) had to know which one to call and how their
keyword sets differed.  This module collapses both behind

    ``run(spec, store, options=SweepOptions(...), progress=...)``

where :class:`SweepOptions` carries every execution knob.  Execution
strategy never changes results: whatever the options, the store is
byte-identical to a clean single-worker run — the old entry points
remain as deprecated aliases of this facade and are pinned to produce
byte-identical stores by the tier-1 suite.

Strategy selection is one rule: ``options.scheduler`` set routes the
sweep through the lease-based fault-tolerant scheduler
(:mod:`repro.sweeps.scheduler` — isolated attempt processes, scenario
timeouts, safe concurrency of many instances on one store root);
unset runs the in-process executor (:mod:`repro.sweeps.executor` —
inline or multiprocess pool, cross-campaign batch pooling).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

from repro.sweeps.scheduler import RetryPolicy, SchedulerOptions
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import SweepStore

if TYPE_CHECKING:  # imported lazily at call time to avoid module cycles
    from repro.experiments.artifacts import ArtifactOptions
    from repro.hdl.batch_pool import BatchPoolOptions
    from repro.sweeps.executor import SweepReport


@dataclass(frozen=True)
class SweepOptions:
    """Every execution knob of one sweep run, in one place.

    ``n_workers``
        Parallelism: pool processes (plain executor) or concurrent
        attempt slots (lease scheduler).

    ``artifacts``
        :class:`~repro.experiments.artifacts.ArtifactOptions` enabling
        cross-scenario fleet/trace sharing and campaign-outcome
        memoisation (an options ``root`` adds the on-disk tier shared
        across workers, runs and service instances).

    ``pool``
        :class:`~repro.hdl.batch_pool.BatchPoolOptions` enabling the
        cross-campaign batch pool.  Only meaningful without a
        scheduler — lease-scheduled attempts are deliberately isolated
        in their own processes and ignore it (unchanged from the
        historical ``run_sweep`` behaviour).

    ``retry``
        Per-scenario attempt budget and backoff.  With a scheduler it
        overrides ``scheduler.retry``; without one it bounds the
        in-process retry loop.  ``None`` means the stock
        :class:`~repro.sweeps.scheduler.RetryPolicy`.

    ``scheduler``
        :class:`~repro.sweeps.scheduler.SchedulerOptions` switches to
        lease-based scheduling; ``None`` selects the in-process
        executor.

    Results never depend on any of these: every combination converges
    on a byte-identical store.
    """

    n_workers: int = 1
    artifacts: Optional["ArtifactOptions"] = None
    pool: Optional["BatchPoolOptions"] = None
    retry: Optional[RetryPolicy] = None
    scheduler: Optional[SchedulerOptions] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")


def run(
    spec: SweepSpec,
    store: SweepStore,
    options: Optional[SweepOptions] = None,
    progress: Optional[Callable[[str, bool], None]] = None,
) -> "SweepReport":
    """Execute every missing scenario of ``spec`` into ``store``.

    The unified facade over both execution strategies (see the module
    docstring).  ``progress`` (if given) is called as
    ``progress(scenario_id, executed)`` once per scenario —
    immediately for scenarios already in the store, on completion for
    executed ones.  Returns a
    :class:`~repro.sweeps.executor.SweepReport`; aggregate tables are
    read back from the store (:mod:`repro.sweeps.aggregate`) and
    progress snapshots from :func:`repro.sweeps.status.sweep_status`.
    """
    from repro.sweeps.executor import _plain_sweep
    from repro.sweeps.scheduler import _scheduled_sweep

    options = options or SweepOptions()
    if options.scheduler is not None:
        scheduler = options.scheduler
        if options.retry is not None:
            scheduler = dataclasses.replace(scheduler, retry=options.retry)
        return _scheduled_sweep(
            spec,
            store,
            options=scheduler,
            n_workers=options.n_workers,
            progress=progress,
            artifacts=options.artifacts,
        )
    return _plain_sweep(
        spec,
        store,
        n_workers=options.n_workers,
        progress=progress,
        artifacts=options.artifacts,
        pool=options.pool,
        retry=options.retry,
    )


__all__ = ["SweepOptions", "run"]
