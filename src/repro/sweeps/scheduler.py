"""Lease-based, fault-tolerant scheduling of sweep scenarios.

This is the robustness substrate under distributed sweep execution:
many scheduler instances (processes or machines) point at one shared
:class:`~repro.sweeps.store.SweepStore` root and together execute a
sweep, surviving worker death, stalls, and repeated failures.

Work units and leases
---------------------

The unit of work is one scenario digest.  Before executing a digest,
a scheduler claims an *atomic lease file*
(``<root>/.leases/<id>.lease`` — created with ``O_EXCL``, so exactly
one claimant wins) recording the owner id, a heartbeat timestamp and
the lease TTL.  While an attempt runs, the scheduler heartbeats the
lease; a lease whose heartbeat is older than its TTL is *stale* and
any scheduler may reclaim it — a dead worker's scenarios are re-leased
automatically.  Leases are an efficiency mechanism, not a correctness
one: if a paused-but-alive owner is reclaimed and the digest executes
twice, both executions produce byte-identical results and publish them
with atomic, idempotent renames, so the store cannot diverge.

Attempts, retries, quarantine
-----------------------------

Each attempt runs in a *child process* (so a crash — ``os._exit``,
SIGKILL, OOM — kills the attempt, never the scheduler) with an
optional wall-clock timeout after which it is killed.  Failed attempts
are recorded in ``<root>/.attempts/<id>.json`` (a persistent history:
attempt numbers survive scheduler restarts, which keeps seeded fault
plans deterministic across reruns) and retried with exponential
backoff up to :attr:`RetryPolicy.max_attempts` per scheduler run.  A
scenario that exhausts its attempts is *quarantined*: a
``<root>/failed/<id>.json`` record (exception type, message,
traceback, attempt count) is written and the sweep **continues** —
one poisoned scenario costs its own result, not the sweep's.  A later
run re-attempts quarantined scenarios with a fresh budget and clears
the quarantine record on success, so resume converges once the cause
is gone.

The standing invariant, now tested *under faults*
(:mod:`repro.sweeps.faultinject`): any interleaving of crashes,
retries, timeouts and concurrent schedulers yields a result store
byte-identical to a clean 1-worker run.  Operational metadata
(``.leases/``, ``.attempts/``, ``failed/``) lives beside the results
and is excluded from that identity by construction — result files are
only ever published through the store's atomic, deterministic writes.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import socket
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sweeps.faultinject import fault_context, fault_point
from repro.sweeps.spec import Scenario, SweepSpec, expand_scenarios
from repro.sweeps.store import SweepStore

#: Subdirectories of the store root holding operational metadata.
LEASE_DIR = ".leases"
ATTEMPT_DIR = ".attempts"
FAILED_DIR = "failed"

_logger = logging.getLogger(__name__)


def default_owner() -> str:
    """A unique owner id for one scheduler instance."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class RetryPolicy:
    """Per-scenario retry budget and exponential backoff schedule."""

    #: Attempts per scenario *per run* (1 = no retry).
    max_attempts: int = 3
    #: Delay after the first failed attempt, in seconds.
    backoff_base: float = 0.1
    #: Multiplier applied per further failure.
    backoff_factor: float = 2.0
    #: Ceiling on any single delay.
    backoff_max: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay(self, failures: int) -> float:
        """Backoff after the ``failures``-th consecutive failure (1-based)."""
        if failures < 1:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (failures - 1),
        )


@dataclass(frozen=True)
class SchedulerOptions:
    """Tuning knobs of one :func:`run_scheduled_sweep` instance."""

    #: Seconds without a heartbeat after which a lease is stale.
    lease_ttl: float = 30.0
    #: Heartbeat period while an attempt runs (default: ``lease_ttl/4``).
    heartbeat_interval: Optional[float] = None
    #: Scheduler loop sleep when nothing is runnable.
    poll_interval: float = 0.05
    #: Kill any single attempt after this many seconds (None = never).
    scenario_timeout: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Owner id (default: a fresh ``host:pid:uuid`` per run).
    owner: Optional[str] = None
    #: Seconds between periodic progress log lines (INFO on this
    #: module's logger, rendered by the shared
    #: :func:`repro.sweeps.status.render_status` snapshot; None = off).
    status_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.scenario_timeout is not None and self.scenario_timeout <= 0:
            raise ValueError("scenario_timeout must be > 0")
        if self.status_interval is not None and self.status_interval <= 0:
            raise ValueError("status_interval must be > 0")

    @property
    def effective_heartbeat(self) -> float:
        return self.heartbeat_interval or self.lease_ttl / 4.0


def _atomic_write_json(path: str, payload: object) -> None:
    """Crash-safe JSON write used for all operational metadata."""
    tmp = f"{path}.tmp-{uuid.uuid4().hex[:8]}"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


class LeaseManager:
    """Atomic lease files under ``<root>/.leases/``, one per digest.

    A lease is claimed by exclusive file creation — exactly one
    claimant wins.  Reclaiming a stale lease renames it to a
    per-claimant scratch name first; the rename succeeds for exactly
    one reclaimer, so a stale lease is stolen at most once per expiry.
    """

    def __init__(self, root: str, ttl: float, owner: Optional[str] = None):
        self.root = root
        self.ttl = ttl
        self.owner = owner or default_owner()
        self.dir = os.path.join(root, LEASE_DIR)
        os.makedirs(self.dir, exist_ok=True)

    def path(self, scenario_id: str) -> str:
        return os.path.join(self.dir, f"{scenario_id}.lease")

    def read(self, scenario_id: str) -> Optional[dict]:
        """The current lease payload, or None when unleased/corrupt."""
        try:
            with open(self.path(scenario_id)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # A torn write by a crashed owner: treat as stale below.
            return {"owner": "?", "heartbeat": 0.0, "ttl": self.ttl}

    def is_stale(self, lease: dict) -> bool:
        ttl = float(lease.get("ttl", self.ttl))
        return time.time() - float(lease.get("heartbeat", 0.0)) > ttl

    def _payload(self) -> dict:
        return {"owner": self.owner, "heartbeat": time.time(), "ttl": self.ttl}

    def acquire(self, scenario_id: str) -> bool:
        """Claim the digest; False when another live owner holds it."""
        path = self.path(scenario_id)
        for _ in range(3):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                lease = self.read(scenario_id)
                if lease is None:
                    continue  # released between open and read; retry
                if not self.is_stale(lease):
                    return False
                # Steal: exactly one reclaimer wins the rename.
                scratch = f"{path}.stale-{uuid.uuid4().hex[:8]}"
                try:
                    os.rename(path, scratch)
                except FileNotFoundError:
                    continue  # someone else stole or released it; retry
                os.unlink(scratch)
                continue
            with os.fdopen(fd, "w") as handle:
                json.dump(self._payload(), handle)
            return True
        return False

    def heartbeat(self, scenario_id: str) -> bool:
        """Refresh our lease; False when we no longer own it."""
        lease = self.read(scenario_id)
        if lease is None or lease.get("owner") != self.owner:
            return False
        _atomic_write_json(self.path(scenario_id), self._payload())
        return True

    def release(self, scenario_id: str) -> None:
        try:
            os.unlink(self.path(scenario_id))
        except FileNotFoundError:
            pass

    def scrub(self) -> List[str]:
        """Remove expired leases and reclaim scratch; returns paths."""
        removed: List[str] = []
        for entry in sorted(os.listdir(self.dir)):
            path = os.path.join(self.dir, entry)
            if not os.path.isfile(path):
                continue
            if ".stale-" in entry or entry.endswith(".tmp") or ".tmp-" in entry:
                os.unlink(path)
                removed.append(path)
                continue
            if entry.endswith(".lease"):
                lease = self.read(entry[: -len(".lease")])
                if lease is not None and self.is_stale(lease):
                    os.unlink(path)
                    removed.append(path)
        return removed


def error_info(error: BaseException) -> Dict[str, object]:
    """JSON-able description of one failure."""
    return {
        "type": type(error).__name__,
        "message": str(error),
        "traceback": traceback.format_exc(),
    }


class FailureLog:
    """Attempt history and quarantine records beside the store.

    ``.attempts/<id>.json`` holds the persistent list of attempts
    (owner, start time, error once known) — attempt *numbers* are
    global across runs and schedulers, which keeps seeded fault plans
    and backoff deterministic under restart.  ``failed/<id>.json`` is
    the quarantine record of a scenario that exhausted its retry
    budget; it is cleared the moment the scenario later succeeds.
    """

    def __init__(self, root: str):
        self.root = root
        self.attempts_dir = os.path.join(root, ATTEMPT_DIR)
        self.failed_dir = os.path.join(root, FAILED_DIR)

    def attempts_path(self, scenario_id: str) -> str:
        return os.path.join(self.attempts_dir, f"{scenario_id}.json")

    def failed_path(self, scenario_id: str) -> str:
        return os.path.join(self.failed_dir, f"{scenario_id}.json")

    def error_scratch_path(self, scenario_id: str, attempt: int) -> str:
        return os.path.join(
            self.attempts_dir, f"{scenario_id}.err-{attempt}.json"
        )

    # -- attempts --------------------------------------------------------

    def history(self, scenario_id: str) -> List[dict]:
        try:
            with open(self.attempts_path(scenario_id)) as handle:
                return list(json.load(handle))
        except (FileNotFoundError, ValueError):
            return []

    def record_attempt(self, scenario_id: str, owner: str) -> int:
        """Append an attempt-start entry; returns its 1-based number.

        Only the lease holder (or the single executor thread working
        this digest) writes here, so read-modify-write is safe.
        """
        os.makedirs(self.attempts_dir, exist_ok=True)
        history = self.history(scenario_id)
        history.append({"owner": owner, "started": time.time(), "error": None})
        _atomic_write_json(self.attempts_path(scenario_id), history)
        return len(history)

    def record_error(self, scenario_id: str, error: Dict[str, object]) -> None:
        """Attach the failure detail to the latest attempt entry."""
        history = self.history(scenario_id)
        if history:
            history[-1]["error"] = error
            _atomic_write_json(self.attempts_path(scenario_id), history)

    # -- quarantine ------------------------------------------------------

    def quarantine(
        self,
        scenario: Scenario,
        error: Dict[str, object],
        attempts: int,
        owner: str,
    ) -> None:
        os.makedirs(self.failed_dir, exist_ok=True)
        _atomic_write_json(
            self.failed_path(scenario.scenario_id),
            {
                "scenario_id": scenario.scenario_id,
                "overrides": dict(scenario.overrides),
                "attempts": attempts,
                "owner": owner,
                "quarantined_at": time.time(),
                "error": error,
            },
        )

    def load_quarantine(self, scenario_id: str) -> Optional[dict]:
        try:
            with open(self.failed_path(scenario_id)) as handle:
                return json.load(handle)
        except (FileNotFoundError, ValueError):
            return None

    def quarantined_ids(self) -> List[str]:
        if not os.path.isdir(self.failed_dir):
            return []
        return sorted(
            entry[: -len(".json")]
            for entry in os.listdir(self.failed_dir)
            if entry.endswith(".json")
        )

    def clear_quarantine(self, scenario_id: str) -> None:
        try:
            os.unlink(self.failed_path(scenario_id))
        except FileNotFoundError:
            pass

    def scrub(self, store: SweepStore) -> List[str]:
        """Remove scratch error files and quarantines of completed work."""
        removed: List[str] = []
        if os.path.isdir(self.attempts_dir):
            for entry in sorted(os.listdir(self.attempts_dir)):
                if ".err-" in entry or ".tmp-" in entry:
                    path = os.path.join(self.attempts_dir, entry)
                    os.unlink(path)
                    removed.append(path)
        for scenario_id in self.quarantined_ids():
            if store.has(scenario_id):
                path = self.failed_path(scenario_id)
                os.unlink(path)
                removed.append(path)
        return removed


# -- child-process attempt execution --------------------------------------

#: Child exit code for a failure that was caught and written to the
#: error scratch file (anything else without a scratch file = crash).
HANDLED_FAILURE_EXIT = 3


def _attempt_child(
    store_root: str,
    scenario: Scenario,
    attempt: int,
    artifact_options,
    error_path: str,
) -> None:
    """Run one attempt to completion inside a dedicated process.

    Success is communicated through the store itself (the record file
    appears); handled failures through ``error_path``; crashes through
    the exit code alone.
    """
    from repro.sweeps.scenario import run_scenario

    try:
        artifacts = None
        if artifact_options is not None:
            from repro.experiments.artifacts import process_artifact_cache

            artifacts = process_artifact_cache(artifact_options)
        store = SweepStore(store_root)
        with fault_context(scenario.scenario_id, attempt):
            fault_point("scenario.pre")
            result = run_scenario(scenario, artifacts=artifacts)
            fault_point("scenario.post")
            store.put(
                scenario.scenario_id, result["record"], result["arrays"]
            )
    except Exception as error:  # noqa: BLE001 — the whole point
        _atomic_write_json(error_path, error_info(error))
        os._exit(HANDLED_FAILURE_EXIT)


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    scenario: Scenario
    attempt: int
    error_path: str
    deadline: Optional[float]
    next_heartbeat: float


def _scheduled_sweep(
    spec: SweepSpec,
    store: SweepStore,
    options: Optional[SchedulerOptions] = None,
    n_workers: int = 1,
    progress: Optional[Callable[[str, bool], None]] = None,
    artifacts=None,
):
    """Execute every missing scenario of ``spec`` under lease scheduling.

    This is the lease-based execution strategy behind the unified
    :func:`repro.sweeps.run` facade (selected by
    :attr:`~repro.sweeps.api.SweepOptions.scheduler`); the historical
    :func:`run_scheduled_sweep` entry point survives as a deprecated
    alias.

    Safe to run concurrently with other ``run_scheduled_sweep`` calls
    (other processes, other machines over a shared filesystem) on the
    same store root: leases keep the instances off each other's work,
    stale-lease reclamation absorbs dead instances, and the store's
    idempotent atomic writes make even a duplicated execution
    harmless.  Each attempt runs in a child process, so worker crashes
    and timeouts are contained and retried per :class:`RetryPolicy`;
    scenarios that exhaust their budget are quarantined under
    ``failed/`` and the sweep continues.

    Returns the same :class:`~repro.sweeps.executor.SweepReport` as
    :func:`~repro.sweeps.executor.run_sweep`, with ``failed_ids`` /
    ``retried_ids`` filled in.  Scenarios completed by *another*
    scheduler while this one waited are reported as cached.

    ``artifacts`` (an :class:`~repro.experiments.artifacts
    .ArtifactOptions`) is forwarded to each attempt child; the on-disk
    artifact tier is the sharing vehicle across attempts and
    schedulers.  The cross-campaign batch pool does not apply here —
    each attempt is deliberately isolated in its own process.
    """
    from repro.sweeps.executor import SweepReport, _pool_context

    options = options or SchedulerOptions()
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    owner = options.owner or default_owner()
    leases = LeaseManager(store.root, options.lease_ttl, owner)
    log = FailureLog(store.root)
    ctx = _pool_context()

    scenarios = expand_scenarios(spec)
    report = SweepReport(
        spec_name=spec.name,
        store_root=store.root,
        scenario_ids=[s.scenario_id for s in scenarios],
        n_workers=n_workers,
    )
    pending: Dict[str, Scenario] = {}
    for scenario in scenarios:
        if store.has(scenario.scenario_id):
            report.cached_ids.append(scenario.scenario_id)
            if progress is not None:
                progress(scenario.scenario_id, False)
        else:
            pending[scenario.scenario_id] = scenario

    running: Dict[str, _Running] = {}
    failures_this_run: Dict[str, int] = {}
    next_due: Dict[str, float] = {}
    retried: set = set()
    next_status = (
        time.monotonic() + options.status_interval
        if options.status_interval is not None
        else None
    )

    def log_status() -> None:
        # Lazy import: repro.sweeps.status builds on this module.
        from repro.sweeps.status import render_status, sweep_status

        snapshot = sweep_status(
            store.root,
            scenario_ids=report.scenario_ids,
            lease_ttl=options.lease_ttl,
        )
        _logger.info("sweep %r [%s]: %s", spec.name, owner, render_status(snapshot))

    def read_error(run: _Running) -> Dict[str, object]:
        try:
            with open(run.error_path) as handle:
                error = json.load(handle)
        except (FileNotFoundError, ValueError):
            error = {
                "type": "WorkerCrash",
                "message": (
                    "attempt process died with exit code "
                    f"{run.process.exitcode} before completing"
                ),
                "traceback": "",
            }
        try:
            os.unlink(run.error_path)
        except FileNotFoundError:
            pass
        return error

    def attempt_failed(scenario_id: str, run: _Running, error) -> None:
        log.record_error(scenario_id, error)
        leases.release(scenario_id)
        del running[scenario_id]
        failures = failures_this_run.get(scenario_id, 0) + 1
        failures_this_run[scenario_id] = failures
        if failures >= options.retry.max_attempts:
            log.quarantine(run.scenario, error, run.attempt, owner)
            report.failed_ids.append(scenario_id)
            del pending[scenario_id]
        else:
            retried.add(scenario_id)
            next_due[scenario_id] = time.monotonic() + options.retry.delay(failures)

    while pending:
        progressed = False

        # Reap / supervise running attempts.
        for scenario_id in list(running):
            run = running[scenario_id]
            if run.process.is_alive():
                now = time.monotonic()
                if run.deadline is not None and now >= run.deadline:
                    run.process.kill()
                    run.process.join()
                    attempt_failed(
                        scenario_id,
                        run,
                        {
                            "type": "ScenarioTimeout",
                            "message": (
                                "attempt exceeded the scenario timeout of "
                                f"{options.scenario_timeout}s and was killed"
                            ),
                            "traceback": "",
                        },
                    )
                    progressed = True
                elif now >= run.next_heartbeat:
                    leases.heartbeat(scenario_id)
                    run.next_heartbeat = now + options.effective_heartbeat
                continue
            run.process.join()
            if store.has(scenario_id):
                leases.release(scenario_id)
                log.clear_quarantine(scenario_id)
                del running[scenario_id]
                del pending[scenario_id]
                report.executed_ids.append(scenario_id)
                if progress is not None:
                    progress(scenario_id, True)
            else:
                attempt_failed(scenario_id, run, read_error(run))
            progressed = True

        # Fill free worker slots with due, claimable scenarios.
        now = time.monotonic()
        for scenario_id, scenario in list(pending.items()):
            if len(running) >= n_workers:
                break
            if scenario_id in running:
                continue
            if now < next_due.get(scenario_id, 0.0):
                continue
            if store.has(scenario_id):
                # Another scheduler finished it while we waited.
                del pending[scenario_id]
                report.cached_ids.append(scenario_id)
                if progress is not None:
                    progress(scenario_id, False)
                progressed = True
                continue
            if not leases.acquire(scenario_id):
                continue  # a live owner is on it; wait or reclaim later
            attempt = log.record_attempt(scenario_id, owner)
            error_path = log.error_scratch_path(scenario_id, attempt)
            process = ctx.Process(
                target=_attempt_child,
                args=(store.root, scenario, attempt, artifacts, error_path),
            )
            process.start()
            start = time.monotonic()
            running[scenario_id] = _Running(
                process=process,
                scenario=scenario,
                attempt=attempt,
                error_path=error_path,
                deadline=(
                    start + options.scenario_timeout
                    if options.scenario_timeout is not None
                    else None
                ),
                next_heartbeat=start + options.effective_heartbeat,
            )
            progressed = True

        if next_status is not None and time.monotonic() >= next_status:
            log_status()
            next_status = time.monotonic() + options.status_interval

        if pending and not progressed:
            time.sleep(options.poll_interval)

    if next_status is not None:
        log_status()
    report.executed_ids.sort()
    report.cached_ids.sort()
    report.failed_ids.sort()
    report.retried_ids.extend(sorted(retried))
    return report


def run_scheduled_sweep(
    spec: SweepSpec,
    store: SweepStore,
    options: Optional[SchedulerOptions] = None,
    n_workers: int = 1,
    progress: Optional[Callable[[str, bool], None]] = None,
    artifacts=None,
):
    """Deprecated alias of :func:`repro.sweeps.run` with lease scheduling.

    Behaviour is unchanged (byte-identical stores, pinned by test):
    the call routes through the unified facade with
    ``SweepOptions(scheduler=options or SchedulerOptions())``.  New
    code should call ``repro.sweeps.run(spec, store,
    SweepOptions(scheduler=SchedulerOptions(...), ...))``.
    """
    import warnings

    warnings.warn(
        "run_scheduled_sweep() is deprecated; use repro.sweeps.run(spec, "
        "store, SweepOptions(scheduler=SchedulerOptions(...))) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sweeps.api import SweepOptions, run

    return run(
        spec,
        store,
        SweepOptions(
            n_workers=n_workers,
            artifacts=artifacts,
            scheduler=options or SchedulerOptions(),
        ),
        progress=progress,
    )


__all__ = [
    "ATTEMPT_DIR",
    "FAILED_DIR",
    "LEASE_DIR",
    "FailureLog",
    "LeaseManager",
    "RetryPolicy",
    "SchedulerOptions",
    "default_owner",
    "error_info",
    "run_scheduled_sweep",
]
