"""One shared snapshot of a sweep's execution state on disk.

Everything a sweep does is visible in the store root: completed
results (``<id>.json`` records), live leases (``.leases/``), attempt
history (``.attempts/``) and quarantines (``failed/``).
:func:`sweep_status` reads those four surfaces into one
:class:`SweepStatus` value — the *same* snapshot code backs the
service's ``GET /sweeps/{id}`` poll endpoint, the CLI's post-run
summary line and the scheduler's periodic log lines, so an operator
sees identical numbers whichever window they look through.

The snapshot is advisory by design: it is computed from plain
directory reads with no locking, so counts taken while writers are
active can be momentarily inconsistent with each other (a scenario
may complete between the store scan and the lease scan).  That is the
right trade for a poll endpoint — cheap, lock-free, and convergent
the moment the sweep settles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sweeps.scheduler import LEASE_DIR, FailureLog, LeaseManager
from repro.sweeps.store import SweepStore


@dataclass(frozen=True)
class SweepStatus:
    """Counts describing one sweep's progress over a store root.

    ``total``/``pending`` are only known when the caller scopes the
    snapshot to a scenario-id set (a spec expansion); an unscoped
    snapshot describes the whole store root and leaves them ``None``.
    ``leased`` counts live (non-stale) leases — in-flight work some
    scheduler instance owns right now.  ``retried`` counts scenarios
    whose persistent attempt history records more than one attempt;
    ``attempts`` is the total number of attempts ever recorded.
    """

    completed: int
    quarantined: int
    leased: int
    attempts: int
    retried: int
    total: Optional[int] = None
    pending: Optional[int] = None

    @property
    def done(self) -> bool:
        """True when every known scenario completed or quarantined."""
        return self.pending is not None and self.pending == 0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "completed": self.completed,
            "quarantined": self.quarantined,
            "leased": self.leased,
            "attempts": self.attempts,
            "retried": self.retried,
            "total": self.total,
            "pending": self.pending,
        }


def sweep_status(
    store_root: str,
    scenario_ids: Optional[Sequence[str]] = None,
    lease_ttl: float = 30.0,
) -> SweepStatus:
    """Snapshot the execution state of ``store_root``.

    ``scenario_ids`` scopes every count to one sweep's expansion (and
    makes ``total``/``pending`` known); without it the snapshot covers
    everything in the root, which may mix several sweeps.
    ``lease_ttl`` is only the staleness default for lease files that
    do not carry their own TTL (every lease written by this codebase
    does).
    """
    store = SweepStore(store_root)
    log = FailureLog(store_root)
    wanted = set(scenario_ids) if scenario_ids is not None else None

    def scoped(ids: List[str]) -> List[str]:
        if wanted is None:
            return ids
        return [scenario_id for scenario_id in ids if scenario_id in wanted]

    completed = scoped(store.ids())
    quarantined = scoped(log.quarantined_ids())

    leased = 0
    lease_dir = os.path.join(store_root, LEASE_DIR)
    if os.path.isdir(lease_dir):
        # LeaseManager creates its directory on construction, so it is
        # only instantiated once the directory is known to exist — a
        # status snapshot must not mutate the root it describes.
        leases = LeaseManager(store_root, ttl=lease_ttl)
        for entry in sorted(os.listdir(lease_dir)):
            if not entry.endswith(".lease"):
                continue
            scenario_id = entry[: -len(".lease")]
            if wanted is not None and scenario_id not in wanted:
                continue
            lease = leases.read(scenario_id)
            if lease is not None and not leases.is_stale(lease):
                leased += 1

    attempts = 0
    retried = 0
    if os.path.isdir(log.attempts_dir):
        for entry in sorted(os.listdir(log.attempts_dir)):
            if not entry.endswith(".json") or ".err-" in entry:
                continue
            scenario_id = entry[: -len(".json")]
            if wanted is not None and scenario_id not in wanted:
                continue
            history = log.history(scenario_id)
            attempts += len(history)
            if len(history) > 1:
                retried += 1

    total = len(wanted) if wanted is not None else None
    pending = (
        total - len(completed) - len(set(quarantined) - set(completed))
        if total is not None
        else None
    )
    return SweepStatus(
        completed=len(completed),
        quarantined=len(quarantined),
        leased=leased,
        attempts=attempts,
        retried=retried,
        total=total,
        pending=pending,
    )


def render_status(status: SweepStatus) -> str:
    """One-line human-readable form shared by CLI and scheduler logs."""
    if status.total is not None:
        head = f"completed {status.completed}/{status.total}"
        parts = [head, f"pending {status.pending}"]
    else:
        parts = [f"completed {status.completed}"]
    parts.append(f"leased {status.leased}")
    parts.append(f"quarantined {status.quarantined}")
    parts.append(
        f"attempts {status.attempts}"
        + (f" ({status.retried} retried)" if status.retried else "")
    )
    return " | ".join(parts)


__all__ = ["SweepStatus", "render_status", "sweep_status"]
