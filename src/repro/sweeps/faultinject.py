"""Deterministic fault injection for the sweep execution stack.

Robustness code that is merely *believed* to work is worse than none:
the recovery paths are the least-travelled code in the system, and a
latent bug there surfaces exactly when real data is on the line.  This
module makes every recovery path testable by injecting faults —
exceptions, hard process crashes, SIGKILLs and delays — at *named
sites* in scenario execution and store writes, under a seeded,
fully deterministic plan.

Model
-----

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule` s.  Instrumented code calls :func:`fault_point`
with a site name; the active plan decides — as a pure function of
``(plan seed, rule index, site, context key, context attempt)`` —
whether a rule fires.  The *context* (which scenario, which attempt)
is established by the executing layer via :func:`fault_context`, so a
rule can target one scenario (``key=``) or only early attempts
(``max_attempt=``), which is how tests script "fail twice, then
succeed" without any cross-process mutable state: the attempt number
is persisted by the scheduler's failure log, so the draw sequence
survives worker death and process restarts.

Sites instrumented today:

``scenario.pre``
    start of a scenario attempt, before the campaign executes;
``scenario.post``
    after the campaign computed its result, before the store write;
``store.put_arrays``
    inside :meth:`~repro.sweeps.store.SweepStore.put`, before the
    array bundle is atomically published;
``store.put_record``
    inside :meth:`~repro.sweeps.store.SweepStore.put`, before the
    completion record is atomically published (the commit point).

Activation
----------

Programmatic: :func:`install_fault_plan`.  Cross-process (CLI, CI,
scheduler worker children on any start method): export the plan JSON
in the :data:`FAULT_PLAN_ENV` environment variable — the first
:func:`fault_point` in any process reads it lazily.  With no plan
active, :func:`fault_point` is a near-free no-op, so the hooks stay
compiled into production paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Tuple

#: Environment variable carrying a JSON-encoded plan (see
#: :meth:`FaultPlan.to_json`); read lazily once per process.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code used by ``kind="crash"`` rules (``os._exit``), chosen to
#: be distinguishable from Python's own exit codes in tests and logs.
CRASH_EXIT_CODE = 66

#: Supported rule kinds.
KINDS = ("exception", "crash", "sigkill", "delay")


class InjectedFault(RuntimeError):
    """The exception raised by ``kind="exception"`` rules."""


@dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger at a named site.

    ``kind``:

    * ``"exception"`` — raise :class:`InjectedFault`;
    * ``"crash"`` — ``os._exit(CRASH_EXIT_CODE)`` (no cleanup, no
      ``finally`` blocks: a hard worker death);
    * ``"sigkill"`` — ``SIGKILL`` to the calling process (the kernel
      kills it; exit code is ``-SIGKILL`` to a joining parent);
    * ``"delay"`` — sleep ``delay`` seconds, then continue (models a
      stall; pair with a scenario timeout to exercise the kill path).

    ``key`` restricts the rule to one context key (a scenario id);
    ``max_attempt`` fires only while the context attempt number is at
    most that value (attempts are 1-based), which is how "transient"
    faults are scripted; ``probability`` thins firing with a seeded
    per-``(site, key, attempt)`` draw — deterministic, so two
    evaluations of the same plan fire identically.
    """

    site: str
    kind: str = "exception"
    key: Optional[str] = None
    max_attempt: Optional[int] = None
    probability: float = 1.0
    delay: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("a fault rule needs a site name")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; supported: {KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability {self.probability} outside [0, 1]"
            )
        if self.delay < 0:
            raise ValueError(f"negative delay {self.delay}")
        if self.kind == "delay" and self.delay == 0:
            raise ValueError("a delay rule needs delay > 0")
        if self.max_attempt is not None and self.max_attempt < 1:
            raise ValueError("max_attempt is 1-based; must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of rules.

    Rules are evaluated in order at each :func:`fault_point`; ``delay``
    rules fall through to later rules, terminal kinds do not return.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [asdict(r) for r in self.rules]}

    def to_json(self) -> str:
        """Compact JSON form, suitable for :data:`FAULT_PLAN_ENV`."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        rules = tuple(
            FaultRule(**dict(rule)) for rule in payload.get("rules", ())
        )
        return cls(rules=rules, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- evaluation ------------------------------------------------------

    def _draw(self, index: int, site: str, key: Optional[str], attempt: int) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{index}:{site}:{key}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def matching_rules(
        self, site: str, key: Optional[str], attempt: int
    ) -> Iterator[Tuple[int, FaultRule]]:
        """The ``(index, rule)`` pairs that fire for this evaluation."""
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.key is not None and rule.key != key:
                continue
            if rule.max_attempt is not None and attempt > rule.max_attempt:
                continue
            if rule.probability < 1.0 and (
                self._draw(index, site, key, attempt) >= rule.probability
            ):
                continue
            yield index, rule


# -- process-wide activation ---------------------------------------------

#: Sentinel meaning "environment not consulted yet".
_UNSET = object()
_active: object = _UNSET
_context = threading.local()


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` process-wide (``None`` deactivates)."""
    global _active
    _active = plan


def clear_fault_plan() -> None:
    """Deactivate any installed plan and re-arm the lazy env read."""
    global _active
    _active = _UNSET


def active_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from :data:`FAULT_PLAN_ENV`."""
    global _active
    if _active is _UNSET:
        payload = os.environ.get(FAULT_PLAN_ENV)
        _active = FaultPlan.from_json(payload) if payload else None
    return _active  # type: ignore[return-value]


@contextmanager
def fault_context(key: Optional[str], attempt: int = 1):
    """Scope the ambient (scenario id, attempt number) for this thread."""
    previous = (
        getattr(_context, "key", None),
        getattr(_context, "attempt", 1),
    )
    _context.key, _context.attempt = key, attempt
    try:
        yield
    finally:
        _context.key, _context.attempt = previous


def fault_point(site: str) -> None:
    """Evaluate the active plan at ``site`` (no-op without a plan).

    Raises :class:`InjectedFault`, kills the process, or sleeps,
    according to the first terminal matching rule; ``delay`` rules
    stack before a terminal one.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    key = getattr(_context, "key", None)
    attempt = getattr(_context, "attempt", 1)
    for _, rule in plan.matching_rules(site, key, attempt):
        if rule.kind == "delay":
            time.sleep(rule.delay)
        elif rule.kind == "exception":
            raise InjectedFault(
                f"{rule.message} [site={site} key={key} attempt={attempt}]"
            )
        elif rule.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        elif rule.kind == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_PLAN_ENV",
    "KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_context",
    "fault_point",
    "install_fault_plan",
]
