"""Scenario-sweep orchestration: declarative sweeps, multiprocess
execution, resumable content-addressed results, tidy aggregation.

The paper's evaluation is one operating point; this subsystem turns it
into surfaces.  Describe the axes once (:class:`SweepSpec`), execute
with any number of workers (:func:`run_sweep` — results are
bit-identical regardless), interrupt and resume freely (the
:class:`SweepStore` is content-addressed, so only missing scenarios
ever execute), then read tidy accuracy/ROC tables back
(:mod:`repro.sweeps.aggregate`).

Execution is fault-tolerant: failures retry with backoff
(:class:`RetryPolicy`), exhausted scenarios are quarantined while the
sweep continues, and :func:`run_scheduled_sweep` (or
``run_sweep(scheduler=...)``) adds lease-based scheduling — many
scheduler instances share one store root, worker death is absorbed by
stale-lease reclamation, and every recovery path is exercised under
the deterministic fault-injection harness
(:mod:`repro.sweeps.faultinject`).
"""

from repro.sweeps.aggregate import (
    accuracy_pivot,
    matching_scores,
    render_sweep_summary,
    roc_by_axis,
    tidy_accuracy,
)
from repro.sweeps.executor import (
    SweepReport,
    default_workers,
    run_sweep,
)
from repro.sweeps.faultinject import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_context,
    fault_point,
    install_fault_plan,
)
from repro.sweeps.scheduler import (
    FailureLog,
    LeaseManager,
    RetryPolicy,
    SchedulerOptions,
    run_scheduled_sweep,
)
from repro.sweeps.scenario import (
    ATTACKS,
    apply_attack,
    outcome_arrays,
    outcome_metrics,
    run_scenario,
    run_scenario_campaign,
)
from repro.sweeps.spec import (
    ANALYSIS_FIELDS,
    ATTACK_FIELD,
    CONFIG_FIELDS,
    GridAxis,
    RandomAxis,
    Scenario,
    SweepSpec,
    expand_scenarios,
    scenario_config,
    spec_from_dict,
    spec_to_dict,
)
from repro.sweeps.store import SweepStore

__all__ = [
    "ANALYSIS_FIELDS",
    "ATTACKS",
    "ATTACK_FIELD",
    "CONFIG_FIELDS",
    "FailureLog",
    "FaultPlan",
    "FaultRule",
    "GridAxis",
    "InjectedFault",
    "LeaseManager",
    "RandomAxis",
    "RetryPolicy",
    "Scenario",
    "SchedulerOptions",
    "SweepSpec",
    "SweepReport",
    "SweepStore",
    "accuracy_pivot",
    "active_fault_plan",
    "apply_attack",
    "clear_fault_plan",
    "default_workers",
    "expand_scenarios",
    "fault_context",
    "fault_point",
    "install_fault_plan",
    "matching_scores",
    "outcome_arrays",
    "outcome_metrics",
    "render_sweep_summary",
    "roc_by_axis",
    "run_scenario",
    "run_scenario_campaign",
    "run_scheduled_sweep",
    "run_sweep",
    "scenario_config",
    "spec_from_dict",
    "spec_to_dict",
    "tidy_accuracy",
]
