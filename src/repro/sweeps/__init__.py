"""Scenario sweeps as a service-grade subsystem: declare, run, poll,
aggregate.

The paper's evaluation is one operating point; this subsystem turns it
into surfaces — and into *jobs*.  The public surface is deliberately
small:

* :class:`SweepSpec` declares the surface (grid + random axes over
  campaign-config paths, an ``attack`` axis, derived per-scenario
  seeds).  Its JSON wire format — :meth:`SweepSpec.to_json_dict` /
  :meth:`SweepSpec.from_json_dict`, stamped with a ``schema_version``
  and validated with errors that name the offending path
  (:class:`SpecValidationError`) — is what the HTTP sweep service
  (:mod:`repro.service`), saved spec files and any other embedder
  speak.

* :func:`run` is **the one entry point for executing a sweep**:
  ``run(spec, store, SweepOptions(...))``.  :class:`SweepOptions`
  carries every knob — worker count, artifact sharing, the
  cross-campaign batch pool, retry policy, and (by setting
  ``scheduler=SchedulerOptions(...)``) lease-based fault-tolerant
  scheduling in which attempts run in isolated child processes with
  timeouts and any number of instances safely share one store root.
  Whatever the options, the resulting :class:`SweepStore` is
  byte-identical to a clean single-worker run.  The historical entry
  points ``run_sweep`` and ``run_scheduled_sweep`` remain as thin
  deprecated aliases of this facade.

* :func:`sweep_status` snapshots a store root's execution state
  (completed / pending / leased / quarantined / attempt counts) —
  the same :class:`SweepStatus` backs the service's poll endpoint,
  the CLI summary and the scheduler's log lines.

* :mod:`repro.sweeps.aggregate` reads tidy accuracy / ROC tables back
  out of the store.

Execution is resumable (the store is content-addressed; only missing
scenario digests run) and fault-tolerant: failures retry with backoff
(:class:`RetryPolicy`), exhausted scenarios are quarantined under
``failed/`` while the sweep continues, and every recovery path is
exercised under the deterministic fault-injection harness
(:mod:`repro.sweeps.faultinject`).
"""

from repro.sweeps.aggregate import (
    accuracy_pivot,
    matching_scores,
    render_sweep_summary,
    roc_by_axis,
    tidy_accuracy,
)
from repro.sweeps.api import (
    SweepOptions,
    run,
)
from repro.sweeps.executor import (
    SweepReport,
    default_workers,
    run_sweep,
)
from repro.sweeps.faultinject import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_fault_plan,
    clear_fault_plan,
    fault_context,
    fault_point,
    install_fault_plan,
)
from repro.sweeps.scheduler import (
    FailureLog,
    LeaseManager,
    RetryPolicy,
    SchedulerOptions,
    run_scheduled_sweep,
)
from repro.sweeps.scenario import (
    ATTACKS,
    apply_attack,
    outcome_arrays,
    outcome_metrics,
    run_scenario,
    run_scenario_campaign,
)
from repro.sweeps.spec import (
    ANALYSIS_FIELDS,
    ATTACK_FIELD,
    CONFIG_FIELDS,
    SCHEMA_VERSION,
    GridAxis,
    RandomAxis,
    Scenario,
    SpecValidationError,
    SweepSpec,
    expand_scenarios,
    scenario_config,
    spec_from_dict,
    spec_to_dict,
)
from repro.sweeps.status import (
    SweepStatus,
    render_status,
    sweep_status,
)
from repro.sweeps.store import SweepStore

__all__ = [
    "ANALYSIS_FIELDS",
    "ATTACKS",
    "ATTACK_FIELD",
    "CONFIG_FIELDS",
    "SCHEMA_VERSION",
    "FailureLog",
    "FaultPlan",
    "FaultRule",
    "GridAxis",
    "InjectedFault",
    "LeaseManager",
    "RandomAxis",
    "RetryPolicy",
    "Scenario",
    "SchedulerOptions",
    "SpecValidationError",
    "SweepOptions",
    "SweepSpec",
    "SweepReport",
    "SweepStatus",
    "SweepStore",
    "accuracy_pivot",
    "active_fault_plan",
    "apply_attack",
    "clear_fault_plan",
    "default_workers",
    "expand_scenarios",
    "fault_context",
    "fault_point",
    "install_fault_plan",
    "matching_scores",
    "outcome_arrays",
    "outcome_metrics",
    "render_status",
    "render_sweep_summary",
    "roc_by_axis",
    "run",
    "run_scenario",
    "run_scenario_campaign",
    "run_scheduled_sweep",
    "run_sweep",
    "scenario_config",
    "spec_from_dict",
    "spec_to_dict",
    "sweep_status",
    "tidy_accuracy",
]
