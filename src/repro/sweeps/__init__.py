"""Scenario-sweep orchestration: declarative sweeps, multiprocess
execution, resumable content-addressed results, tidy aggregation.

The paper's evaluation is one operating point; this subsystem turns it
into surfaces.  Describe the axes once (:class:`SweepSpec`), execute
with any number of workers (:func:`run_sweep` — results are
bit-identical regardless), interrupt and resume freely (the
:class:`SweepStore` is content-addressed, so only missing scenarios
ever execute), then read tidy accuracy/ROC tables back
(:mod:`repro.sweeps.aggregate`).
"""

from repro.sweeps.aggregate import (
    accuracy_pivot,
    matching_scores,
    render_sweep_summary,
    roc_by_axis,
    tidy_accuracy,
)
from repro.sweeps.executor import (
    SweepReport,
    default_workers,
    run_sweep,
)
from repro.sweeps.scenario import (
    ATTACKS,
    apply_attack,
    outcome_arrays,
    outcome_metrics,
    run_scenario,
    run_scenario_campaign,
)
from repro.sweeps.spec import (
    ANALYSIS_FIELDS,
    ATTACK_FIELD,
    CONFIG_FIELDS,
    GridAxis,
    RandomAxis,
    Scenario,
    SweepSpec,
    expand_scenarios,
    scenario_config,
    spec_from_dict,
    spec_to_dict,
)
from repro.sweeps.store import SweepStore

__all__ = [
    "ANALYSIS_FIELDS",
    "ATTACKS",
    "ATTACK_FIELD",
    "CONFIG_FIELDS",
    "GridAxis",
    "RandomAxis",
    "Scenario",
    "SweepSpec",
    "SweepReport",
    "SweepStore",
    "accuracy_pivot",
    "apply_attack",
    "default_workers",
    "expand_scenarios",
    "matching_scores",
    "outcome_arrays",
    "outcome_metrics",
    "render_sweep_summary",
    "roc_by_axis",
    "run_scenario",
    "run_scenario_campaign",
    "run_sweep",
    "scenario_config",
    "spec_from_dict",
    "spec_to_dict",
    "tidy_accuracy",
]
