"""Declarative scenario sweeps over :class:`CampaignConfig` axes.

The paper demonstrates its claims at one operating point (one noise
level, one trace budget, one fleet).  A :class:`SweepSpec` describes a
whole *surface*: a cartesian grid (:class:`GridAxis`) and/or random
samples (:class:`RandomAxis`) over campaign-config fields — noise
sigma, the n1/n2 trace budgets, ADC resolution, process variation,
watermarked vs. plain fleets, the simulation engine, the workload
``design`` (paper IPs or an imported circuit) — plus the special
``"attack"`` axis that applies a netlist transform from
:mod:`repro.attacks` to every DUT before measurement.

Expanding a spec (:func:`expand_scenarios`) yields fully resolved
:class:`Scenario` objects.  Every scenario carries

* a flat override mapping (base overrides + its axis assignment + the
  derived per-scenario seeds), which :func:`scenario_config` turns into
  a runnable :class:`~repro.experiments.runner.CampaignConfig`;
* a content digest (:attr:`Scenario.scenario_id`) over a canonical JSON
  encoding of those overrides.  The digest is what makes sweeps
  resumable and extendable: two scenarios with the same overrides are
  the same work unit, whichever spec they came from.

Seeding is derived *deterministically from the spec*: unless an axis or
the base overrides pin them, each scenario's fleet / measurement /
analysis seeds are mixed from ``spec.seed`` and the scenario's axis
assignment.  Results therefore do not depend on worker count or
execution order, and repeat-style sweeps are just an explicit axis over
``measurement_seed``.

**Artifact sharing.**  Scenarios whose fleet and measurement tiers
agree (see :mod:`repro.experiments.artifacts`) can share manufactured
fleets and acquired trace matrices.  Because the derived seeds mix the
*whole* assignment, an analysis-axis-only grid (:data:`ANALYSIS_FIELDS`
— ``parameters.k/m/n1/n2``, ``analysis_seed``, ``single_reference``)
still gets a distinct ``measurement_seed`` per scenario; to unlock
sharing, pin ``fleet_seed`` and ``measurement_seed`` in ``base`` —
scenario digests stay stable either way, since the digest covers the
final override values, not how they were derived.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.experiments.runner import CampaignConfig, apply_config_overrides

#: Version stamped into every scenario digest; bump when the scenario
#: encoding or the result payload changes incompatibly.
SCHEMA_VERSION = 1

#: The special axis applying a DUT netlist transform (see
#: :data:`repro.sweeps.scenario.ATTACKS`).
ATTACK_FIELD = "attack"

#: Overridable campaign-config paths (dotted = nested dataclass field).
#: ``apply_config_overrides`` validates sub-fields exhaustively; this
#: set exists so a spec fails at *construction* time, before any
#: process pool is spun up.
CONFIG_FIELDS = frozenset(
    {
        "watermarked",
        "single_reference",
        "engine",
        "design",
        "fleet_seed",
        "measurement_seed",
        "analysis_seed",
        "adc",
        "variation",
        "waveform",
        "parameters.k",
        "parameters.m",
        "parameters.n1",
        "parameters.n2",
        "noise.sigma",
        "noise.drift_sigma",
        "adc.bits",
        "adc.headroom",
        "variation.gain_sigma",
        "variation.offset_sigma",
        "variation.component_sigma",
        ATTACK_FIELD,
    }
)

#: Analysis-side sweep fields: they change what is *computed from* the
#: acquired traces, never the traces themselves (``n1``/``n2`` are mere
#: ceilings — keyed acquisition is prefix-stable across budgets).  A
#: grid confined to these fields can share every fleet and acquisition
#: artifact once ``fleet_seed``/``measurement_seed`` are pinned in
#: ``base``.
ANALYSIS_FIELDS = frozenset(
    {
        "parameters.k",
        "parameters.m",
        "parameters.n1",
        "parameters.n2",
        "analysis_seed",
        "single_reference",
    }
)

#: Seeds derived per scenario when not pinned by base/axes.
_DERIVED_SEEDS = ("fleet_seed", "measurement_seed", "analysis_seed")


def canonical_json(value: object) -> str:
    """Canonical (sorted, compact) JSON encoding used for digests."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class SpecValidationError(ValueError):
    """A sweep-spec JSON payload failed validation.

    ``path`` names the offending location inside the payload
    (``"grid[1].values"``, ``"base.noise.sigma"``, ``"schema_version"``,
    or ``"$"`` for the payload root), so wire-format errors — the
    sweep service returns them verbatim as HTTP 400 detail — point at
    the field to fix instead of at a Python traceback.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        self.detail = message
        super().__init__(f"{path}: {message}")


def _check_field(name: str) -> None:
    if name not in CONFIG_FIELDS:
        raise KeyError(
            f"unknown sweep field {name!r}; valid fields: "
            f"{sorted(CONFIG_FIELDS)}"
        )


def _check_value(field_name: str, value: object) -> None:
    if value is not None and not isinstance(value, (bool, int, float, str)):
        raise TypeError(
            f"axis {field_name!r}: value {value!r} is not a JSON scalar"
        )


@dataclass(frozen=True)
class GridAxis:
    """One swept dimension with an explicit value list."""

    field: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        _check_field(self.field)
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.field!r} has no values")
        for value in self.values:
            _check_value(self.field, value)
        if len(set(map(repr, self.values))) != len(self.values):
            raise ValueError(f"axis {self.field!r} has duplicate values")


@dataclass(frozen=True)
class RandomAxis:
    """One dimension sampled uniformly (optionally log-uniform) per draw."""

    field: str
    low: float
    high: float
    log: bool = False
    integer: bool = False

    def __post_init__(self) -> None:
        _check_field(self.field)
        if self.field == ATTACK_FIELD:
            raise ValueError("the attack axis cannot be randomly sampled")
        if not self.low < self.high:
            raise ValueError(
                f"axis {self.field!r}: low {self.low} must be < high {self.high}"
            )
        if self.log and self.low <= 0:
            raise ValueError(f"axis {self.field!r}: log sampling needs low > 0")

    def sample(self, rng: np.random.Generator) -> object:
        if self.log:
            value = float(
                np.exp(rng.uniform(np.log(self.low), np.log(self.high)))
            )
        else:
            value = float(rng.uniform(self.low, self.high))
        return int(round(value)) if self.integer else value


@dataclass(frozen=True)
class SweepSpec:
    """A declarative description of one scenario sweep.

    ``grid`` axes are crossed (cartesian product); ``random`` axes are
    jointly drawn ``n_random`` times and crossed with the grid.  ``base``
    overrides apply to every scenario (axes win on conflict).  ``seed``
    feeds both the random-axis sampling and the per-scenario derived
    seeds.
    """

    name: str
    grid: Tuple[GridAxis, ...] = ()
    random: Tuple[RandomAxis, ...] = ()
    n_random: int = 0
    base: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", tuple(self.grid))
        object.__setattr__(self, "random", tuple(self.random))
        object.__setattr__(self, "base", dict(self.base))
        if not self.name:
            raise ValueError("a sweep needs a name")
        for key, value in self.base.items():
            _check_field(key)
            _check_value(key, value)
        fields = [axis.field for axis in self.grid] + [
            axis.field for axis in self.random
        ]
        duplicates = {f for f in fields if fields.count(f) > 1}
        if duplicates:
            raise ValueError(f"field(s) swept twice: {sorted(duplicates)}")
        if self.random and self.n_random <= 0:
            raise ValueError("random axes need n_random > 0")
        if self.n_random and not self.random:
            raise ValueError("n_random > 0 needs at least one random axis")

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios the spec expands to."""
        total = 1
        for axis in self.grid:
            total *= len(axis.values)
        if self.random:
            total *= self.n_random
        return total

    # -- JSON wire format ------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """The spec's JSON wire format (see :meth:`from_json_dict`).

        Carries an explicit ``schema_version`` so embedders (the sweep
        service, saved spec files) can detect incompatible encodings
        the moment the scenario digest scheme is ever bumped, instead
        of silently re-deriving different digests.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "grid": [
                {"field": axis.field, "values": list(axis.values)}
                for axis in self.grid
            ],
            "random": [
                {
                    "field": axis.field,
                    "low": axis.low,
                    "high": axis.high,
                    "log": axis.log,
                    "integer": axis.integer,
                }
                for axis in self.random
            ],
            "n_random": self.n_random,
            "base": dict(self.base),
            "seed": self.seed,
        }

    @classmethod
    def from_json_dict(cls, payload: object) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_json_dict` output.

        The round trip is lossless: the rebuilt spec expands to the
        same scenarios with the same content digests.  Malformed
        payloads raise :class:`SpecValidationError` naming the
        offending path; a missing or unsupported ``schema_version``
        is rejected the same way (this is the compatibility hook a
        future digest-affecting schema bump keys on).
        """
        if not isinstance(payload, Mapping):
            raise SpecValidationError("$", "expected a JSON object")
        known = {
            "schema_version",
            "name",
            "grid",
            "random",
            "n_random",
            "base",
            "seed",
        }
        for key in payload:
            if key not in known:
                raise SpecValidationError(str(key), "unknown field")
        if "schema_version" not in payload:
            raise SpecValidationError("schema_version", "required field")
        version = payload["schema_version"]
        if version != SCHEMA_VERSION:
            raise SpecValidationError(
                "schema_version",
                f"unsupported value {version!r} "
                f"(this build speaks version {SCHEMA_VERSION})",
            )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecValidationError("name", "expected a non-empty string")
        grid = tuple(
            _grid_axis_from_json(entry, f"grid[{i}]")
            for i, entry in enumerate(_json_list(payload, "grid"))
        )
        random_axes = tuple(
            _random_axis_from_json(entry, f"random[{i}]")
            for i, entry in enumerate(_json_list(payload, "random"))
        )
        n_random = payload.get("n_random", 0)
        if not isinstance(n_random, int) or isinstance(n_random, bool):
            raise SpecValidationError("n_random", "expected an integer")
        base = payload.get("base", {})
        if not isinstance(base, Mapping):
            raise SpecValidationError("base", "expected an object")
        for key, value in base.items():
            if key not in CONFIG_FIELDS:
                raise SpecValidationError(
                    f"base.{key}", "unknown campaign-config field"
                )
            try:
                _check_value(key, value)
            except TypeError:
                raise SpecValidationError(
                    f"base.{key}", f"value {value!r} is not a JSON scalar"
                ) from None
        seed = payload.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecValidationError("seed", "expected an integer")
        try:
            return cls(
                name=name,
                grid=grid,
                random=random_axes,
                n_random=n_random,
                base=dict(base),
                seed=seed,
            )
        except (KeyError, ValueError, TypeError) as error:
            message = error.args[0] if error.args else str(error)
            raise SpecValidationError("$", str(message)) from error


def _json_list(payload: Mapping[str, object], key: str) -> List[object]:
    value = payload.get(key, [])
    if not isinstance(value, (list, tuple)):
        raise SpecValidationError(key, "expected a list")
    return list(value)


def _axis_payload(entry: object, path: str, fields: "set[str]") -> Mapping:
    if not isinstance(entry, Mapping):
        raise SpecValidationError(path, "expected an object")
    for key in entry:
        if key not in fields:
            raise SpecValidationError(f"{path}.{key}", "unknown field")
    field_name = entry.get("field")
    if not isinstance(field_name, str) or not field_name:
        raise SpecValidationError(f"{path}.field", "expected a field name")
    if field_name not in CONFIG_FIELDS:
        raise SpecValidationError(
            f"{path}.field", f"unknown campaign-config field {field_name!r}"
        )
    return entry


def _grid_axis_from_json(entry: object, path: str) -> GridAxis:
    entry = _axis_payload(entry, path, {"field", "values"})
    values = entry.get("values")
    if not isinstance(values, (list, tuple)):
        raise SpecValidationError(f"{path}.values", "expected a list")
    try:
        return GridAxis(field=str(entry["field"]), values=tuple(values))
    except (ValueError, TypeError) as error:
        message = error.args[0] if error.args else str(error)
        raise SpecValidationError(
            f"{path}.values", str(message)
        ) from error


def _random_axis_from_json(entry: object, path: str) -> RandomAxis:
    entry = _axis_payload(
        entry, path, {"field", "low", "high", "log", "integer"}
    )
    for bound in ("low", "high"):
        value = entry.get(bound)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SpecValidationError(f"{path}.{bound}", "expected a number")
    for flag in ("log", "integer"):
        if flag in entry and not isinstance(entry[flag], bool):
            raise SpecValidationError(f"{path}.{flag}", "expected a boolean")
    try:
        return RandomAxis(
            field=str(entry["field"]),
            low=float(entry["low"]),
            high=float(entry["high"]),
            log=bool(entry.get("log", False)),
            integer=bool(entry.get("integer", False)),
        )
    except ValueError as error:
        message = error.args[0] if error.args else str(error)
        raise SpecValidationError(path, str(message)) from error


@dataclass(frozen=True)
class Scenario:
    """One fully resolved point of a sweep."""

    scenario_id: str
    overrides: Mapping[str, object]
    assignment: Mapping[str, object]

    @property
    def attack(self) -> str:
        """Name of the DUT transform applied before measurement."""
        return str(self.overrides.get(ATTACK_FIELD, "none"))


def _derive_seed(spec_seed: int, assignment_json: str, slot: str) -> int:
    digest = hashlib.sha256(
        f"{SCHEMA_VERSION}:{spec_seed}:{slot}:{assignment_json}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def _make_scenario(
    spec: SweepSpec, assignment: Dict[str, object]
) -> Scenario:
    overrides: Dict[str, object] = dict(spec.base)
    overrides.update(assignment)
    assignment_json = canonical_json(assignment)
    for slot in _DERIVED_SEEDS:
        if slot not in overrides:
            overrides[slot] = _derive_seed(spec.seed, assignment_json, slot)
    scenario_id = hashlib.sha256(
        canonical_json(
            {"schema": SCHEMA_VERSION, "overrides": overrides}
        ).encode()
    ).hexdigest()[:24]
    return Scenario(
        scenario_id=scenario_id, overrides=overrides, assignment=assignment
    )


def expand_scenarios(spec: SweepSpec) -> List[Scenario]:
    """Expand a spec into its ordered scenario list.

    Grid order is the cartesian product in axis-declaration order
    (rightmost axis fastest); random draws come last.  Neighbouring
    scenarios tend to share a fleet structure, which keeps the
    process-wide activity/program caches hot inside each worker chunk.
    """
    grid_values = [
        [(axis.field, value) for value in axis.values] for axis in spec.grid
    ]
    if spec.random:
        rng = np.random.default_rng(spec.seed)
        draws = [
            {axis.field: axis.sample(rng) for axis in spec.random}
            for _ in range(spec.n_random)
        ]
    else:
        draws = [{}]
    scenarios: List[Scenario] = []
    for combo in itertools.product(*grid_values):
        for draw in draws:
            assignment: Dict[str, object] = dict(combo)
            assignment.update(draw)
            scenarios.append(_make_scenario(spec, assignment))
    ids = [s.scenario_id for s in scenarios]
    if len(set(ids)) != len(ids):
        raise ValueError(
            "sweep expands to duplicate scenarios; check axis values"
        )
    return scenarios


def scenario_config(scenario: Scenario) -> CampaignConfig:
    """Build the runnable campaign config of one scenario.

    The special ``"attack"`` override is not a config field; it is
    consumed by :func:`repro.sweeps.scenario.run_scenario`.
    """
    overrides = {
        key: value
        for key, value in scenario.overrides.items()
        if key != ATTACK_FIELD
    }
    return apply_config_overrides(CampaignConfig(), overrides)


def spec_from_dict(payload: Mapping[str, object]) -> SweepSpec:
    """Alias of :meth:`SweepSpec.from_json_dict` tolerating payloads
    written before ``schema_version`` existed (they are version 1)."""
    if isinstance(payload, Mapping) and "schema_version" not in payload:
        payload = {**dict(payload), "schema_version": SCHEMA_VERSION}
    return SweepSpec.from_json_dict(payload)


def spec_to_dict(spec: SweepSpec) -> Dict[str, object]:
    """Alias of :meth:`SweepSpec.to_json_dict`."""
    return spec.to_json_dict()


__all__ = [
    "ANALYSIS_FIELDS",
    "ATTACK_FIELD",
    "CONFIG_FIELDS",
    "SCHEMA_VERSION",
    "GridAxis",
    "RandomAxis",
    "SpecValidationError",
    "SweepSpec",
    "Scenario",
    "canonical_json",
    "expand_scenarios",
    "scenario_config",
    "spec_from_dict",
    "spec_to_dict",
]
