"""Multiprocess sweep execution with incremental resume and graceful
degradation.

This is the *in-process* execution strategy behind the unified
:func:`repro.sweeps.run` facade (selected when
:attr:`~repro.sweeps.api.SweepOptions.scheduler` is unset): it expands
a :class:`~repro.sweeps.spec.SweepSpec`, skips every scenario already
present in the :class:`~repro.sweeps.store.SweepStore`, and executes
the missing ones — inline for ``n_workers <= 1``, otherwise on a
``multiprocessing`` pool in chunked work units.  The lease-based
strategy lives in :mod:`repro.sweeps.scheduler`; the historical
:func:`run_sweep` entry point survives as a deprecated alias of the
facade.

Determinism: a scenario's result is a pure function of its override
mapping (all seeds are inside it, derived from the spec), and every
worker writes results through the same deterministic serialisation.  A
4-worker run therefore produces a byte-identical store to a 1-worker
run; only wall-clock time changes.  Workers write each finished
scenario to the store *immediately*, so killing a sweep loses at most
the scenarios in flight — a rerun picks up exactly the missing ones.

Fault tolerance: one failing scenario no longer aborts the sweep.
Every attempt is wrapped; failures are retried with exponential
backoff per the :class:`~repro.sweeps.scheduler.RetryPolicy` (attempt
numbers persist in ``.attempts/`` beside the store, so seeded fault
plans stay deterministic across runs), and a scenario that exhausts
its budget is quarantined as a ``failed/<id>.json`` record — the sweep
continues and the loss surfaces in :attr:`SweepReport.failed_ids`
instead of discarding every sibling's progress.  Retries rewrite
results through the store's idempotent atomic publishes, so a
retried, crashed or duplicated execution still converges on a store
byte-identical to a clean single-worker run — the invariant is
exercised under injected faults (:mod:`repro.sweeps.faultinject`) by
the tier-1 suite and CI's chaos smoke job.

Artifact sharing: passing ``artifacts=``
:class:`~repro.experiments.artifacts.ArtifactOptions` gives every
worker a process-wide :class:`~repro.experiments.artifacts.ArtifactCache`,
so scenarios that differ only in analysis-side axes reuse one fleet
manufacture and one trace acquisition — byte-identically, because
acquisition streams are keyed per device, never sequential — and whole
campaign outcomes are memoised on the analysis key, so a re-run study
(same scenarios, fresh store) skips re-analysis entirely.  An options
``root`` adds a shared on-disk tier, which is how *separate worker
processes* (and separate runs) meet: the first worker to need an
artifact persists it, the rest load it.

Cross-campaign batching: passing ``pool=``
:class:`~repro.hdl.batch_pool.BatchPoolOptions` routes every
scenario's netlist simulation through one shared
:class:`~repro.hdl.batch_pool.BatchPool`.  Before campaigns run, the
executor *prefetches* in bounded windows: it builds (or fetches from
the artifact cache) each window scenario's fleet and submits its
distinct ``(structure, cycles)`` activity entries to the pool.  Only
the first submitting scenario's lanes are flushed eagerly — the
window's first campaign starts measuring immediately while the rest
of the wave stays pending, and drains in one cross-campaign
shape-grouped flush when the first campaign that needs it primes its
fleet — scenarios batch across, not just within, campaigns, while
peak memory stays bounded by one window's fleets.  Inline mode holds
one pool across the whole sweep; multiprocess mode holds one per
worker chunk.  Scenarios whose campaign outcome is already memoised
are skipped by the prefetch — a memoised campaign never consults the
pool.  Pooling is pure execution strategy: store digests are
byte-identical with the pool on or off, for any worker count, window
or flush budget.

Chunking walks the expansion order, which groups scenarios that share
a fleet structure; inside one worker chunk the process-wide activity,
compiled-program and artifact caches then make consecutive scenarios
cheap.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.experiments.artifacts import (
    ArtifactCache,
    ArtifactOptions,
    process_artifact_cache,
)
from repro.acquisition.device import prime_fleet_activity
from repro.experiments.runner import build_campaign_fleet
from repro.hdl.batch_pool import BatchPool, BatchPoolOptions
from repro.sweeps.faultinject import fault_context, fault_point
from repro.sweeps.scenario import run_scenario
from repro.sweeps.scheduler import (
    FailureLog,
    RetryPolicy,
    SchedulerOptions,
    default_owner,
    error_info,
)
from repro.sweeps.spec import (
    Scenario,
    SweepSpec,
    expand_scenarios,
    scenario_config,
)
from repro.sweeps.store import SweepStore

#: Chunks per worker the pending list is split into (larger = better
#: load balancing, smaller = better cache locality inside a chunk).
CHUNKS_PER_WORKER = 4

#: Scenarios prefetched into the batch pool per window when no
#: artifact cache bounds fleet lifetimes (with one, the window is the
#: cache's ``max_fleets`` instead).  Bounds peak memory: at most this
#: many manufactured fleets are alive before their scenarios execute,
#: while one window still spans enough campaigns to fill wide batches.
POOL_PREFETCH_WINDOW = 8


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call did.

    ``failed_ids`` are scenarios quarantined this run (retry budget
    exhausted; see ``failed/<id>.json`` under the store root for the
    exception detail).  ``retried_ids`` are scenarios that needed more
    than one attempt, whether they eventually succeeded or not.
    """

    spec_name: str
    store_root: str
    scenario_ids: List[str]
    executed_ids: List[str] = field(default_factory=list)
    cached_ids: List[str] = field(default_factory=list)
    failed_ids: List[str] = field(default_factory=list)
    retried_ids: List[str] = field(default_factory=list)
    n_workers: int = 1

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_ids)

    @property
    def n_executed(self) -> int:
        return len(self.executed_ids)

    @property
    def n_cached(self) -> int:
        return len(self.cached_ids)

    @property
    def n_failed(self) -> int:
        return len(self.failed_ids)

    @property
    def n_retried(self) -> int:
        return len(self.retried_ids)


def _prefetch_into_pool(
    scenarios: Sequence[Scenario],
    artifacts: Optional[ArtifactCache],
    pool: BatchPool,
) -> dict:
    """Build every scenario's fleet and submit its simulation lanes.

    Returns ``{scenario_id: fleet}`` for fleets the artifact cache does
    *not* own (no ``artifacts``) so the execution loop can hand them
    straight to :func:`~repro.sweeps.scenario.run_scenario`; cached
    fleets stay in the artifact cache (the campaign fetches them back
    by key, which stays correct even if the fleet LRU evicts one in
    between — callers size their windows so eviction is the exception,
    not the rule).  Scenarios with a memoised campaign outcome are
    skipped entirely: a memoised campaign must not consult the pool.

    Flushing overlaps with acquisition: only the *first* scenario that
    submitted lanes triggers a flush here, so the window's first
    campaign can begin measuring right away.  Everything later
    scenarios submitted stays pending in the pool and drains as one
    full cross-campaign wave when the first campaign that needs those
    lanes primes its fleet (``run_campaign`` flushes only when its own
    priming found unresolved lanes), instead of the whole window
    draining before any measurement starts.  Lanes that are still
    pending when a trace is rendered fall back to lazy scalar
    simulation inside :meth:`~repro.acquisition.device.Device.activity`,
    so deferral is never a correctness concern.

    The pool's lane/byte budgets still apply — a prefetch larger than
    one flush budget simply flushes mid-walk, which moves batch
    boundaries but never changes a byte of any trace.
    """
    fleets: dict = {}
    first_flushed = False
    for scenario in scenarios:
        try:
            config = scenario_config(scenario)
            attack = scenario.attack
            if artifacts is not None and artifacts.has_outcome(config, attack):
                continue
            if artifacts is not None:
                refds, duts = artifacts.fleet(
                    config,
                    attack,
                    lambda config=config, attack=attack: build_campaign_fleet(
                        config, attack
                    ),
                )
            else:
                refds, duts = build_campaign_fleet(config, attack)
                fleets[scenario.scenario_id] = (refds, duts)
            prime_fleet_activity((*refds.values(), *duts.values()), pool=pool)
        except Exception:
            # A scenario whose fleet cannot even be built must not
            # starve its window siblings of the pool: the same error
            # re-raises inside its own execution attempt, where the
            # retry/quarantine machinery owns it.
            continue
        if not first_flushed and len(pool):
            pool.flush()
            first_flushed = True
    return fleets


def _execute_attempt(
    store: SweepStore,
    scenario: Scenario,
    attempt: int,
    artifacts: Optional[ArtifactCache],
    fleet,
    pool: Optional[BatchPool],
) -> None:
    """One attempt: run the scenario and publish its result."""
    with fault_context(scenario.scenario_id, attempt):
        fault_point("scenario.pre")
        result = run_scenario(
            scenario, artifacts=artifacts, fleet=fleet, batch_pool=pool
        )
        fault_point("scenario.post")
        store.put(scenario.scenario_id, result["record"], result["arrays"])


def _run_scenarios(
    store_root: str,
    scenarios: Sequence[Scenario],
    artifacts: Optional[ArtifactCache] = None,
    pool_options: Optional[BatchPoolOptions] = None,
    progress: Optional[Callable[[str, bool], None]] = None,
    retry: Optional[RetryPolicy] = None,
) -> Tuple[List[str], List[str], List[str]]:
    """Execute a batch of scenarios into the store.

    Returns ``(executed, failed, retried)`` scenario-id lists.  This is
    the one execution body shared by the inline path (all pending
    scenarios — one pool spans the whole sweep) and by each
    multiprocess worker (its chunk — one pool spans the chunk).  With
    a pool, scenarios are prefetched and executed in bounded *windows*
    so that at most one window's worth of manufactured fleets is ever
    alive (and, with an artifact cache, a window never overruns the
    fleet LRU into guaranteed re-manufacture); the pool object itself
    persists across windows, so its caches and stats span the sweep.

    Each scenario is attempted up to ``retry.max_attempts`` times with
    backoff; exhaustion quarantines it (``failed/<id>.json``) and the
    remaining scenarios keep executing.
    """
    store = SweepStore(store_root)
    log = FailureLog(store_root)
    owner = default_owner()
    retry = retry or RetryPolicy()
    scenarios = list(scenarios)
    pool: Optional[BatchPool] = None
    if pool_options is None:
        window_size = max(len(scenarios), 1)
    else:
        pool = BatchPool(pool_options)
        if artifacts is not None:
            window_size = max(1, artifacts.options.max_fleets)
        else:
            window_size = POOL_PREFETCH_WINDOW
    executed: List[str] = []
    failed: List[str] = []
    retried: List[str] = []
    for start in range(0, len(scenarios), window_size):
        window = scenarios[start:start + window_size]
        fleets: dict = {}
        if pool is not None:
            fleets = _prefetch_into_pool(window, artifacts, pool)
        for scenario in window:
            scenario_id = scenario.scenario_id
            fleet = fleets.pop(scenario_id, None)
            failures = 0
            while True:
                attempt = log.record_attempt(scenario_id, owner)
                try:
                    _execute_attempt(
                        store, scenario, attempt, artifacts, fleet, pool
                    )
                except Exception as error:  # noqa: BLE001 — quarantine path
                    log.record_error(scenario_id, error_info(error))
                    failures += 1
                    if failures >= retry.max_attempts:
                        log.quarantine(
                            scenario, error_info(error), attempt, owner
                        )
                        failed.append(scenario_id)
                        break
                    if scenario_id not in retried:
                        retried.append(scenario_id)
                    # Drop the prefetched fleet: if the failure left it
                    # in a dubious state, the retry remanufactures.
                    fleet = None
                    time.sleep(retry.delay(failures))
                else:
                    log.clear_quarantine(scenario_id)
                    executed.append(scenario_id)
                    if progress is not None:
                        progress(scenario_id, True)
                    break
    return executed, failed, retried


def _pool_worker(
    payload: Tuple[
        str,
        Tuple[Scenario, ...],
        Optional[ArtifactOptions],
        Optional[BatchPoolOptions],
        Optional[RetryPolicy],
    ]
) -> Tuple[List[str], List[str], List[str]]:
    """Module-level pool target (must be picklable on every start method).

    Never lets an exception escape into ``imap_unordered`` — a
    chunk-level catastrophe (store root unwritable, artifact tier
    corrupt, ...) would otherwise abort the whole sweep and discard
    every sibling chunk's progress report.  Instead the unfinished
    scenarios of the chunk are quarantined and reported as failed.
    """
    store_root, scenarios, options, pool_options, retry = payload
    try:
        artifacts = process_artifact_cache(options) if options is not None else None
        return _run_scenarios(
            store_root, scenarios, artifacts, pool_options, retry=retry
        )
    except Exception as error:  # noqa: BLE001 — chunk-level catastrophe
        store = SweepStore(store_root)
        log = FailureLog(store_root)
        owner = default_owner()
        executed = [s.scenario_id for s in scenarios if store.has(s.scenario_id)]
        failed = []
        for scenario in scenarios:
            if not store.has(scenario.scenario_id):
                log.quarantine(scenario, error_info(error), 0, owner)
                failed.append(scenario.scenario_id)
        return executed, failed, []


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits warm caches); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def default_workers() -> int:
    """A sensible worker count for this machine (half the cores, >= 1)."""
    return max(1, (os.cpu_count() or 2) // 2)


def _plain_sweep(
    spec: SweepSpec,
    store: SweepStore,
    n_workers: int = 1,
    progress: Optional[Callable[[str, bool], None]] = None,
    artifacts: Optional[ArtifactOptions] = None,
    pool: Optional[BatchPoolOptions] = None,
    retry: Optional[RetryPolicy] = None,
) -> SweepReport:
    """The in-process execution strategy behind :func:`repro.sweeps.run`.

    ``progress`` (if given) is called as ``progress(scenario_id,
    executed)`` once per scenario — immediately for cache hits, on
    completion for executed ones (chunk-batched under multiprocess
    execution).  ``artifacts`` enables cross-scenario artifact sharing
    and campaign-outcome memoisation; ``pool`` enables the shared
    cross-campaign batch pool (see the module docstring) — results are
    byte-identical with either on or off.

    ``retry`` bounds per-scenario attempts and backoff (default: the
    stock :class:`~repro.sweeps.scheduler.RetryPolicy`); a scenario
    that exhausts it is quarantined and the sweep continues.  Returns
    a :class:`SweepReport`; aggregate results are read back from the
    store (see :mod:`repro.sweeps.aggregate`).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    scenarios = expand_scenarios(spec)
    report = SweepReport(
        spec_name=spec.name,
        store_root=store.root,
        scenario_ids=[s.scenario_id for s in scenarios],
        n_workers=n_workers,
    )
    pending: List[Scenario] = []
    for scenario in scenarios:
        if store.has(scenario.scenario_id):
            report.cached_ids.append(scenario.scenario_id)
            if progress is not None:
                progress(scenario.scenario_id, False)
        else:
            pending.append(scenario)

    if not pending:
        return report

    if n_workers == 1 or len(pending) == 1:
        cache = process_artifact_cache(artifacts) if artifacts is not None else None
        executed, failed, retried = _run_scenarios(
            store.root, pending, cache, pool, progress=progress, retry=retry
        )
        report.executed_ids.extend(executed)
        report.failed_ids.extend(failed)
        report.retried_ids.extend(retried)
    else:
        n_procs = min(n_workers, len(pending))
        chunksize = max(1, len(pending) // (n_procs * CHUNKS_PER_WORKER))
        chunks = [
            tuple(pending[start:start + chunksize])
            for start in range(0, len(pending), chunksize)
        ]
        payloads = [
            (store.root, chunk, artifacts, pool, retry) for chunk in chunks
        ]
        with _pool_context().Pool(processes=n_procs) as worker_pool:
            for executed, failed, retried in worker_pool.imap_unordered(
                _pool_worker, payloads, chunksize=1
            ):
                report.executed_ids.extend(executed)
                report.failed_ids.extend(failed)
                report.retried_ids.extend(retried)
                if progress is not None:
                    for scenario_id in executed:
                        progress(scenario_id, True)
    # Keep reporting deterministic regardless of completion order.
    report.executed_ids.sort()
    report.failed_ids.sort()
    report.retried_ids.sort()
    return report


def run_sweep(
    spec: SweepSpec,
    store: SweepStore,
    n_workers: int = 1,
    progress: Optional[Callable[[str, bool], None]] = None,
    artifacts: Optional[ArtifactOptions] = None,
    pool: Optional[BatchPoolOptions] = None,
    retry: Optional[RetryPolicy] = None,
    scheduler: Optional[SchedulerOptions] = None,
) -> SweepReport:
    """Deprecated alias of :func:`repro.sweeps.run`.

    Behaviour is unchanged (byte-identical stores, pinned by test):
    the keyword set maps one-to-one onto
    :class:`~repro.sweeps.api.SweepOptions` and the call routes
    through the unified facade.  New code should call
    ``repro.sweeps.run(spec, store, SweepOptions(...))``.
    """
    warnings.warn(
        "run_sweep() is deprecated; use repro.sweeps.run(spec, store, "
        "SweepOptions(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.sweeps.api import SweepOptions, run

    return run(
        spec,
        store,
        SweepOptions(
            n_workers=n_workers,
            artifacts=artifacts,
            pool=pool,
            retry=retry,
            scheduler=scheduler,
        ),
        progress=progress,
    )


__all__ = [
    "CHUNKS_PER_WORKER",
    "SweepReport",
    "default_workers",
    "run_sweep",
]
