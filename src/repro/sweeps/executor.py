"""Multiprocess sweep execution with incremental resume.

:func:`run_sweep` expands a :class:`~repro.sweeps.spec.SweepSpec`,
skips every scenario already present in the
:class:`~repro.sweeps.store.SweepStore`, and executes the missing ones
— inline for ``n_workers <= 1``, otherwise on a ``multiprocessing``
pool in chunked work units.

Determinism: a scenario's result is a pure function of its override
mapping (all seeds are inside it, derived from the spec), and every
worker writes results through the same deterministic serialisation.  A
4-worker run therefore produces a byte-identical store to a 1-worker
run; only wall-clock time changes.  Workers write each finished
scenario to the store *immediately*, so killing a sweep loses at most
the scenarios in flight — a rerun picks up exactly the missing ones.

Artifact sharing: passing ``artifacts=``
:class:`~repro.experiments.artifacts.ArtifactOptions` gives every
worker a process-wide :class:`~repro.experiments.artifacts.ArtifactCache`,
so scenarios that differ only in analysis-side axes reuse one fleet
manufacture and one trace acquisition — byte-identically, because
acquisition streams are keyed per device, never sequential.  An
options ``root`` adds a shared on-disk tier, which is how *separate
worker processes* (and separate runs) meet: the first worker to need
an acquisition persists it, the rest load it.

Chunking walks the expansion order, which groups scenarios that share
a fleet structure; inside one worker chunk the process-wide activity,
compiled-program and artifact caches then make consecutive scenarios
cheap.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.experiments.artifacts import (
    ArtifactCache,
    ArtifactOptions,
    process_artifact_cache,
)
from repro.sweeps.scenario import run_scenario
from repro.sweeps.spec import Scenario, SweepSpec, expand_scenarios
from repro.sweeps.store import SweepStore

#: Chunks per worker the pending list is split into (larger = better
#: load balancing, smaller = better cache locality inside a chunk).
CHUNKS_PER_WORKER = 4


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call did."""

    spec_name: str
    store_root: str
    scenario_ids: List[str]
    executed_ids: List[str] = field(default_factory=list)
    cached_ids: List[str] = field(default_factory=list)
    n_workers: int = 1

    @property
    def n_scenarios(self) -> int:
        return len(self.scenario_ids)

    @property
    def n_executed(self) -> int:
        return len(self.executed_ids)

    @property
    def n_cached(self) -> int:
        return len(self.cached_ids)


def _execute_into_store(
    store_root: str,
    scenario: Scenario,
    artifacts: Optional[ArtifactCache] = None,
) -> str:
    """Run one scenario and persist it; returns the scenario id."""
    result = run_scenario(scenario, artifacts=artifacts)
    SweepStore(store_root).put(
        scenario.scenario_id, result["record"], result["arrays"]
    )
    return scenario.scenario_id


def _pool_worker(
    payload: Tuple[str, Scenario, Optional[ArtifactOptions]]
) -> str:
    """Module-level pool target (must be picklable on every start method)."""
    store_root, scenario, options = payload
    artifacts = process_artifact_cache(options) if options is not None else None
    return _execute_into_store(store_root, scenario, artifacts)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, inherits warm caches); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def default_workers() -> int:
    """A sensible worker count for this machine (half the cores, >= 1)."""
    return max(1, (os.cpu_count() or 2) // 2)


def run_sweep(
    spec: SweepSpec,
    store: SweepStore,
    n_workers: int = 1,
    progress: Optional[Callable[[str, bool], None]] = None,
    artifacts: Optional[ArtifactOptions] = None,
) -> SweepReport:
    """Execute every missing scenario of ``spec`` into ``store``.

    ``progress`` (if given) is called as ``progress(scenario_id,
    executed)`` once per scenario — immediately for cache hits, on
    completion for executed ones.  ``artifacts`` enables cross-scenario
    artifact sharing (see the module docstring); results are
    byte-identical with it on or off.  Returns a :class:`SweepReport`;
    aggregate results are read back from the store (see
    :mod:`repro.sweeps.aggregate`).
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    scenarios = expand_scenarios(spec)
    report = SweepReport(
        spec_name=spec.name,
        store_root=store.root,
        scenario_ids=[s.scenario_id for s in scenarios],
        n_workers=n_workers,
    )
    pending: List[Scenario] = []
    for scenario in scenarios:
        if store.has(scenario.scenario_id):
            report.cached_ids.append(scenario.scenario_id)
            if progress is not None:
                progress(scenario.scenario_id, False)
        else:
            pending.append(scenario)

    if not pending:
        return report

    if n_workers == 1 or len(pending) == 1:
        cache = process_artifact_cache(artifacts) if artifacts is not None else None
        for scenario in pending:
            _execute_into_store(store.root, scenario, cache)
            report.executed_ids.append(scenario.scenario_id)
            if progress is not None:
                progress(scenario.scenario_id, True)
    else:
        n_procs = min(n_workers, len(pending))
        chunksize = max(1, len(pending) // (n_procs * CHUNKS_PER_WORKER))
        payloads = [(store.root, scenario, artifacts) for scenario in pending]
        with _pool_context().Pool(processes=n_procs) as pool:
            for scenario_id in pool.imap_unordered(
                _pool_worker, payloads, chunksize=chunksize
            ):
                report.executed_ids.append(scenario_id)
                if progress is not None:
                    progress(scenario_id, True)
    # Keep reporting deterministic regardless of completion order.
    report.executed_ids.sort()
    return report


__all__ = [
    "CHUNKS_PER_WORKER",
    "SweepReport",
    "default_workers",
    "run_sweep",
]
