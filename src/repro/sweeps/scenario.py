"""Execute one sweep scenario end-to-end.

A scenario run is a pure function of its override mapping: manufacture
the fleet described by the config, optionally apply an attack
transform from :mod:`repro.attacks` to every DUT (the adversary
tampers with the devices under test, never with the verifier's
references), run the full 4x4 verification campaign, and distil the
outcome into a JSON-able metrics payload plus the 16 raw correlation
sets (persisted as a deterministic array bundle by the store).

Everything downstream — resumability, worker-count invariance,
byte-identical stores — rests on this module deriving *all* randomness
from the seeds inside the overrides and emitting only
deterministically ordered, canonically typed data.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.attacks import FLEET_TRANSFORMS, apply_fleet_transform
from repro.experiments.artifacts import ArtifactCache
from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.runner import CampaignOutcome, run_campaign
from repro.sweeps.spec import ATTACK_FIELD, Scenario, scenario_config

#: DUT netlist transforms selectable through the ``"attack"`` axis —
#: the shared registry from :mod:`repro.attacks` (re-exported under
#: the historical sweep-level names).
ATTACKS: Dict[str, Optional[Callable]] = FLEET_TRANSFORMS

#: Alias of :func:`repro.attacks.apply_fleet_transform`.
apply_attack = apply_fleet_transform


def run_scenario_campaign(
    scenario: Scenario,
    artifacts: Optional[ArtifactCache] = None,
    fleet=None,
    batch_pool=None,
) -> CampaignOutcome:
    """Manufacture, attack and measure one scenario's campaign.

    The attack name travels as the campaign's ``fleet_tag``:
    :func:`~repro.experiments.runner.run_campaign` manufactures the
    fleet and applies the named transform itself, so tampered fleets
    never alias pristine ones in any cache.  With an ``artifacts``
    cache, the fleet and every acquired trace matrix are shared across
    scenarios whose fleet/measurement tiers agree — byte-identically
    to the unshared path, because acquisition streams are keyed per
    device (see :mod:`repro.experiments.artifacts`) — and whole
    campaign outcomes are memoised on the analysis key.

    ``fleet`` optionally passes a pre-built (already attacked) fleet —
    the executor's batch-pool prefetch uses it so a scenario does not
    manufacture twice; ``batch_pool`` routes activity priming through
    a shared :class:`~repro.hdl.batch_pool.BatchPool` so simulation
    lanes batch across scenario boundaries.
    """
    config = scenario_config(scenario)
    return run_campaign(
        config,
        fleet=fleet,
        artifacts=artifacts,
        fleet_tag=scenario.attack,
        batch_pool=batch_pool,
    )


def outcome_metrics(outcome: CampaignOutcome) -> Dict[str, object]:
    """Distil a campaign outcome into a JSON-able metrics payload."""
    accuracy = {
        d.name: outcome.accuracy(d.name) for d in outcome.config.distinguishers
    }
    confidence = {
        d.name: outcome.confidence_distances(d.name)
        for d in outcome.config.distinguishers
    }
    return {
        "accuracy": accuracy,
        "confidence_percent": confidence,
        "verdicts": outcome.verdict_matrix(),
        "means": outcome.means,
        "variances": outcome.variances,
        "expected_matches": dict(EXPECTED_MATCHES),
        "all_correct": bool(outcome.all_correct),
    }


def outcome_arrays(outcome: CampaignOutcome) -> Dict[str, np.ndarray]:
    """The 16 correlation C sets, keyed ``C/<ref>/<dut>``."""
    arrays: Dict[str, np.ndarray] = {}
    for ref in outcome.ref_order:
        for dut, coefficients in outcome.correlation_sets(ref).items():
            arrays[f"C/{ref}/{dut}"] = np.asarray(coefficients, dtype=np.float64)
    return arrays


def run_scenario(
    scenario: Scenario,
    artifacts: Optional[ArtifactCache] = None,
    fleet=None,
    batch_pool=None,
) -> Dict[str, object]:
    """Run one scenario and return its full result payload.

    The returned mapping has two parts: ``"record"`` (JSON-able —
    scenario identity, overrides, metrics) and ``"arrays"`` (the raw
    correlation sets for the array bundle).  ``artifacts`` enables
    cross-scenario fleet/trace sharing and campaign-outcome
    memoisation, ``fleet``/``batch_pool`` plug the scenario into the
    executor's cross-campaign batch pool — none of them change a byte
    of the payload.
    """
    outcome = run_scenario_campaign(
        scenario, artifacts=artifacts, fleet=fleet, batch_pool=batch_pool
    )
    record = {
        "scenario_id": scenario.scenario_id,
        "overrides": dict(scenario.overrides),
        "assignment": dict(scenario.assignment),
        "attack": scenario.attack,
        "metrics": outcome_metrics(outcome),
    }
    return {"record": record, "arrays": outcome_arrays(outcome)}


__all__ = [
    "ATTACKS",
    "ATTACK_FIELD",
    "apply_attack",
    "run_scenario",
    "run_scenario_campaign",
    "outcome_metrics",
    "outcome_arrays",
]
