"""Execute one sweep scenario end-to-end.

A scenario run is a pure function of its override mapping: manufacture
the fleet described by the config, optionally apply an attack
transform from :mod:`repro.attacks` to every DUT (the adversary
tampers with the devices under test, never with the verifier's
references), run the full 4x4 verification campaign, and distil the
outcome into a JSON-able metrics payload plus the 16 raw correlation
sets (persisted as a deterministic array bundle by the store).

Everything downstream — resumability, worker-count invariance,
byte-identical stores — rests on this module deriving *all* randomness
from the seeds inside the overrides and emitting only
deterministically ordered, canonically typed data.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from repro.attacks.removal import strip_output_pads_only, strip_watermark
from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.runner import (
    CampaignOutcome,
    manufacture_fleet,
    run_campaign,
)
from repro.sweeps.spec import ATTACK_FIELD, Scenario, scenario_config

#: DUT netlist transforms selectable through the ``"attack"`` axis.
#: ``None`` means no tampering; the callables mutate a
#: :class:`~repro.fsm.watermark.WatermarkedIP` in place.
ATTACKS: Dict[str, Optional[Callable]] = {
    "none": None,
    "strip": strip_watermark,
    "strip_pads": strip_output_pads_only,
}


def apply_attack(duts: Mapping[str, object], attack: str) -> None:
    """Apply one named transform to every DUT's IP, in place."""
    try:
        transform = ATTACKS[attack]
    except KeyError:
        raise KeyError(
            f"unknown attack {attack!r}; choose from {sorted(ATTACKS)}"
        ) from None
    if transform is None:
        return
    for device in duts.values():
        transform(device.ip)


def run_scenario_campaign(scenario: Scenario) -> CampaignOutcome:
    """Manufacture, attack and measure one scenario's campaign."""
    config = scenario_config(scenario)
    refds, duts = manufacture_fleet(config)
    apply_attack(duts, scenario.attack)
    return run_campaign(config, fleet=(refds, duts))


def outcome_metrics(outcome: CampaignOutcome) -> Dict[str, object]:
    """Distil a campaign outcome into a JSON-able metrics payload."""
    accuracy = {
        d.name: outcome.accuracy(d.name) for d in outcome.config.distinguishers
    }
    confidence = {
        d.name: outcome.confidence_distances(d.name)
        for d in outcome.config.distinguishers
    }
    return {
        "accuracy": accuracy,
        "confidence_percent": confidence,
        "verdicts": outcome.verdict_matrix(),
        "means": outcome.means,
        "variances": outcome.variances,
        "expected_matches": dict(EXPECTED_MATCHES),
        "all_correct": bool(outcome.all_correct),
    }


def outcome_arrays(outcome: CampaignOutcome) -> Dict[str, np.ndarray]:
    """The 16 correlation C sets, keyed ``C/<ref>/<dut>``."""
    arrays: Dict[str, np.ndarray] = {}
    for ref in outcome.ref_order:
        for dut, coefficients in outcome.correlation_sets(ref).items():
            arrays[f"C/{ref}/{dut}"] = np.asarray(coefficients, dtype=np.float64)
    return arrays


def run_scenario(scenario: Scenario) -> Dict[str, object]:
    """Run one scenario and return its full result payload.

    The returned mapping has two parts: ``"record"`` (JSON-able —
    scenario identity, overrides, metrics) and ``"arrays"`` (the raw
    correlation sets for the array bundle).
    """
    outcome = run_scenario_campaign(scenario)
    record = {
        "scenario_id": scenario.scenario_id,
        "overrides": dict(scenario.overrides),
        "assignment": dict(scenario.assignment),
        "attack": scenario.attack,
        "metrics": outcome_metrics(outcome),
    }
    return {"record": record, "arrays": outcome_arrays(outcome)}


__all__ = [
    "ATTACKS",
    "ATTACK_FIELD",
    "apply_attack",
    "run_scenario",
    "run_scenario_campaign",
    "outcome_metrics",
    "outcome_arrays",
]
