"""Content-addressed, resumable on-disk result store.

Each completed scenario is persisted under its content digest as a
pair of files inside the store root:

* ``<id>.json`` — the JSON record (overrides + metrics), written with
  sorted keys and compact separators so its bytes are a pure function
  of its contents;
* ``<id>.npz`` — the raw correlation sets as a deterministic array
  bundle (see :func:`repro.acquisition.io.save_array_bundle`).

The JSON file is written *after* the bundle via an atomic rename, so
its presence is the completion marker: a sweep killed mid-scenario
leaves at worst an orphaned bundle or temp file, never a half-result
that :meth:`SweepStore.has` would wrongly count as done.  Re-running a
sweep (or a *different* sweep that happens to share scenarios) executes
only the missing digests.

The class is deliberately generic — a directory of (record, arrays)
pairs keyed by digest with atomic, deterministic writes — so other
content-addressed tiers reuse it: the artifact cache
(:mod:`repro.experiments.artifacts`) persists acquired trace matrices
through the same machinery, which is what lets separate sweep workers
(and separate runs) share acquisitions over a plain filesystem.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.acquisition.io import load_array_bundle, save_array_bundle
from repro.sweeps.spec import canonical_json


class SweepStore:
    """Directory of scenario results keyed by content digest."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def record_path(self, scenario_id: str) -> str:
        return os.path.join(self.root, f"{scenario_id}.json")

    def arrays_path(self, scenario_id: str) -> str:
        return os.path.join(self.root, f"{scenario_id}.npz")

    # -- queries -----------------------------------------------------------

    def has(self, scenario_id: str) -> bool:
        """True when the scenario completed (record file present)."""
        return os.path.exists(self.record_path(scenario_id))

    def ids(self) -> List[str]:
        """Sorted digests of every completed scenario."""
        return sorted(
            entry[: -len(".json")]
            for entry in os.listdir(self.root)
            if entry.endswith(".json") and not entry.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, scenario_id: str) -> bool:
        return self.has(scenario_id)

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())

    # -- I/O ---------------------------------------------------------------

    def _atomic_write(self, path: str, data: bytes) -> None:
        handle, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=os.path.basename(path)
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put(
        self,
        scenario_id: str,
        record: Mapping[str, object],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
    ) -> None:
        """Persist one completed scenario (bundle first, record last)."""
        if arrays:
            bundle = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".npz"
            )
            os.close(bundle[0])
            try:
                save_array_bundle(
                    bundle[1], arrays, metadata={"scenario_id": scenario_id}
                )
                os.replace(bundle[1], self.arrays_path(scenario_id))
            except BaseException:
                if os.path.exists(bundle[1]):
                    os.unlink(bundle[1])
                raise
        payload = (canonical_json(dict(record)) + "\n").encode()
        self._atomic_write(self.record_path(scenario_id), payload)

    def get(self, scenario_id: str) -> Dict[str, object]:
        """Load one scenario's JSON record."""
        with open(self.record_path(scenario_id)) as handle:
            return json.load(handle)

    def get_arrays(self, scenario_id: str) -> Dict[str, np.ndarray]:
        """Load one scenario's correlation sets (empty if none saved)."""
        path = self.arrays_path(scenario_id)
        if not os.path.exists(path):
            return {}
        arrays, _ = load_array_bundle(path)
        return arrays

    def records(self) -> List[Dict[str, object]]:
        """Every completed record, in digest order."""
        return [self.get(scenario_id) for scenario_id in self.ids()]

    def size_bytes(self) -> int:
        """Total bytes of all completed records and bundles on disk."""
        total = 0
        for scenario_id in self.ids():
            for path in (
                self.record_path(scenario_id),
                self.arrays_path(scenario_id),
            ):
                if os.path.exists(path):
                    total += os.path.getsize(path)
        return total


__all__ = ["SweepStore"]
