"""Content-addressed, resumable on-disk result store.

Each completed scenario is persisted under its content digest as a
pair of files inside the store root:

* ``<id>.json`` — the JSON record (overrides + metrics), written with
  sorted keys and compact separators so its bytes are a pure function
  of its contents;
* ``<id>.npz`` — the raw correlation sets as a deterministic array
  bundle (see :func:`repro.acquisition.io.save_array_bundle`).

The JSON file is written *after* the bundle via an atomic rename, so
its presence is the completion marker: a sweep killed mid-scenario
leaves at worst an orphaned bundle or temp file, never a half-result
that :meth:`SweepStore.has` would wrongly count as done.  Re-running a
sweep (or a *different* sweep that happens to share scenarios) executes
only the missing digests.

Durability: every publish fsyncs the data file before the rename and
the store directory after it, so "record present" implies "record
*durably* complete" across power loss, not just process death — the
invariant the lease scheduler (:mod:`repro.sweeps.scheduler`) builds
on.  :meth:`SweepStore.scrub` removes the residue a crash can leave
behind (orphaned ``.tmp-*`` files and ``.npz`` bundles with no
completion record); it must only run while no writer is active on the
root, so it is an explicit operation (CLI ``sweep --scrub``), never
automatic.

The class is deliberately generic — a directory of (record, arrays)
pairs keyed by digest with atomic, deterministic writes — so other
content-addressed tiers reuse it: the artifact cache
(:mod:`repro.experiments.artifacts`) persists acquired trace matrices
through the same machinery, which is what lets separate sweep workers
(and separate runs) share acquisitions over a plain filesystem.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.acquisition.io import load_array_bundle, save_array_bundle
from repro.sweeps.faultinject import fault_point
from repro.sweeps.spec import canonical_json


def _fsync_file(path: str) -> None:
    """Flush one file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """Flush a directory entry table (makes renames durable)."""
    fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SweepStore:
    """Directory of scenario results keyed by content digest."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def record_path(self, scenario_id: str) -> str:
        return os.path.join(self.root, f"{scenario_id}.json")

    def arrays_path(self, scenario_id: str) -> str:
        return os.path.join(self.root, f"{scenario_id}.npz")

    # -- queries -----------------------------------------------------------

    def has(self, scenario_id: str) -> bool:
        """True when the scenario completed (record file present)."""
        return os.path.exists(self.record_path(scenario_id))

    def ids(self) -> List[str]:
        """Sorted digests of every completed scenario."""
        return sorted(
            entry[: -len(".json")]
            for entry in os.listdir(self.root)
            if entry.endswith(".json") and not entry.startswith(".tmp-")
        )

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, scenario_id: str) -> bool:
        return self.has(scenario_id)

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())

    # -- I/O ---------------------------------------------------------------

    def _atomic_write(self, path: str, data: bytes) -> None:
        handle, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=os.path.basename(path)
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp, path)
            _fsync_dir(self.root)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def put(
        self,
        scenario_id: str,
        record: Mapping[str, object],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
    ) -> None:
        """Persist one completed scenario (bundle first, record last).

        Each publish is fsync-then-rename-then-dir-fsync, so once the
        record file exists the whole result survives power loss.  The
        write is idempotent: re-putting the same scenario atomically
        replaces both files with identical bytes, which is what lets
        retries and duplicated lease executions converge.
        """
        if arrays:
            fault_point("store.put_arrays")
            bundle = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".npz"
            )
            os.close(bundle[0])
            try:
                save_array_bundle(
                    bundle[1], arrays, metadata={"scenario_id": scenario_id}
                )
                _fsync_file(bundle[1])
                os.replace(bundle[1], self.arrays_path(scenario_id))
                # No directory fsync here: the record write below ends
                # with one, which flushes both renames together (same
                # directory), so the record entry can never be durable
                # without the bundle entry.
            except BaseException:
                if os.path.exists(bundle[1]):
                    os.unlink(bundle[1])
                raise
        fault_point("store.put_record")
        payload = (canonical_json(dict(record)) + "\n").encode()
        self._atomic_write(self.record_path(scenario_id), payload)

    def get(self, scenario_id: str) -> Dict[str, object]:
        """Load one scenario's JSON record."""
        with open(self.record_path(scenario_id)) as handle:
            return json.load(handle)

    def get_arrays(self, scenario_id: str) -> Dict[str, np.ndarray]:
        """Load one scenario's correlation sets (empty if none saved)."""
        path = self.arrays_path(scenario_id)
        if not os.path.exists(path):
            return {}
        arrays, _ = load_array_bundle(path)
        return arrays

    def records(self) -> List[Dict[str, object]]:
        """Every completed record, in digest order."""
        return [self.get(scenario_id) for scenario_id in self.ids()]

    # -- hygiene -----------------------------------------------------------

    def scrub(self) -> List[str]:
        """Remove crash residue; returns the paths removed.

        Residue is anything a killed writer can leave at the top level
        of the root: ``.tmp-*`` staging files and ``.npz`` bundles
        whose completion record never landed (the bundle is published
        before the record, so a crash in between orphans it).
        Completed ``(record, bundle)`` pairs are never touched.

        Only call while no writer is active on this root — an in-flight
        writer's staging file looks identical to a dead one's.
        """
        removed: List[str] = []
        for entry in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, entry)
            if not os.path.isfile(path):
                continue
            orphaned_bundle = entry.endswith(".npz") and not os.path.exists(
                self.record_path(entry[: -len(".npz")])
            )
            if entry.startswith(".tmp-") or orphaned_bundle:
                os.unlink(path)
                removed.append(path)
        if removed:
            _fsync_dir(self.root)
        return removed

    def size_bytes(self) -> int:
        """Total bytes of all completed records and bundles on disk."""
        total = 0
        for scenario_id in self.ids():
            for path in (
                self.record_path(scenario_id),
                self.arrays_path(scenario_id),
            ):
                if os.path.exists(path):
                    total += os.path.getsize(path)
        return total


__all__ = ["SweepStore"]
