"""Turn a sweep's stored results into tidy accuracy / ROC tables.

The store holds one record per scenario; analysis wants *tables over
the swept axes*.  This module flattens records into tidy rows (one row
per scenario x distinguisher, carrying the scenario's axis assignment
as columns) and builds screening ROC curves by pooling matching
vs. non-matching correlation means across scenarios, grouped by any
axis — e.g. AUC as a function of noise sigma.

Works from the generic helpers in :mod:`repro.analysis.aggregate`, so
downstream consumers can regroup/re-pivot the same rows freely.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.aggregate import mean_by, pivot, render_pivot, render_rows
from repro.analysis.roc import ROCCurve, roc_from_scores
from repro.sweeps.spec import Scenario
from repro.sweeps.store import SweepStore


def _records_for(
    store: SweepStore, scenarios: Optional[Sequence[Scenario]]
) -> List[Mapping[str, object]]:
    if scenarios is None:
        return store.records()
    return [
        store.get(s.scenario_id) for s in scenarios if store.has(s.scenario_id)
    ]


def tidy_accuracy(
    store: SweepStore, scenarios: Optional[Sequence[Scenario]] = None
) -> List[Dict[str, object]]:
    """One tidy row per (scenario, distinguisher).

    Columns: ``scenario_id``, every axis of the scenario's assignment,
    ``attack``, ``distinguisher``, ``accuracy`` and the mean confidence
    distance over the four reference rows.  Restricting to
    ``scenarios`` (e.g. one spec's expansion) keeps unrelated results
    sharing the store out of the table.
    """
    rows: List[Dict[str, object]] = []
    for record in _records_for(store, scenarios):
        metrics = record["metrics"]
        assignment = dict(record.get("assignment", {}))
        for name, accuracy in sorted(metrics["accuracy"].items()):
            confidence = metrics["confidence_percent"].get(name, {})
            values = list(confidence.values())
            rows.append(
                dict(
                    {
                        "scenario_id": record["scenario_id"],
                        "attack": record.get("attack", "none"),
                    },
                    **assignment,
                    distinguisher=name,
                    accuracy=float(accuracy),
                    mean_confidence=(
                        sum(values) / len(values) if values else float("nan")
                    ),
                )
            )
    return rows


def accuracy_pivot(
    rows: Sequence[Mapping[str, object]],
    index: str,
    columns: str,
    distinguisher: str = "lower-variance",
) -> str:
    """ASCII accuracy surface: mean accuracy of one distinguisher,
    ``index`` down the side, ``columns`` across the top."""
    selected = [row for row in rows if row.get("distinguisher") == distinguisher]
    aggregated = mean_by(selected, by=(index, columns), value="accuracy")
    return render_pivot(
        pivot(aggregated, index=index, columns=columns, value="accuracy"),
        index_name=index,
    )


def matching_scores(
    record: Mapping[str, object]
) -> "tuple[List[float], List[float]]":
    """Split one record's 16 correlation means into (genuine, counterfeit).

    Genuine = the four RefD/DUT pairs that share an IP; counterfeit =
    the twelve mismatched pairs.  These are the score populations of
    the screening decision.
    """
    metrics = record["metrics"]
    expected = metrics["expected_matches"]
    genuine: List[float] = []
    counterfeit: List[float] = []
    for ref, row in metrics["means"].items():
        for dut, mean in row.items():
            (genuine if expected.get(ref) == dut else counterfeit).append(
                float(mean)
            )
    return genuine, counterfeit


def roc_by_axis(
    store: SweepStore,
    axis: str,
    scenarios: Optional[Sequence[Scenario]] = None,
) -> List[Dict[str, object]]:
    """Screening ROC per value of one swept axis.

    Pools matching/non-matching correlation means over every scenario
    sharing the axis value and returns tidy rows with the resulting
    AUC and population sizes.
    """
    groups: Dict[object, "tuple[List[float], List[float]]"] = {}
    for record in _records_for(store, scenarios):
        assignment = record.get("assignment", {})
        if axis == "attack":
            key = record.get("attack", "none")
        elif axis in assignment:
            key = assignment[axis]
        else:
            key = record.get("overrides", {}).get(axis)
        genuine, counterfeit = matching_scores(record)
        pooled = groups.setdefault(key, ([], []))
        pooled[0].extend(genuine)
        pooled[1].extend(counterfeit)
    def group_order(key: object) -> "tuple[int, float, str]":
        # Numbers sort numerically, everything else lexically after.
        if isinstance(key, (int, float)) and not isinstance(key, bool):
            return (0, float(key), "")
        return (1, 0.0, str(key))

    rows: List[Dict[str, object]] = []
    for key in sorted(groups, key=group_order):
        genuine, counterfeit = groups[key]
        curve: ROCCurve = roc_from_scores(genuine, counterfeit)
        rows.append(
            {
                axis: key,
                "auc": curve.auc,
                "n_genuine": len(genuine),
                "n_counterfeit": len(counterfeit),
            }
        )
    return rows


def render_sweep_summary(
    store: SweepStore,
    scenarios: Optional[Sequence[Scenario]] = None,
    index: str = "noise.sigma",
    columns: str = "attack",
) -> str:
    """Human-readable sweep digest: accuracy surfaces + screening AUC."""
    rows = tidy_accuracy(store, scenarios)
    if not rows:
        return "(store holds no results for this sweep)"
    parts: List[str] = []
    for name in sorted({str(row["distinguisher"]) for row in rows}):
        parts.append(f"accuracy[{name}] — {index} x {columns}:")
        parts.append(accuracy_pivot(rows, index, columns, distinguisher=name))
        parts.append("")
    parts.append(f"screening AUC by {index}:")
    parts.append(render_rows(roc_by_axis(store, index, scenarios)))
    return "\n".join(parts)


__all__ = [
    "accuracy_pivot",
    "matching_scores",
    "roc_by_axis",
    "render_sweep_summary",
    "tidy_accuracy",
]
