"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro-watermark tables          # Tables I and II, paper vs measured
    repro-watermark figure4         # ASCII Fig. 4 panels
    repro-watermark figure5         # ASCII Fig. 5 curve
    repro-watermark campaign        # verdict matrix + accuracies
    repro-watermark plan --alpha 10 --k 50   # parameter planning
    repro-watermark collisions      # exhaustive key-collision census
    repro-watermark keysearch       # CPA template attack on Kw

All subcommands accept ``--seed`` to change the measurement seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.parameters import plan_parameters
from repro.core.report import render_verdicts
from repro.experiments.figure4 import figure4_panels, render_figure4
from repro.experiments.figure5 import figure5_data, render_figure5
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.experiments.tables import (
    render_paper_table1,
    render_paper_table2,
    render_table1,
    render_table2,
)


def _campaign_config(args: argparse.Namespace) -> CampaignConfig:
    return CampaignConfig(measurement_seed=args.seed, analysis_seed=args.seed + 1)


def _cmd_tables(args: argparse.Namespace) -> int:
    outcome = run_campaign(_campaign_config(args))
    print("=== Table I (means of the correlation sets) — measured ===")
    print(render_table1(outcome))
    print()
    print("=== Table I — paper ===")
    print(render_paper_table1())
    print()
    print("=== Table II (variances of the correlation sets) — measured ===")
    print(render_table2(outcome))
    print()
    print("=== Table II — paper ===")
    print(render_paper_table2())
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    panels = figure4_panels(_campaign_config(args))
    print(render_figure4(panels))
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    data = figure5_data(alpha=args.alpha)
    print(render_figure5(data))
    print(
        f"P(zeta) at m = 20: {data.p_zeta_at_paper_m:.6f} "
        "(paper: 0.0045)"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    outcome = run_campaign(_campaign_config(args))
    for ref, report in outcome.reports.items():
        print(render_verdicts(report))
        print()
    print(f"higher-mean accuracy:    {outcome.accuracy('higher-mean'):.2f}")
    print(f"lower-variance accuracy: {outcome.accuracy('lower-variance'):.2f}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_parameters(k=args.k, alpha=args.alpha, rel_tol=args.tolerance)
    p = plan.parameters
    print(f"alpha = {plan.alpha:g}")
    print(f"P(zeta) limit    = {plan.p_zeta_limit:.6f}")
    print(f"chosen m         = {p.m}  (P(zeta) = {plan.p_zeta:.6f})")
    print(f"chosen k         = {p.k}")
    print(f"n1 (RefD traces) = {p.n1}")
    print(f"n2 (DUT traces)  = {p.n2}")
    return 0


def _cmd_collisions(args: argparse.Namespace) -> int:
    from repro.analysis.collisions import collision_summary

    summary = collision_summary(list(range(256)))
    print("Exhaustive cross-key switching-correlation census (binary FSM):")
    print(f"  key pairs: {summary.n_pairs}")
    print(f"  mean rho:  {summary.mean:+.4f} (std {summary.std:.4f})")
    print(f"  range:     [{summary.minimum:+.3f}, {summary.maximum:+.3f}]")
    a, b = summary.worst_pair
    print(
        f"  worst pair: 0x{a:02X}/0x{b:02X} "
        f"(Hamming distance {bin(a ^ b).count('1')})"
    )
    return 0


def _cmd_keysearch(args: argparse.Namespace) -> int:
    from repro.acquisition.bench import acquire_traces
    from repro.acquisition.device import Device
    from repro.attacks.forgery import template_key_search
    from repro.experiments.designs import KW1, build_paper_ip
    from repro.power.models import PowerModel

    device = Device("DUT", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
    traces = acquire_traces(device, args.traces, rng=args.seed)
    result = template_key_search(
        traces,
        list(range(256)),
        KW1,
        samples_per_cycle=4,
        n_average=args.traces,
    )
    print(f"256-template CPA against Kw = 0x{KW1:02X}:")
    print(f"  recovered: {result.succeeded}")
    print(f"  rank of true key: {result.rank_of_true_key()}")
    print(f"  margin over runner-up: {result.margin:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watermark",
        description="Reproduce the SOCC 2014 IP-watermark verification paper.",
    )
    parser.add_argument("--seed", type=int, default=42, help="measurement seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="Tables I and II, paper vs measured")
    subparsers.add_parser("figure4", help="Fig. 4 correlation panels (ASCII)")

    fig5 = subparsers.add_parser("figure5", help="Fig. 5 f_alpha(m) curve (ASCII)")
    fig5.add_argument("--alpha", type=float, default=10.0)

    subparsers.add_parser("campaign", help="full campaign verdicts")

    plan = subparsers.add_parser("plan", help="parameter planning")
    plan.add_argument("--alpha", type=float, default=10.0)
    plan.add_argument("--k", type=int, default=50)
    plan.add_argument("--tolerance", type=float, default=0.05)

    subparsers.add_parser("collisions", help="exhaustive key-collision census")

    keysearch = subparsers.add_parser("keysearch", help="CPA template attack on Kw")
    keysearch.add_argument("--traces", type=int, default=300)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "figure4": _cmd_figure4,
        "figure5": _cmd_figure5,
        "campaign": _cmd_campaign,
        "plan": _cmd_plan,
        "collisions": _cmd_collisions,
        "keysearch": _cmd_keysearch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
