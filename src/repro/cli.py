"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro-watermark tables          # Tables I and II, paper vs measured
    repro-watermark figure4         # ASCII Fig. 4 panels
    repro-watermark figure5         # ASCII Fig. 5 curve
    repro-watermark campaign        # verdict matrix + accuracies
    repro-watermark plan --alpha 10 --k 50   # parameter planning
    repro-watermark collisions      # exhaustive key-collision census
    repro-watermark keysearch       # CPA template attack on Kw
    repro-watermark sweep           # scenario sweep (noise x budget x attack)

All subcommands accept ``--seed`` (measurement seed) and ``--engine``
(pin the netlist-simulation path: auto / compiled / interpreted).

``sweep`` runs a declarative scenario grid through the multiprocess
sweep runner (:mod:`repro.sweeps`) into a content-addressed result
store: interrupted or repeated invocations only execute scenarios
whose results are not on disk yet.  Axes are ``field=v1,v2,...``
pairs over campaign-config paths (``noise.sigma``, ``parameters.n2``,
``adc.bits``, ``watermarked``, ``attack``, ...); values are parsed as
JSON scalars.  Without ``--axis`` a default 24-scenario surface (noise
x trace budget x attack) is swept at a reduced, fast parameter point.
``--share-artifacts`` reuses manufactured fleets, acquired trace
matrices and whole memoised campaign outcomes across scenarios whose
config tiers agree (byte-identical results, order-of-magnitude faster
analysis-axis grids and repeat studies); ``--artifact-cache DIR`` adds
an on-disk tier shared by all workers and runs.  The cross-campaign
batch pool is on by default (``--no-batch-pool`` disables it):
scenario fleets' netlist simulations are collected and executed in
shared shape-grouped engine batches that span scenario boundaries,
with flush budgets tunable via ``--pool-lanes`` / ``--pool-bytes`` —
store bytes are identical with the pool on or off.

Sweeps degrade gracefully instead of aborting: failures retry with
backoff (``--max-retries``, default 2 re-attempts) and scenarios that
exhaust their budget are quarantined under ``<store>/failed/`` while
the rest of the sweep completes (the command then exits 1 and lists
them).  ``--scenario-timeout`` / ``--lease-ttl`` switch to lease-based
scheduling: each attempt runs in an isolated worker process killed on
timeout, and several sweep invocations may safely share one store root
— leases keep them off each other's work and a dead worker's
scenarios are re-leased after the TTL.  ``--scrub`` clears crash
residue (orphaned temp files and bundles, expired leases) before
running.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.core.parameters import plan_parameters
from repro.core.report import render_verdicts
from repro.experiments.figure4 import figure4_panels, render_figure4
from repro.experiments.figure5 import figure5_data, render_figure5
from repro.experiments.runner import CampaignConfig, run_campaign
from repro.experiments.tables import (
    render_paper_table1,
    render_paper_table2,
    render_table1,
    render_table2,
)
from repro.hdl.simulator import ENGINES


def _campaign_config(args: argparse.Namespace) -> CampaignConfig:
    return CampaignConfig(
        measurement_seed=args.seed,
        analysis_seed=args.seed + 1,
        engine=args.engine,
        design=args.design,
    )


def _cmd_tables(args: argparse.Namespace) -> int:
    outcome = run_campaign(_campaign_config(args))
    print("=== Table I (means of the correlation sets) — measured ===")
    print(render_table1(outcome))
    print()
    print("=== Table I — paper ===")
    print(render_paper_table1())
    print()
    print("=== Table II (variances of the correlation sets) — measured ===")
    print(render_table2(outcome))
    print()
    print("=== Table II — paper ===")
    print(render_paper_table2())
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    panels = figure4_panels(_campaign_config(args))
    print(render_figure4(panels))
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    data = figure5_data(alpha=args.alpha)
    print(render_figure5(data))
    print(
        f"P(zeta) at m = 20: {data.p_zeta_at_paper_m:.6f} "
        "(paper: 0.0045)"
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    outcome = run_campaign(_campaign_config(args))
    for ref, report in outcome.reports.items():
        print(render_verdicts(report))
        print()
    print(f"higher-mean accuracy:    {outcome.accuracy('higher-mean'):.2f}")
    print(f"lower-variance accuracy: {outcome.accuracy('lower-variance'):.2f}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_parameters(k=args.k, alpha=args.alpha, rel_tol=args.tolerance)
    p = plan.parameters
    print(f"alpha = {plan.alpha:g}")
    print(f"P(zeta) limit    = {plan.p_zeta_limit:.6f}")
    print(f"chosen m         = {p.m}  (P(zeta) = {plan.p_zeta:.6f})")
    print(f"chosen k         = {p.k}")
    print(f"n1 (RefD traces) = {p.n1}")
    print(f"n2 (DUT traces)  = {p.n2}")
    return 0


def _cmd_collisions(args: argparse.Namespace) -> int:
    from repro.analysis.collisions import collision_summary

    summary = collision_summary(list(range(256)))
    print("Exhaustive cross-key switching-correlation census (binary FSM):")
    print(f"  key pairs: {summary.n_pairs}")
    print(f"  mean rho:  {summary.mean:+.4f} (std {summary.std:.4f})")
    print(f"  range:     [{summary.minimum:+.3f}, {summary.maximum:+.3f}]")
    a, b = summary.worst_pair
    print(
        f"  worst pair: 0x{a:02X}/0x{b:02X} "
        f"(Hamming distance {bin(a ^ b).count('1')})"
    )
    return 0


def _cmd_keysearch(args: argparse.Namespace) -> int:
    from repro.acquisition.bench import acquire_traces
    from repro.acquisition.device import Device
    from repro.attacks.forgery import template_key_search
    from repro.experiments.designs import KW1, build_paper_ip
    from repro.power.models import PowerModel

    device = Device("DUT", build_paper_ip("IP_A"), PowerModel(), default_cycles=256)
    traces = acquire_traces(device, args.traces, rng=args.seed)
    result = template_key_search(
        traces,
        list(range(256)),
        KW1,
        samples_per_cycle=4,
        n_average=args.traces,
    )
    print(f"256-template CPA against Kw = 0x{KW1:02X}:")
    print(f"  recovered: {result.succeeded}")
    print(f"  rank of true key: {result.rank_of_true_key()}")
    print(f"  margin over runner-up: {result.margin:.3f}")
    return 0


#: Default sweep surface: noise x DUT trace budget x attack, at a
#: reduced (fast) parameter point — 4 x 3 x 2 = 24 scenarios.
DEFAULT_SWEEP_AXES: "Dict[str, List[object]]" = {
    "noise.sigma": [0.5, 1.0, 1.5, 2.0],
    "parameters.n2": [256, 512, 1024],
    "attack": ["none", "strip"],
}

#: Reduced parameter point shared by every quick-sweep scenario
#: (alpha = n2 / (k m) spans 4..16 across the default budget axis;
#: the n2 here is the fallback when no axis sweeps it).
DEFAULT_SWEEP_BASE: "Dict[str, object]" = {
    "parameters.k": 8,
    "parameters.m": 8,
    "parameters.n1": 64,
    "parameters.n2": 512,
}


def default_sweep_spec(
    seed: int = 42,
    engine: str = "auto",
    name: str = "sweep",
    design: str = "paper",
):
    """The CLI's default 24-scenario sweep surface as a spec object.

    Digest-identical to ``repro-watermark sweep`` run with no axis or
    base flags — the CLI's default path, the service smoke tests and
    CI all build the same scenarios from here.
    """
    from repro.sweeps import GridAxis, SweepSpec

    base: "Dict[str, object]" = dict(DEFAULT_SWEEP_BASE)
    base["engine"] = engine
    if design != "paper":
        # Non-default only, so the default grid keeps its digests.
        base["design"] = design
    return SweepSpec(
        name=name,
        grid=tuple(
            GridAxis(field, tuple(values))
            for field, values in DEFAULT_SWEEP_AXES.items()
        ),
        base=base,
        seed=seed,
    )


def _parse_axis_value(text: str) -> object:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_axis(option: str) -> "tuple[str, List[object]]":
    field, eq, csv = option.partition("=")
    if not eq or not field or not csv:
        raise argparse.ArgumentTypeError(
            f"axis {option!r} is not of the form field=v1,v2,..."
        )
    return field, [_parse_axis_value(part) for part in csv.split(",")]


def _parse_base(option: str) -> "tuple[str, object]":
    field, values = _parse_axis(option)
    if len(values) != 1:
        raise argparse.ArgumentTypeError(
            f"base override {option!r} must have exactly one value"
        )
    return field, values[0]


def _parse_random_axis(option: str) -> "tuple[str, float, float, bool, bool]":
    field, eq, bounds = option.partition("=")
    parts = bounds.split(":")
    if not eq or len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"random axis {option!r} is not of the form "
            "field=low:high[:log][:int]"
        )
    modifiers = parts[2:]
    unknown = [m for m in modifiers if m not in ("log", "int")]
    if unknown or len(modifiers) != len(set(modifiers)):
        raise argparse.ArgumentTypeError(
            f"random axis {option!r}: bad modifier(s) {modifiers!r} "
            "(supported: 'log', 'int', each at most once)"
        )
    return (
        field,
        float(parts[0]),
        float(parts[1]),
        "log" in modifiers,
        "int" in modifiers,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweeps import (
        FailureLog,
        GridAxis,
        LeaseManager,
        RandomAxis,
        RetryPolicy,
        SchedulerOptions,
        SweepOptions,
        SweepSpec,
        SweepStore,
        expand_scenarios,
        render_status,
        render_sweep_summary,
        run,
        sweep_status,
    )
    from repro.sweeps.executor import default_workers

    if args.axis:
        fields = [field for field, _ in args.axis]
        duplicates = sorted({f for f in fields if fields.count(f) > 1})
        if duplicates:
            raise SystemExit(
                f"error: --axis given twice for field(s) {duplicates}"
            )
        axes = dict(args.axis)
    elif args.random:
        # Random-only sweeps get no default grid; the random axes are
        # the whole surface.
        axes = {}
    else:
        axes = dict(DEFAULT_SWEEP_AXES)
    base: Dict[str, object] = dict(DEFAULT_SWEEP_BASE) if args.quick else {}
    base["engine"] = args.engine
    if args.design != "paper":
        # Non-default only, so the default grid keeps its digests.
        base["design"] = args.design
    if args.base:
        base.update(dict(args.base))
    try:
        if not args.axis and not args.random and not args.base and args.quick:
            # The default surface comes from the shared helper so the
            # CLI, the service smoke tests and CI agree on digests.
            spec = default_sweep_spec(
                seed=args.seed,
                engine=args.engine,
                name=args.name,
                design=args.design,
            )
        else:
            spec = SweepSpec(
                name=args.name,
                grid=tuple(
                    GridAxis(field, tuple(values))
                    for field, values in axes.items()
                ),
                random=tuple(
                    RandomAxis(field, low, high, log=log, integer=integer)
                    for field, low, high, log, integer in (args.random or ())
                ),
                n_random=args.samples if args.random else 0,
                base=base,
                seed=args.seed,
            )
    except (KeyError, ValueError, TypeError) as error:
        message = error.args[0] if error.args else error
        raise SystemExit(f"error: invalid sweep: {message}")
    scenarios = expand_scenarios(spec)
    store = SweepStore(args.store)
    workers = args.workers if args.workers else default_workers()
    if args.max_retries < 0:
        raise SystemExit("error: --max-retries must be >= 0")
    retry = RetryPolicy(max_attempts=args.max_retries + 1)
    scheduler = None
    if args.scenario_timeout is not None or args.lease_ttl is not None:
        scheduler_kwargs: Dict[str, object] = {"retry": retry}
        if args.lease_ttl is not None:
            scheduler_kwargs["lease_ttl"] = args.lease_ttl
        if args.scenario_timeout is not None:
            scheduler_kwargs["scenario_timeout"] = args.scenario_timeout
        try:
            scheduler = SchedulerOptions(**scheduler_kwargs)
        except ValueError as error:
            raise SystemExit(f"error: invalid scheduler options: {error}")
    if args.scrub:
        removed = store.scrub()
        lease_ttl = args.lease_ttl if args.lease_ttl is not None else 30.0
        removed += LeaseManager(store.root, lease_ttl).scrub()
        removed += FailureLog(store.root).scrub(store)
        print(f"scrubbed {len(removed)} stale file(s) from {store.root}")
    artifacts = None
    if args.share_artifacts or args.artifact_cache:
        from repro.experiments.artifacts import ArtifactOptions

        artifacts = ArtifactOptions(root=args.artifact_cache)
    pool = None
    if not args.batch_pool and (
        args.pool_lanes is not None or args.pool_bytes is not None
    ):
        raise SystemExit(
            "error: --pool-lanes/--pool-bytes tune the batch pool and "
            "cannot be combined with --no-batch-pool"
        )
    if args.batch_pool:
        from repro.hdl.batch_pool import BatchPoolOptions

        pool_kwargs = {}
        if args.pool_lanes is not None:
            pool_kwargs["max_lanes"] = args.pool_lanes
        if args.pool_bytes is not None:
            pool_kwargs["max_bytes"] = args.pool_bytes
        try:
            pool = BatchPoolOptions(**pool_kwargs)
        except ValueError as error:
            raise SystemExit(f"error: invalid pool budget: {error}")
    print(
        f"sweep {spec.name!r}: {len(scenarios)} scenarios "
        f"({len(spec.grid)} grid axes"
        + (f", {len(spec.random)} random axes x {spec.n_random}" if spec.random else "")
        + f"), store {store.root}, {workers} worker(s)"
        + (
            f", shared artifacts"
            + (f" (disk tier: {args.artifact_cache})" if args.artifact_cache else "")
            if artifacts is not None
            else ""
        )
        + (", batch pool" if pool is not None else ", no batch pool")
        + (", lease scheduler" if scheduler is not None else "")
    )
    report = run(
        spec,
        store,
        SweepOptions(
            n_workers=workers,
            artifacts=artifacts,
            pool=pool,
            retry=retry,
            scheduler=scheduler,
        ),
    )
    print(
        f"executed {report.n_executed}, "
        f"reused {report.n_cached} already in store"
    )
    print(
        render_status(
            sweep_status(store.root, scenario_ids=report.scenario_ids)
        )
    )
    if report.n_retried:
        print(
            f"retried {report.n_retried} scenario(s) after transient failures"
        )
    print()
    axis_names = list(axes) + [field for field, *_ in (args.random or ())]
    index = axis_names[0] if axis_names else "noise.sigma"
    if "attack" in axis_names:
        columns = "attack"
    else:
        columns = axis_names[1] if len(axis_names) > 1 else index
    print(render_sweep_summary(store, scenarios, index=index, columns=columns))
    if report.failed_ids:
        log = FailureLog(store.root)
        print()
        print(
            f"QUARANTINED {report.n_failed} scenario(s) "
            f"(see {log.failed_dir}/):"
        )
        for scenario_id in report.failed_ids:
            record = log.load_quarantine(scenario_id) or {}
            error = record.get("error", {})
            print(
                f"  {scenario_id}: {error.get('type', '?')}: "
                f"{error.get('message', 'no detail recorded')}"
            )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.service import SweepService
    from repro.sweeps import RetryPolicy, SchedulerOptions, SweepOptions
    from repro.sweeps.executor import default_workers

    if args.max_retries < 0:
        raise SystemExit("error: --max-retries must be >= 0")
    scheduler_kwargs: Dict[str, object] = {
        "retry": RetryPolicy(max_attempts=args.max_retries + 1)
    }
    if args.lease_ttl is not None:
        scheduler_kwargs["lease_ttl"] = args.lease_ttl
    if args.scenario_timeout is not None:
        scheduler_kwargs["scenario_timeout"] = args.scenario_timeout
    if args.status_interval is not None:
        scheduler_kwargs["status_interval"] = args.status_interval
    try:
        scheduler = SchedulerOptions(**scheduler_kwargs)
    except ValueError as error:
        raise SystemExit(f"error: invalid scheduler options: {error}")
    workers = args.workers if args.workers else default_workers()
    options = SweepOptions(n_workers=workers, scheduler=scheduler)
    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s: %(message)s"
    )
    service = SweepService(args.store, options)
    service.run_forever(args.host, args.port)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-watermark",
        description="Reproduce the SOCC 2014 IP-watermark verification paper.",
    )
    parser.add_argument("--seed", type=int, default=42, help="measurement seed")
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="netlist simulation path for every manufactured device",
    )
    parser.add_argument(
        "--design",
        default="paper",
        help="workload: 'paper' (Fig. 3 IPs) or 'imported:<path>' "
        "(a structural Verilog circuit, e.g. benchmarks/netlists/c17.v)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="Tables I and II, paper vs measured")
    subparsers.add_parser("figure4", help="Fig. 4 correlation panels (ASCII)")

    fig5 = subparsers.add_parser("figure5", help="Fig. 5 f_alpha(m) curve (ASCII)")
    fig5.add_argument("--alpha", type=float, default=10.0)

    subparsers.add_parser("campaign", help="full campaign verdicts")

    plan = subparsers.add_parser("plan", help="parameter planning")
    plan.add_argument("--alpha", type=float, default=10.0)
    plan.add_argument("--k", type=int, default=50)
    plan.add_argument("--tolerance", type=float, default=0.05)

    subparsers.add_parser("collisions", help="exhaustive key-collision census")

    keysearch = subparsers.add_parser("keysearch", help="CPA template attack on Kw")
    keysearch.add_argument("--traces", type=int, default=300)

    sweep = subparsers.add_parser(
        "sweep", help="scenario sweep into a resumable result store"
    )
    sweep.add_argument(
        "--axis",
        type=_parse_axis,
        action="append",
        metavar="FIELD=V1,V2,...",
        help="grid axis over a campaign-config path (repeatable); "
        "defaults to the built-in noise x budget x attack surface",
    )
    sweep.add_argument(
        "--random",
        type=_parse_random_axis,
        action="append",
        metavar="FIELD=LOW:HIGH[:log][:int]",
        help="randomly sampled axis: uniform, log-uniform with :log, "
        "rounded to integers with :int (repeatable; needs --samples)",
    )
    sweep.add_argument(
        "--samples", type=int, default=8, help="draws per random axis set"
    )
    sweep.add_argument(
        "--base",
        type=_parse_base,
        action="append",
        metavar="FIELD=VALUE",
        help="fixed override applied to every scenario (repeatable)",
    )
    sweep.add_argument(
        "--store",
        default="sweep_store",
        help="result-store directory (content-addressed, resumable)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = half the machine's cores)",
    )
    sweep.add_argument(
        "--share-artifacts",
        action="store_true",
        help="share manufactured fleets and acquired trace matrices "
        "across scenarios that agree on the fleet/measurement tiers "
        "(byte-identical results; pin fleet_seed/measurement_seed via "
        "--base to unlock sharing on analysis-axis grids)",
    )
    sweep.add_argument(
        "--artifact-cache",
        metavar="DIR",
        default=None,
        help="on-disk artifact tier shared by all workers and runs "
        "(implies --share-artifacts)",
    )
    sweep.add_argument(
        "--batch-pool",
        dest="batch_pool",
        action="store_true",
        default=True,
        help="pool scenario fleets' netlist simulations into shared "
        "cross-campaign engine batches (default: on; byte-identical "
        "results either way)",
    )
    sweep.add_argument(
        "--no-batch-pool",
        dest="batch_pool",
        action="store_false",
        help="run every scenario's simulations through its own "
        "per-campaign batches (the pre-pool executor path)",
    )
    sweep.add_argument(
        "--pool-lanes",
        type=int,
        default=None,
        metavar="N",
        help="flush the batch pool once N simulation requests are "
        "pending (default: library default)",
    )
    sweep.add_argument(
        "--pool-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="flush the batch pool once the pending requests' estimated "
        "value tensors exceed BYTES (default: library default)",
    )
    sweep.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="re-attempts per scenario after its first failure (0 "
        "disables retry); a scenario that exhausts its budget is "
        "quarantined under failed/ and the sweep continues",
    )
    sweep.add_argument(
        "--scenario-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill any single scenario attempt after this long and "
        "retry it (implies lease-based scheduling with isolated "
        "attempt processes)",
    )
    sweep.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease time-to-live for lease-based scheduling: a worker "
        "that misses heartbeats for this long is presumed dead and its "
        "scenario is re-leased (implies lease-based scheduling; safe "
        "to run several schedulers on one store root)",
    )
    sweep.add_argument(
        "--scrub",
        action="store_true",
        help="before sweeping, remove crash residue from the store "
        "root (orphaned .tmp-* files, bundles without completion "
        "records, expired leases, quarantines of completed scenarios); "
        "only safe when no other sweep is writing to the root",
    )
    sweep.add_argument("--name", default="sweep", help="sweep name")
    sweep.add_argument(
        "--paper",
        dest="quick",
        action="store_false",
        help="run every scenario at full paper parameters "
        "(default is the reduced fast parameter point)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="HTTP sweep service: submit/poll/stream jobs over a "
        "shared store root (several instances may share one root)",
    )
    serve.add_argument(
        "--store",
        default="sweep_store",
        help="result-store directory served by this instance",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8734, help="bind port")
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="default worker processes per job (0 = half the cores); "
        "submissions may override via options.n_workers",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="default re-attempts per scenario after its first failure",
    )
    serve.add_argument(
        "--scenario-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-attempt timeout for submitted jobs",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="lease time-to-live (jobs are always lease-scheduled, so "
        "several service instances may share the store root)",
    )
    serve.add_argument(
        "--status-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="log a sweep-status line every N seconds while jobs run",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "figure4": _cmd_figure4,
        "figure5": _cmd_figure5,
        "campaign": _cmd_campaign,
        "plan": _cmd_plan,
        "collisions": _cmd_collisions,
        "keysearch": _cmd_keysearch,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
