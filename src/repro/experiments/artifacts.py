"""Cross-campaign artifact sharing: keyed caches for fleets and traces.

A campaign's cost is dominated by the acquisition step ``Pw(device,
n)`` — 400 reference + 4 x 10 000 DUT traces — yet a scenario sweep
whose axes are *analysis-side* (``parameters.k/m/n1/n2``,
distinguishers, ``analysis_seed``) re-manufactures the fleet and
re-acquires every trace set per scenario.  This module closes that
gap by splitting :class:`~repro.experiments.runner.CampaignConfig`
into three derived cache keys:

* **fleet key** (:func:`fleet_key`) — everything that determines the
  manufactured silicon: power model, variation model, waveform
  rendering, ``fleet_seed``, ``watermarked``, ``engine``.  Two configs
  with equal fleet keys describe byte-identical device fleets.
* **measurement key** (:func:`measurement_key`) — the fleet key plus
  the measurement chain (noise model, ADC, ``measurement_seed``) and
  the resolved ``n1``/``n2`` trace ceilings.  It identifies one
  concrete set of acquired trace matrices.  The ceiling-free prefix of
  this key (:func:`measurement_base_key`) seeds the per-device
  acquisition streams, so trace sets are *prefix-reusable*: a scenario
  needing ``n2 = 2 500`` traces slices the first 2 500 rows of a
  cached ``n2 = 10 000`` matrix and gets exactly the bytes a direct
  2 500-trace acquisition would produce.
* **analysis key** (:func:`analysis_key`) — everything, including
  ``k``/``m``, ``analysis_seed``, ``single_reference`` and the
  distinguisher set.  Two configs with equal analysis keys produce
  byte-identical campaign outcomes; it is the natural memoisation key
  for a full :func:`~repro.experiments.runner.run_campaign` result,
  and :class:`ArtifactCache` uses it exactly so: the *outcome tier*
  (:meth:`ArtifactCache.outcome` / :meth:`ArtifactCache.remember_outcome`)
  memoises whole :class:`~repro.experiments.runner.CampaignOutcome`
  objects, so repeat-style studies and re-run sweeps skip manufacture,
  acquisition *and* analysis entirely.  A memoised campaign consults
  nothing else — not the fleet tier, not the trace tier, not any
  batch pool.

Campaigns run inside a sweep may additionally tamper with the DUTs
(the ``attack`` axis); the transform name is folded into every key as
the ``fleet_tag``, so attacked and pristine fleets never share
artifacts.

:class:`ArtifactCache` is the two-tier store built on those keys: a
process-wide byte-budgeted LRU over trace matrices (plus a small fleet
LRU), optionally backed by an on-disk content-addressed tier that
reuses the :class:`~repro.sweeps.store.SweepStore` machinery
(deterministic array bundles, atomic completion-marker writes) so
sweep workers — or separate runs — share acquisitions through the
filesystem.  Sharing is *transparent*: because per-device acquisition
seeds derive from the measurement base key rather than from a
sequential bench RNG, a cache hit returns byte-for-byte what a cold
acquisition would have produced.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field, fields, is_dataclass
from typing import TYPE_CHECKING, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.acquisition.bench import derive_acquisition_seed
from repro.acquisition.oscilloscope import Oscilloscope
from repro.acquisition.traces import TraceSet

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.experiments.runner import CampaignConfig

#: Version folded into every artifact key; bump when key semantics or
#: the acquisition byte stream change incompatibly.
ARTIFACT_SCHEMA = 1

#: Default byte budget of the in-memory trace-matrix LRU (256 MiB —
#: two paper-sized DUT acquisitions).
DEFAULT_TRACE_BUDGET = 256 * 1024 * 1024

#: Default number of manufactured fleets kept alive per process.
DEFAULT_FLEET_SLOTS = 8

#: Default number of memoised campaign outcomes kept alive per process
#: (an outcome is just 16 correlation sets plus verdicts — tiny next
#: to a trace matrix, so dozens are cheap).
DEFAULT_OUTCOME_SLOTS = 32


def _canonical_json(value: object) -> str:
    """Canonical (sorted, compact) JSON used for key digests."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _payload(value: object) -> object:
    """JSON-able canonical form of a config fragment (dataclasses
    become sorted field dicts; mappings are sorted by key)."""
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _payload(getattr(value, f.name)) for f in fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): _payload(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_payload(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {value!r} into an artifact key")


def _digest(kind: str, payload: object) -> str:
    body = _canonical_json({"schema": ARTIFACT_SCHEMA, kind: payload})
    return hashlib.sha256(body.encode()).hexdigest()[:32]


def _fleet_payload(config: "CampaignConfig", fleet_tag: str) -> Dict[str, object]:
    """The *physical* fleet identity: what the silicon and its
    deterministic waveforms depend on."""
    payload = {
        "power_model": _payload(config.power_model),
        "variation": _payload(config.variation),
        "waveform": _payload(config.waveform),
        "fleet_seed": config.fleet_seed,
        "watermarked": config.watermarked,
        "fleet_tag": fleet_tag,
    }
    # Only non-default designs join the payload, so every digest minted
    # before the ``design`` field existed stays byte-identical.
    if config.design != "paper":
        payload["design"] = config.design
    return payload


def fleet_key(config: "CampaignConfig", fleet_tag: str = "none") -> str:
    """Digest of everything that determines the manufactured fleet.

    ``fleet_tag`` names the DUT transform applied after manufacture
    (the sweep ``attack`` axis); ``"none"`` is the pristine fleet.
    ``engine`` is part of this key — not because it changes any
    waveform byte (compiled and interpreted simulation are
    bit-identical), but because cached :class:`~repro.acquisition.device.Device`
    objects pin their simulation path, so a fleet must only be reused
    by configs asking for the same engine.
    """
    return _digest(
        "fleet",
        dict(_fleet_payload(config, fleet_tag), engine=config.engine),
    )


def measurement_base_key(config: "CampaignConfig", fleet_tag: str = "none") -> str:
    """Ceiling-free measurement key: fleet key + noise/ADC/seed.

    This is the seed material for the per-device acquisition streams
    (see :func:`~repro.acquisition.bench.derive_acquisition_seed`); it
    deliberately excludes two things:

    * the ``n1``/``n2`` ceilings, so trace matrices acquired at
      different budgets share one noise stream and can be reused by
      prefix;
    * the ``engine``, so campaigns differing only in simulation path
      keep byte-identical measurements (the engines are bit-equivalent
      on the waveforms).
    """
    return _digest(
        "measurement_base",
        {
            "fleet": _fleet_payload(config, fleet_tag),
            "noise": _payload(config.noise),
            "adc": _payload(config.adc),
            "measurement_seed": config.measurement_seed,
        },
    )


def measurement_key(config: "CampaignConfig", fleet_tag: str = "none") -> str:
    """Digest identifying one concrete set of acquired trace matrices:
    the base key plus the resolved ``n1``/``n2`` trace ceilings."""
    return _digest(
        "measurement",
        {
            "base": measurement_base_key(config, fleet_tag),
            "n1": config.parameters.n1,
            "n2": config.parameters.n2,
        },
    )


def analysis_key(config: "CampaignConfig", fleet_tag: str = "none") -> str:
    """Digest of the full campaign identity — fleet, measurement and
    every analysis-side axis.  Equal keys mean byte-identical
    :func:`~repro.experiments.runner.run_campaign` outcomes."""
    return _digest(
        "analysis",
        {
            "measurement": measurement_key(config, fleet_tag),
            "k": config.parameters.k,
            "m": config.parameters.m,
            "analysis_seed": config.analysis_seed,
            "single_reference": config.single_reference,
            "distinguishers": [d.name for d in config.distinguishers],
        },
    )


@dataclass(frozen=True)
class ArtifactOptions:
    """Picklable sharing configuration (travels in pool payloads).

    ``root`` enables the on-disk tier under that directory; ``None``
    keeps sharing process-local.  ``max_trace_bytes`` bounds the
    in-memory trace LRU.
    """

    root: Optional[str] = None
    max_trace_bytes: int = DEFAULT_TRACE_BUDGET
    max_fleets: int = DEFAULT_FLEET_SLOTS
    max_outcomes: int = DEFAULT_OUTCOME_SLOTS

    def __post_init__(self) -> None:
        if self.max_trace_bytes <= 0:
            raise ValueError("max_trace_bytes must be positive")
        if self.max_fleets <= 0:
            raise ValueError("max_fleets must be positive")
        if self.max_outcomes <= 0:
            raise ValueError("max_outcomes must be positive")


@dataclass
class ArtifactStats:
    """Hit/miss and memory accounting of one :class:`ArtifactCache`."""

    fleet_hits: int = 0
    fleet_misses: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    disk_hits: int = 0
    outcome_hits: int = 0
    outcome_misses: int = 0
    outcome_disk_hits: int = 0
    bytes_acquired: int = 0
    bytes_in_memory: int = 0
    peak_bytes: int = 0

    def note_bytes(self, delta: int) -> None:
        self.bytes_in_memory += delta
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_memory)


class ArtifactCache:
    """Two-tier (memory + optional disk) cache of campaign artifacts.

    The cache never *computes* fleets itself — callers pass a factory
    so manufacture (and any attack transform) stays where it belongs —
    but it owns acquisition end-to-end, because reproducing the keyed
    per-device streams is exactly what makes a hit byte-identical to a
    cold run.  One instance per process is the intended shape (see
    :func:`process_artifact_cache`); sweep workers each hold their own
    and meet, if configured, in the shared disk tier.
    """

    def __init__(self, options: Optional[ArtifactOptions] = None):
        self.options = options if options is not None else ArtifactOptions()
        self.stats = ArtifactStats()
        self._fleets: "OrderedDict[str, object]" = OrderedDict()
        self._traces: "OrderedDict[Tuple[str, str, int], TraceSet]" = OrderedDict()
        self._outcomes: "OrderedDict[str, object]" = OrderedDict()
        self._store = None
        if self.options.root is not None:
            # Deferred import: repro.sweeps pulls in the runner module,
            # which imports this one.
            from repro.sweeps.store import SweepStore

            self._store = SweepStore(self.options.root)

    # -- fleets ------------------------------------------------------------

    def fleet(
        self,
        config: "CampaignConfig",
        fleet_tag: str = "none",
        factory: Optional[Callable[[], object]] = None,
    ) -> object:
        """The manufactured (and possibly attacked) fleet for a config.

        ``factory`` builds the fleet on a miss; it must already apply
        the transform named by ``fleet_tag``.  Cached devices carry
        their simulated waveforms, so a hit skips manufacture *and*
        deterministic-waveform simulation.
        """
        key = fleet_key(config, fleet_tag)
        cached = self._fleets.get(key)
        if cached is not None:
            self._fleets.move_to_end(key)
            self.stats.fleet_hits += 1
            return cached
        if factory is None:
            raise KeyError(f"fleet {key} not cached and no factory given")
        self.stats.fleet_misses += 1
        built = factory()
        self._fleets[key] = built
        while len(self._fleets) > self.options.max_fleets:
            self._fleets.popitem(last=False)
        return built

    # -- traces ------------------------------------------------------------

    def _artifact_id(self, base_key: str, device_name: str, cycles: int) -> str:
        return _digest(
            "traces",
            {"base": base_key, "device": device_name, "cycles": cycles},
        )

    def _freeze(self, traces: TraceSet) -> TraceSet:
        if traces.matrix.flags.writeable:
            traces.matrix.flags.writeable = False
        return traces

    def _prefix(self, cached: TraceSet, n_traces: int) -> TraceSet:
        if cached.n_traces == n_traces:
            return cached
        return TraceSet(cached.device_name, cached.matrix[:n_traces])

    def _remember(self, key: Tuple[str, str, int], traces: TraceSet) -> None:
        old = self._traces.pop(key, None)
        if old is not None:
            self.stats.note_bytes(-old.matrix.nbytes)
        self._traces[key] = traces
        self.stats.note_bytes(traces.matrix.nbytes)
        while (
            self.stats.bytes_in_memory > self.options.max_trace_bytes
            and len(self._traces) > 1
        ):
            _, evicted = self._traces.popitem(last=False)
            self.stats.note_bytes(-evicted.matrix.nbytes)

    def traces(
        self,
        config: "CampaignConfig",
        device,
        n_traces: int,
        n_cycles: Optional[int] = None,
        fleet_tag: str = "none",
    ) -> TraceSet:
        """Acquire-or-reuse ``n_traces`` traces of ``device``.

        Lookup order: memory LRU, disk tier, cold acquisition.  A hit
        whose matrix holds at least ``n_traces`` rows is served as a
        read-only prefix view; a larger request re-acquires from the
        same keyed stream (the old entry is a prefix of the new one)
        and replaces the cache entry.
        """
        if n_traces <= 0:
            raise ValueError(f"n_traces must be positive, got {n_traces}")
        cycles = device.resolve_cycles(n_cycles)
        base_key = measurement_base_key(config, fleet_tag)
        key = (base_key, device.name, cycles)

        cached = self._traces.get(key)
        if cached is not None and cached.n_traces >= n_traces:
            self._traces.move_to_end(key)
            self.stats.trace_hits += 1
            return self._prefix(cached, n_traces)

        loaded = self._load_from_store(key, device.name, n_traces)
        if loaded is not None:
            self.stats.disk_hits += 1
            self._remember(key, loaded)
            return self._prefix(loaded, n_traces)

        self.stats.trace_misses += 1
        scope = Oscilloscope(config.noise, config.adc)
        rng = np.random.default_rng(
            derive_acquisition_seed(base_key, device.name, cycles)
        )
        acquired = self._freeze(scope.acquire(device, n_traces, rng, cycles))
        self.stats.bytes_acquired += acquired.matrix.nbytes
        self._remember(key, acquired)
        self._save_to_store(key, acquired, cycles)
        return acquired

    # -- campaign outcomes (the fourth artifact tier) ----------------------

    def _outcome_id(self, key: str) -> str:
        return _digest("outcome", {"analysis": key})

    def has_outcome(self, config: "CampaignConfig", fleet_tag: str = "none") -> bool:
        """True when the campaign outcome for this config is memoised.

        A pure peek: no stats are touched and no LRU entry moves, so
        planners (e.g. the sweep executor deciding whether a scenario
        needs a fleet prefetched into the batch pool) can ask freely.
        """
        key = analysis_key(config, fleet_tag)
        if key in self._outcomes:
            return True
        return self._store is not None and self._store.has(self._outcome_id(key))

    def outcome(
        self, config: "CampaignConfig", fleet_tag: str = "none"
    ) -> Optional[object]:
        """The memoised :class:`CampaignOutcome` for this config, if any.

        Lookup order: memory LRU, then the disk tier (reconstructed
        from its deterministic record + array bundle).  Returns
        ``None`` on a miss — the caller runs the campaign and stores
        it back through :meth:`remember_outcome`.  Equal analysis keys
        guarantee byte-identical outcomes, so a hit is
        indistinguishable from re-running the campaign (down to the
        sweep store digests derived from it).
        """
        key = analysis_key(config, fleet_tag)
        cached = self._outcomes.get(key)
        if cached is not None:
            self._outcomes.move_to_end(key)
            self.stats.outcome_hits += 1
            return cached
        if self._store is not None:
            artifact_id = self._outcome_id(key)
            if self._store.has(artifact_id):
                record = self._store.get(artifact_id)
                arrays = self._store.get_arrays(artifact_id)
                loaded = _outcome_from_record(config, record, arrays)
                self.stats.outcome_disk_hits += 1
                self._remember_outcome_in_memory(key, loaded)
                return loaded
        self.stats.outcome_misses += 1
        return None

    def remember_outcome(
        self,
        config: "CampaignConfig",
        fleet_tag: str,
        outcome: object,
    ) -> None:
        """Memoise one computed campaign outcome on its analysis key."""
        key = analysis_key(config, fleet_tag)
        self._remember_outcome_in_memory(key, outcome)
        if self._store is not None:
            artifact_id = self._outcome_id(key)
            if not self._store.has(artifact_id):
                record, arrays = _outcome_record(key, outcome)
                self._store.put(artifact_id, record, arrays)

    def _remember_outcome_in_memory(self, key: str, outcome: object) -> None:
        self._outcomes[key] = outcome
        self._outcomes.move_to_end(key)
        while len(self._outcomes) > self.options.max_outcomes:
            self._outcomes.popitem(last=False)

    # -- disk tier ---------------------------------------------------------

    def _load_from_store(
        self, key: Tuple[str, str, int], device_name: str, n_traces: int
    ) -> Optional[TraceSet]:
        if self._store is None:
            return None
        artifact_id = self._artifact_id(*key)
        if not self._store.has(artifact_id):
            return None
        record = self._store.get(artifact_id)
        if int(record.get("n_traces", 0)) < n_traces:
            return None
        arrays = self._store.get_arrays(artifact_id)
        matrix = arrays.get("traces")
        if matrix is None or matrix.shape[0] < n_traces:
            return None
        return self._freeze(TraceSet(device_name, matrix))

    def _save_to_store(
        self, key: Tuple[str, str, int], traces: TraceSet, cycles: int
    ) -> None:
        # Concurrent workers may interleave the has()/put() pair, so a
        # smaller acquisition can transiently clobber a larger one on
        # disk.  That is benign for correctness — loads check the row
        # count and fall back to re-acquiring the keyed stream — it only
        # costs a redundant acquisition on the losing side.
        if self._store is None:
            return
        base_key, device_name, _ = key
        artifact_id = self._artifact_id(*key)
        if self._store.has(artifact_id):
            existing = self._store.get(artifact_id)
            if int(existing.get("n_traces", 0)) >= traces.n_traces:
                return
        record = {
            "artifact": "traces",
            "schema": ARTIFACT_SCHEMA,
            "base_key": base_key,
            "device": device_name,
            "cycles": cycles,
            "n_traces": traces.n_traces,
        }
        self._store.put(artifact_id, record, {"traces": traces.matrix})

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        """Drop every in-memory artifact (the disk tier is untouched)."""
        self._fleets.clear()
        self._traces.clear()
        self._outcomes.clear()
        self.stats = ArtifactStats()

    def __len__(self) -> int:
        return len(self._fleets) + len(self._traces) + len(self._outcomes)


# -- campaign-outcome serialisation ----------------------------------------
#
# The disk tier persists a CampaignOutcome as a (record, arrays) pair
# through the same content-addressed store machinery as trace matrices.
# Fidelity matters more than elegance here: a reconstructed outcome
# must be byte-indistinguishable from the computed one for *every*
# consumer — sweep metrics, correlation-set bundles, accuracy tables —
# so floats travel through canonical JSON (repr round-trips exactly),
# coefficient arrays travel through the deterministic npz bundle, and
# all dict orderings are recorded explicitly.


def _outcome_record(
    key: str, outcome
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Serialise one CampaignOutcome into a store (record, arrays) pair."""
    reports: Dict[str, object] = {}
    arrays: Dict[str, np.ndarray] = {}
    for ref, report in outcome.reports.items():
        duts = list(report.results)
        for dut in duts:
            arrays[f"C/{ref}/{dut}"] = np.asarray(
                report.results[dut].coefficients, dtype=np.float64
            )
        reports[ref] = {
            "ref_name": report.ref_name,
            "duts": duts,
            "verdicts": [
                {
                    "distinguisher": verdict.distinguisher,
                    "chosen_dut": verdict.chosen_dut,
                    "confidence_percent": float(verdict.confidence_percent),
                    "scores": [
                        [name, float(score)]
                        for name, score in verdict.scores.items()
                    ],
                }
                for verdict in report.verdicts
            ],
        }
    record = {
        "artifact": "outcome",
        "schema": ARTIFACT_SCHEMA,
        "analysis_key": key,
        "ref_order": list(outcome.ref_order),
        "dut_order": list(outcome.dut_order),
        "report_order": list(outcome.reports),
        "reports": reports,
    }
    return record, arrays


def _outcome_from_record(
    config: "CampaignConfig",
    record: Mapping[str, object],
    arrays: Mapping[str, np.ndarray],
):
    """Rebuild a CampaignOutcome from its persisted form.

    ``config`` is the caller's config: it necessarily shares the
    analysis key the record was stored under, so its parameters and
    distinguishers describe the persisted outcome exactly.
    """
    # Deferred imports: the runner module imports this one.
    from repro.core.distinguishers import Verdict
    from repro.core.process import CorrelationResult
    from repro.core.verification import VerificationReport
    from repro.experiments.runner import CampaignOutcome

    reports = {}
    for ref in record["report_order"]:
        payload = record["reports"][ref]
        ref_name = payload["ref_name"]
        results = {
            dut: CorrelationResult(
                ref_name=ref_name,
                dut_name=dut,
                parameters=config.parameters,
                coefficients=np.asarray(arrays[f"C/{ref}/{dut}"], dtype=np.float64),
            )
            for dut in payload["duts"]
        }
        verdicts = [
            Verdict(
                distinguisher=entry["distinguisher"],
                chosen_dut=entry["chosen_dut"],
                confidence_percent=float(entry["confidence_percent"]),
                scores={name: float(score) for name, score in entry["scores"]},
            )
            for entry in payload["verdicts"]
        ]
        reports[ref] = VerificationReport(
            ref_name=ref_name,
            parameters=config.parameters,
            results=results,
            verdicts=verdicts,
        )
    return CampaignOutcome(
        config=config,
        reports=reports,
        dut_order=tuple(record["dut_order"]),
        ref_order=tuple(record["ref_order"]),
    )


#: The per-process cache behind :func:`process_artifact_cache`.
_PROCESS_CACHE: Optional[ArtifactCache] = None


def process_artifact_cache(
    options: Optional[ArtifactOptions] = None,
) -> ArtifactCache:
    """The process-wide :class:`ArtifactCache` (created on first use).

    Passing ``options`` different from the live cache's replaces it —
    sweep workers call this with the payload's options, so a forked
    worker inherits the parent's warm cache whenever the configuration
    matches.
    """
    global _PROCESS_CACHE
    wanted = options if options is not None else ArtifactOptions()
    if _PROCESS_CACHE is None or _PROCESS_CACHE.options != wanted:
        _PROCESS_CACHE = ArtifactCache(wanted)
    return _PROCESS_CACHE


def clear_process_artifact_cache() -> None:
    """Forget the process-wide cache entirely (mainly for tests)."""
    global _PROCESS_CACHE
    _PROCESS_CACHE = None


__all__ = [
    "ARTIFACT_SCHEMA",
    "DEFAULT_OUTCOME_SLOTS",
    "DEFAULT_TRACE_BUDGET",
    "ArtifactCache",
    "ArtifactOptions",
    "ArtifactStats",
    "analysis_key",
    "clear_process_artifact_cache",
    "fleet_key",
    "measurement_base_key",
    "measurement_key",
    "process_artifact_cache",
]
