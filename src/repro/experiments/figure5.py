"""Figure 5: the trace-reuse probability curve ``f_alpha(m)``.

The paper plots ``f_10(m)`` for m in [1, 50] with its asymptote
``1 - (11/10) e^{-1/10}`` and a 5 % band, reading off that m around 17
suffices; with the chosen (alpha, m) = (10, 20) the reuse probability
is fixed at P(zeta) ~= 0.0045.  This module regenerates the curve, the
derived quantities and an ASCII plot — all closed-form, no simulation
(the Monte-Carlo cross-check lives in :mod:`repro.analysis.montecarlo`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.parameters import (
    f_alpha_series,
    minimal_m_near_limit,
    reuse_probability,
    reuse_probability_limit,
)

#: The paper's choices for this figure.
PAPER_ALPHA = 10.0
PAPER_M = 20
PAPER_M_MAX = 50

#: Values the paper reports (Section V.B).
PAPER_P_ZETA_AT_M20 = 0.0045
PAPER_MIN_M_AT_5PCT = 17


@dataclass(frozen=True)
class Figure5Data:
    """Everything plotted in Fig. 5."""

    alpha: float
    series: List[Tuple[int, float]]
    limit: float
    min_m_within_5pct: int
    p_zeta_at_paper_m: float


def figure5_data(
    alpha: float = PAPER_ALPHA, m_max: int = PAPER_M_MAX
) -> Figure5Data:
    """Compute the full Fig. 5 dataset."""
    return Figure5Data(
        alpha=alpha,
        series=f_alpha_series(alpha, m_max),
        limit=reuse_probability_limit(alpha),
        min_m_within_5pct=minimal_m_near_limit(alpha, rel_tol=0.05),
        p_zeta_at_paper_m=reuse_probability(alpha, PAPER_M),
    )


def render_figure5(data: Figure5Data, height: int = 14) -> str:
    """ASCII rendering of the f_alpha(m) curve with its limit line."""
    values = [p for _m, p in data.series]
    lo = min(values)
    hi = max(max(values), data.limit) * 1.02
    span = hi - lo if hi > lo else 1.0
    width = len(values)
    grid = [[" "] * width for _ in range(height)]
    limit_row = int(round((hi - data.limit) / span * (height - 1)))
    for x in range(width):
        if 0 <= limit_row < height:
            grid[limit_row][x] = "-"
    for x, value in enumerate(values):
        row = int(round((hi - value) / span * (height - 1)))
        grid[row][x] = "*"
    lines = [
        f"f_alpha(m) for alpha = {data.alpha:g}   "
        f"limit = {data.limit:.6f}   m(5%) = {data.min_m_within_5pct}"
    ]
    for row_index, row in enumerate(grid):
        y_value = hi - span * row_index / (height - 1)
        lines.append(f"{y_value:.5f} |" + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          m = 1 .. {width}   (* curve, - limit)")
    return "\n".join(lines)


def figure5_shape_holds(data: Figure5Data, rel_tol_vs_paper: float = 0.15) -> bool:
    """The figure's quantitative reads, within tolerance of the paper.

    * ``P(zeta)`` at m = 20 is ~0.0045;
    * the curve is increasing in m and below its limit;
    * the 5 %-band m is near the paper's graphical read of 17.
    """
    p20_ok = (
        abs(data.p_zeta_at_paper_m - PAPER_P_ZETA_AT_M20)
        <= rel_tol_vs_paper * PAPER_P_ZETA_AT_M20
    )
    values = [p for _m, p in data.series]
    increasing = all(b >= a for a, b in zip(values, values[1:]))
    below_limit = all(value <= data.limit for value in values)
    m_ok = abs(data.min_m_within_5pct - PAPER_MIN_M_AT_5PCT) <= 3
    return p20_ok and increasing and below_limit and m_ok


__all__ = [
    "Figure5Data",
    "figure5_data",
    "render_figure5",
    "figure5_shape_holds",
    "PAPER_ALPHA",
    "PAPER_M",
    "PAPER_P_ZETA_AT_M20",
    "PAPER_MIN_M_AT_5PCT",
]
