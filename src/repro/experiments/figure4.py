"""Figure 4: the sixteen correlation-coefficient sets.

The paper plots, for each RefD (IP_A..IP_D), the m = 20 correlation
coefficients against each of the four DUTs, concatenated on one axis
(80 points per sub-figure).  The matching DUT's cluster sits highest
and tightest.  This module produces the same series and an ASCII
rendering for terminal inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.designs import EXPECTED_MATCHES
from repro.experiments.runner import (
    CampaignConfig,
    CampaignOutcome,
    DUT_ORDER,
    REF_ORDER,
    run_campaign,
)


@dataclass
class SubFigure:
    """One of the four Fig. 4 panels: C sets of one RefD vs all DUTs."""

    ref_name: str
    series: Dict[str, np.ndarray]

    def concatenated(self) -> Tuple[np.ndarray, List[str]]:
        """The 80-point series in DUT order plus per-point labels."""
        values = np.concatenate([self.series[dut] for dut in DUT_ORDER])
        labels = [dut for dut in DUT_ORDER for _ in self.series[dut]]
        return values, labels

    def matching_cluster_is_tightest(self) -> bool:
        """The paper's visual claim: the match has the smallest spread."""
        target = EXPECTED_MATCHES[self.ref_name]
        spreads = {dut: float(np.var(c)) for dut, c in self.series.items()}
        return min(spreads, key=lambda dut: spreads[dut]) == target

    def matching_cluster_is_highest(self) -> bool:
        """The match also has the highest mean cluster."""
        target = EXPECTED_MATCHES[self.ref_name]
        centers = {dut: float(np.mean(c)) for dut, c in self.series.items()}
        return max(centers, key=lambda dut: centers[dut]) == target


def figure4_panels(
    config: Optional[CampaignConfig] = None,
    outcome: Optional[CampaignOutcome] = None,
) -> Dict[str, SubFigure]:
    """Produce the four panels from a campaign (running one if needed)."""
    result = outcome if outcome is not None else run_campaign(config)
    panels: Dict[str, SubFigure] = {}
    for ref in REF_ORDER:
        panels[ref] = SubFigure(ref_name=ref, series=result.correlation_sets(ref))
    return panels


def render_panel_ascii(
    panel: SubFigure,
    height: int = 16,
    lo: float = -0.2,
    hi: float = 1.0,
) -> str:
    """ASCII scatter of one panel (correlation vs sample index).

    Matches the paper's axes: y in [-0.2, 1.0], x is the concatenated
    sample index 0..79; each DUT gets its own glyph.
    """
    if height < 4:
        raise ValueError("height must be at least 4")
    values, labels = panel.concatenated()
    glyphs = {dut: glyph for dut, glyph in zip(DUT_ORDER, "1234")}
    width = len(values)
    grid = [[" "] * width for _ in range(height)]
    for x, (value, label) in enumerate(zip(values, labels)):
        clipped = min(max(value, lo), hi)
        row = int(round((hi - clipped) / (hi - lo) * (height - 1)))
        grid[row][x] = glyphs[label]
    lines = [f"{panel.ref_name}  (y: {hi:+.1f} top .. {lo:+.1f} bottom)"]
    for row_index, row in enumerate(grid):
        y_value = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"{y_value:+5.2f} |" + "".join(row))
    lines.append(
        "legend: " + ", ".join(f"{g}={d}" for d, g in glyphs.items())
    )
    return "\n".join(lines)


def render_figure4(panels: Dict[str, SubFigure]) -> str:
    """All four panels stacked, in the paper's order."""
    return "\n\n".join(render_panel_ascii(panels[ref]) for ref in REF_ORDER)


def figure4_shape_holds(panels: Dict[str, SubFigure]) -> bool:
    """The paper's reading of Fig. 4: on every panel the matching DUT's
    cluster is the tightest (variance view) and the highest (mean view)."""
    return all(
        panel.matching_cluster_is_tightest() and panel.matching_cluster_is_highest()
        for panel in panels.values()
    )


__all__ = [
    "SubFigure",
    "figure4_panels",
    "render_panel_ascii",
    "render_figure4",
    "figure4_shape_holds",
]
