"""Tables I and II of the paper, with the published values embedded for
paper-versus-measured comparison.

The published absolute numbers depend on the authors' FPGAs and probe
chain; the reproduction targets the *shape*:

* the matching DUT has the highest mean on every row (Table I) and the
  lowest variance on every row (Table II);
* ``Delta_v`` is large on every row while ``Delta_mean`` is small —
  variance is the better distinguisher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.distinguishers import (
    confidence_distance_higher,
    confidence_distance_lower,
)
from repro.core.report import render_means_table, render_variances_table
from repro.experiments.runner import (
    CampaignConfig,
    CampaignOutcome,
    DUT_ORDER,
    REF_ORDER,
    run_campaign,
)

#: Table I of the paper: means of the correlation sets.
PAPER_TABLE1_MEANS: Dict[str, Dict[str, float]] = {
    "IP_A": {"DUT#1": 0.936, "DUT#2": 0.347, "DUT#3": 0.896, "DUT#4": 0.347},
    "IP_B": {"DUT#1": -0.104, "DUT#2": 0.941, "DUT#3": 0.473, "DUT#4": 0.936},
    "IP_C": {"DUT#1": 0.733, "DUT#2": 0.648, "DUT#3": 0.947, "DUT#4": 0.657},
    "IP_D": {"DUT#1": 0.225, "DUT#2": 0.940, "DUT#3": 0.748, "DUT#4": 0.947},
}

#: Table I confidence distances (Delta_mean), in percent.
PAPER_TABLE1_DELTAS: Dict[str, float] = {
    "IP_A": 4.0,
    "IP_B": 0.52,
    "IP_C": 22.6,
    "IP_D": 0.78,
}

#: Table II of the paper: variances of the correlation sets.
PAPER_TABLE2_VARIANCES: Dict[str, Dict[str, float]] = {
    "IP_A": {
        "DUT#1": 1.612e-5,
        "DUT#2": 1.831e-4,
        "DUT#3": 6.443e-5,
        "DUT#4": 1.477e-4,
    },
    "IP_B": {
        "DUT#1": 2.925e-4,
        "DUT#2": 1.928e-5,
        "DUT#3": 3.008e-4,
        "DUT#4": 3.502e-5,
    },
    "IP_C": {"DUT#1": 1.18e-4, "DUT#2": 1.66e-4, "DUT#3": 9.90e-7, "DUT#4": 1.47e-4},
    "IP_D": {"DUT#1": 1.91e-4, "DUT#2": 1.04e-5, "DUT#3": 1.53e-4, "DUT#4": 3.04e-6},
}

#: Table II confidence distances (Delta_v), in percent.
PAPER_TABLE2_DELTAS: Dict[str, float] = {
    "IP_A": 75.0,
    "IP_B": 44.9,
    "IP_C": 99.2,
    "IP_D": 70.66,
}


@dataclass(frozen=True)
class TableComparison:
    """Shape comparison between a measured matrix and the paper's."""

    measured: Mapping[str, Mapping[str, float]]
    paper: Mapping[str, Mapping[str, float]]
    measured_deltas: Dict[str, float]
    paper_deltas: Dict[str, float]
    diagonal_wins: bool


def _diagonal_wins(
    matrix: Mapping[str, Mapping[str, float]],
    expected: Mapping[str, str],
    higher_is_better: bool,
) -> bool:
    for ref, per_dut in matrix.items():
        target = expected[ref]
        if higher_is_better:
            winner = max(per_dut, key=lambda dut: per_dut[dut])
        else:
            winner = min(per_dut, key=lambda dut: per_dut[dut])
        if winner != target:
            return False
    return True


def compare_table1(outcome: CampaignOutcome) -> TableComparison:
    """Measured Table I against the published one."""
    from repro.experiments.designs import EXPECTED_MATCHES

    measured = outcome.means
    measured_deltas = {
        ref: confidence_distance_higher(list(per_dut.values()))
        for ref, per_dut in measured.items()
    }
    return TableComparison(
        measured=measured,
        paper=PAPER_TABLE1_MEANS,
        measured_deltas=measured_deltas,
        paper_deltas=PAPER_TABLE1_DELTAS,
        diagonal_wins=_diagonal_wins(measured, EXPECTED_MATCHES, True),
    )


def compare_table2(outcome: CampaignOutcome) -> TableComparison:
    """Measured Table II against the published one."""
    from repro.experiments.designs import EXPECTED_MATCHES

    measured = outcome.variances
    measured_deltas = {
        ref: confidence_distance_lower(list(per_dut.values()))
        for ref, per_dut in measured.items()
    }
    return TableComparison(
        measured=measured,
        paper=PAPER_TABLE2_VARIANCES,
        measured_deltas=measured_deltas,
        paper_deltas=PAPER_TABLE2_DELTAS,
        diagonal_wins=_diagonal_wins(measured, EXPECTED_MATCHES, False),
    )


def render_table1(outcome: CampaignOutcome) -> str:
    """Measured Table I in the paper's layout."""
    return render_means_table(outcome.means, DUT_ORDER)


def render_table2(outcome: CampaignOutcome) -> str:
    """Measured Table II in the paper's layout."""
    return render_variances_table(outcome.variances, DUT_ORDER)


def render_paper_table1() -> str:
    """The published Table I in the same layout, for side-by-side view."""
    return render_means_table(PAPER_TABLE1_MEANS, DUT_ORDER)


def render_paper_table2() -> str:
    """The published Table II in the same layout."""
    return render_variances_table(PAPER_TABLE2_VARIANCES, DUT_ORDER)


def reproduce_tables(
    config: Optional[CampaignConfig] = None,
    outcome: Optional[CampaignOutcome] = None,
) -> Tuple[TableComparison, TableComparison, CampaignOutcome]:
    """Run one campaign (or reuse one) and compare both tables."""
    result = outcome if outcome is not None else run_campaign(config)
    return compare_table1(result), compare_table2(result), result


__all__ = [
    "PAPER_TABLE1_MEANS",
    "PAPER_TABLE1_DELTAS",
    "PAPER_TABLE2_VARIANCES",
    "PAPER_TABLE2_DELTAS",
    "TableComparison",
    "compare_table1",
    "compare_table2",
    "render_table1",
    "render_table2",
    "render_paper_table1",
    "render_paper_table2",
    "reproduce_tables",
    "REF_ORDER",
    "DUT_ORDER",
]
