"""The four IPs of the paper's experiment (Section IV.A, Fig. 3).

| IP   | FSM                  | watermark key |
|------|----------------------|---------------|
| IP_A | 8-bit binary counter | Kw1           |
| IP_B | 8-bit Gray counter   | Kw1           |
| IP_C | 8-bit Gray counter   | Kw2           |
| IP_D | 8-bit Gray counter   | Kw3           |

IP_A vs IP_B proves different FSMs with the *same* key are told apart;
IP_B vs IP_C vs IP_D proves the same FSM with *different* keys does not
collide.  Each IP is implemented twice: once as a reference device
(RefD) and once as a device under test (DUT#1..#4) on a different
"die" (independent process-variation draw), mirroring the paper's
eight Cyclone III FPGAs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.acquisition.device import Device, prime_fleet_activity
from repro.fsm.counters import build_binary_counter, build_gray_counter
from repro.fsm.watermark import WatermarkedIP, attach_leakage_component
from repro.hdl.netlist import Netlist
from repro.power.models import PowerModel
from repro.power.supply import WaveformConfig
from repro.power.variation import DeviceVariation, VariationModel

#: The watermark keys.  The paper picks Kw1 randomly; these are fixed
#: arbitrary byte values so every run of the reproduction is identical.
KW1 = 0x5A
KW2 = 0xC3
KW3 = 0x2F

#: FSM width used throughout the paper's experiment.
COUNTER_WIDTH = 8

#: One full period of an 8-bit counter — the paper measures complete
#: state-sequence periods.
PERIOD_CYCLES = 1 << COUNTER_WIDTH

#: IP name -> (fsm kind, watermark key).
IP_SPECS: Dict[str, Tuple[str, int]] = {
    "IP_A": ("binary", KW1),
    "IP_B": ("gray", KW1),
    "IP_C": ("gray", KW2),
    "IP_D": ("gray", KW3),
}

#: The paper's designs in presentation order — the canonical iteration
#: set for equivalence tests and benchmarks over every design.
PAPER_IP_NAMES: Tuple[str, ...] = tuple(IP_SPECS)

#: DUT#y contains the same IP as the matching RefD (paper Section IV).
DUT_CONTENTS: Dict[str, str] = {
    "DUT#1": "IP_A",
    "DUT#2": "IP_B",
    "DUT#3": "IP_C",
    "DUT#4": "IP_D",
}

#: RefD -> the DUT that contains its IP (ground truth of the experiment).
EXPECTED_MATCHES: Dict[str, str] = {ip: dut for dut, ip in DUT_CONTENTS.items()}


def build_ip(
    name: str,
    fsm_kind: str,
    kw: Optional[int],
    width: int = COUNTER_WIDTH,
) -> WatermarkedIP:
    """Construct one watermarked IP netlist.

    ``kw=None`` builds the unwatermarked variant (no leakage
    component) used by the E9 ablation.
    """
    netlist = Netlist(name)
    if fsm_kind == "binary":
        state_register = build_binary_counter(netlist, width)
    elif fsm_kind == "gray":
        state_register = build_gray_counter(netlist, width)
    else:
        raise ValueError(f"unknown FSM kind {fsm_kind!r}")
    state_wire = netlist.wires["ctr_state"]
    h_register = None
    if kw is not None:
        h_register = attach_leakage_component(netlist, state_wire, kw)
    netlist.validate()
    return WatermarkedIP(
        name=name,
        netlist=netlist,
        state_register=state_register,
        kw=kw,
        fsm_kind=fsm_kind,
        h_register=h_register,
        description=f"{width}-bit {fsm_kind} counter"
        + (f" + leakage component (Kw={kw:#04x})" if kw is not None else ""),
    )


def build_paper_ip(ip_name: str, watermarked: bool = True) -> WatermarkedIP:
    """Build IP_A / IP_B / IP_C / IP_D per the paper's Fig. 3."""
    if ip_name not in IP_SPECS:
        raise KeyError(f"unknown IP {ip_name!r}; choose from {sorted(IP_SPECS)}")
    fsm_kind, kw = IP_SPECS[ip_name]
    return build_ip(ip_name, fsm_kind, kw if watermarked else None)


def build_device_fleet(
    power_model: Optional[PowerModel] = None,
    variation_model: Optional[VariationModel] = None,
    waveform: Optional[WaveformConfig] = None,
    seed: int = 2014,
    watermarked: bool = True,
    engine: str = "auto",
    prime_activity: bool = False,
) -> Tuple[Dict[str, Device], Dict[str, Device]]:
    """Manufacture the eight devices of the paper's experiment.

    Returns ``(refds, duts)``: four reference devices named after their
    IPs and four DUTs named ``DUT#1..4``.  Every device gets a fresh
    netlist and an independent process-variation draw (pass
    ``variation_model=None`` for the no-variation ablation).
    ``engine`` pins the simulation path of every device (see
    :class:`~repro.hdl.simulator.Simulator`).

    Although each device owns a private netlist, the RefD and DUT built
    from the same IP are structurally identical, so the fleet-level
    activity cache (see :mod:`repro.acquisition.device`) simulates each
    of the four distinct netlists exactly once per cycle count.  With
    ``prime_activity=True`` those distinct netlists are simulated
    immediately — grouped by shape and executed in batched engine runs
    (:func:`~repro.acquisition.device.prime_fleet_activity`) — instead
    of lazily one by one on first use; the cached bytes are identical
    either way.
    """
    model = power_model if power_model is not None else PowerModel()
    rng = np.random.default_rng(seed)

    def manufacture(device_name: str, ip_name: str) -> Device:
        ip = build_paper_ip(ip_name, watermarked=watermarked)
        # Re-label the netlist copy with the physical device name.
        ip.netlist.name = device_name
        if variation_model is None:
            variation = DeviceVariation.nominal()
        else:
            component_names = [c.name for c in ip.netlist.components]
            variation = variation_model.sample(component_names, rng)
        return Device(
            name=device_name,
            ip=ip,
            power_model=model,
            variation=variation,
            waveform=waveform,
            default_cycles=PERIOD_CYCLES,
            engine=engine,
        )

    refds = {name: manufacture(name, name) for name in IP_SPECS}
    duts = {
        dut_name: manufacture(dut_name, ip_name)
        for dut_name, ip_name in DUT_CONTENTS.items()
    }
    if prime_activity:
        prime_fleet_activity((*refds.values(), *duts.values()))
    return refds, duts
