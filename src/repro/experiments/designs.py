"""The four IPs of the paper's experiment (Section IV.A, Fig. 3).

| IP   | FSM                  | watermark key |
|------|----------------------|---------------|
| IP_A | 8-bit binary counter | Kw1           |
| IP_B | 8-bit Gray counter   | Kw1           |
| IP_C | 8-bit Gray counter   | Kw2           |
| IP_D | 8-bit Gray counter   | Kw3           |

IP_A vs IP_B proves different FSMs with the *same* key are told apart;
IP_B vs IP_C vs IP_D proves the same FSM with *different* keys does not
collide.  Each IP is implemented twice: once as a reference device
(RefD) and once as a device under test (DUT#1..#4) on a different
"die" (independent process-variation draw), mirroring the paper's
eight Cyclone III FPGAs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.acquisition.device import Device, prime_fleet_activity
from repro.fsm.counters import build_binary_counter, build_gray_counter, build_lfsr
from repro.fsm.watermark import WatermarkedIP, attach_leakage_component
from repro.hdl.combinational import LookupLogic
from repro.hdl.io import InputPort
from repro.hdl.netlist import Netlist
from repro.hdl.verilog_parse import parse_verilog_file
from repro.hdl.wires import Wire, mask
from repro.power.models import PowerModel
from repro.power.supply import WaveformConfig
from repro.power.variation import DeviceVariation, VariationModel

#: The watermark keys.  The paper picks Kw1 randomly; these are fixed
#: arbitrary byte values so every run of the reproduction is identical.
KW1 = 0x5A
KW2 = 0xC3
KW3 = 0x2F
#: A fourth key for imported-design fleets (all four device slots carry
#: the *same* third-party circuit, so distinguishability rests entirely
#: on the keys — the paper's IP_B/C/D same-FSM case, generalised).
KW4 = 0x71

#: FSM width used throughout the paper's experiment.
COUNTER_WIDTH = 8

#: One full period of an 8-bit counter — the paper measures complete
#: state-sequence periods.
PERIOD_CYCLES = 1 << COUNTER_WIDTH

#: IP name -> (fsm kind, watermark key).
IP_SPECS: Dict[str, Tuple[str, int]] = {
    "IP_A": ("binary", KW1),
    "IP_B": ("gray", KW1),
    "IP_C": ("gray", KW2),
    "IP_D": ("gray", KW3),
}

#: The paper's designs in presentation order — the canonical iteration
#: set for equivalence tests and benchmarks over every design.
PAPER_IP_NAMES: Tuple[str, ...] = tuple(IP_SPECS)

#: Keys for the four device slots of an ``imported:<path>`` fleet.
IMPORTED_KEYS: Dict[str, int] = {
    "IP_A": KW1,
    "IP_B": KW2,
    "IP_C": KW3,
    "IP_D": KW4,
}

#: Maximal-length taps for the 8-bit exerciser LFSRs (period 255).
EXERCISER_TAPS: Tuple[int, ...] = (7, 5, 4, 3)
EXERCISER_WIDTH = 8

#: DUT#y contains the same IP as the matching RefD (paper Section IV).
DUT_CONTENTS: Dict[str, str] = {
    "DUT#1": "IP_A",
    "DUT#2": "IP_B",
    "DUT#3": "IP_C",
    "DUT#4": "IP_D",
}

#: RefD -> the DUT that contains its IP (ground truth of the experiment).
EXPECTED_MATCHES: Dict[str, str] = {ip: dut for dut, ip in DUT_CONTENTS.items()}


def build_ip(
    name: str,
    fsm_kind: str,
    kw: Optional[int],
    width: int = COUNTER_WIDTH,
) -> WatermarkedIP:
    """Construct one watermarked IP netlist.

    ``kw=None`` builds the unwatermarked variant (no leakage
    component) used by the E9 ablation.
    """
    netlist = Netlist(name)
    if fsm_kind == "binary":
        state_register = build_binary_counter(netlist, width)
    elif fsm_kind == "gray":
        state_register = build_gray_counter(netlist, width)
    else:
        raise ValueError(f"unknown FSM kind {fsm_kind!r}")
    state_wire = netlist.wires["ctr_state"]
    h_register = None
    if kw is not None:
        h_register = attach_leakage_component(netlist, state_wire, kw)
    netlist.validate()
    return WatermarkedIP(
        name=name,
        netlist=netlist,
        state_register=state_register,
        kw=kw,
        fsm_kind=fsm_kind,
        h_register=h_register,
        description=f"{width}-bit {fsm_kind} counter"
        + (f" + leakage component (Kw={kw:#04x})" if kw is not None else ""),
    )


def build_paper_ip(ip_name: str, watermarked: bool = True) -> WatermarkedIP:
    """Build IP_A / IP_B / IP_C / IP_D per the paper's Fig. 3."""
    if ip_name not in IP_SPECS:
        raise KeyError(f"unknown IP {ip_name!r}; choose from {sorted(IP_SPECS)}")
    fsm_kind, kw = IP_SPECS[ip_name]
    return build_ip(ip_name, fsm_kind, kw if watermarked else None)


def resolve_imported_design(design: str) -> Path:
    """Resolve an ``imported:<path>`` design spec to a Verilog file.

    ``<path>`` is tried as given (absolute or cwd-relative), then
    relative to the repository root — so the vendored corpus is
    addressable as ``imported:benchmarks/netlists/c17.v`` from
    anywhere.
    """
    kind, _, path_text = design.partition(":")
    if kind != "imported" or not path_text:
        raise ValueError(
            f"unknown design {design!r}; expected 'paper' or 'imported:<path>'"
        )
    candidate = Path(path_text)
    if candidate.is_file():
        return candidate
    repo_root = Path(__file__).resolve().parents[3]
    fallback = repo_root / path_text
    if fallback.is_file():
        return fallback
    raise FileNotFoundError(
        f"imported design {path_text!r} not found (tried {candidate} and {fallback})"
    )


def _attach_input_exercisers(netlist: Netlist, prefix: str = "stim") -> Wire:
    """Replace a parsed design's input pads with on-chip stimulus logic.

    Imported third-party circuits arrive with :class:`InputPort` pads
    whose stimulus is an opaque Python callable — which disables the
    engine's structural fingerprint and with it the fleet activity
    cache and batch axis.  Campaign workloads instead drive every input
    from free-running 8-bit maximal LFSRs (period 255) through pure
    bit-extract logic: fully tabulatable, so the whole design stays
    fingerprintable, batchable and vectorisable.

    Single-bit inputs share one LFSR per group of eight; wider inputs
    get a dedicated LFSR.  Returns the first LFSR's state wire — an
    8-bit, key-hookable state the watermark leakage component attaches
    to (a design with no inputs still gets that one LFSR).
    """
    ports = [c for c in netlist.components if isinstance(c, InputPort)]
    for port in ports:
        netlist.remove(port.name)

    single_bits = [p.target for p in ports if p.target.width == 1]
    wide = [p.target for p in ports if p.target.width > 1]
    state_wire: Optional[Wire] = None
    group = 0

    def add_lfsr() -> Wire:
        nonlocal group
        seed = (0x9D * (group + 1)) & 0xFF or 0x5A
        register = build_lfsr(
            netlist,
            EXERCISER_WIDTH,
            EXERCISER_TAPS,
            seed=seed,
            prefix=f"{prefix}{group}",
        )
        group += 1
        return register.q

    for start in range(0, len(single_bits), EXERCISER_WIDTH):
        chunk = single_bits[start : start + EXERCISER_WIDTH]
        state = add_lfsr()
        if state_wire is None:
            state_wire = state
        for bit, target in enumerate(chunk):
            netlist.add(
                LookupLogic(
                    f"{state.name}_tap{bit}",
                    (state,),
                    target,
                    lambda value, b=bit: (value >> b) & 1,
                    glitch_factor=0.0,
                )
            )
    for target in wide:
        state = add_lfsr()
        if state_wire is None:
            state_wire = state
        netlist.add(
            LookupLogic(
                f"{state.name}_bus",
                (state,),
                target,
                lambda value, m=mask(min(target.width, EXERCISER_WIDTH)): value & m,
                glitch_factor=0.0,
            )
        )
    if state_wire is None:
        state_wire = add_lfsr()
    return state_wire


def build_imported_ip(
    path, ip_name: str, kw: Optional[int], name: Optional[str] = None
) -> WatermarkedIP:
    """Parse a third-party circuit and watermark it like a paper IP.

    The file is parsed fresh (each device owns a private netlist), its
    input pads are swapped for LFSR exercisers, and — unless
    ``kw=None`` — the leakage component is attached to the first
    exerciser's 8-bit state.
    """
    path = Path(path)
    netlist = parse_verilog_file(path, name=name or ip_name)
    state_wire = _attach_input_exercisers(netlist)
    state_register = netlist.component(f"{state_wire.name[: -len('_state')]}_reg")
    h_register = None
    if kw is not None:
        h_register = attach_leakage_component(netlist, state_wire, kw)
    netlist.validate()
    return WatermarkedIP(
        name=ip_name,
        netlist=netlist,
        state_register=state_register,
        kw=kw,
        fsm_kind="imported",
        h_register=h_register,
        description=f"imported {path.name} ({len(netlist.components)} components)"
        + (f" + leakage component (Kw={kw:#04x})" if kw is not None else ""),
    )


def _ip_builder(
    design: str, watermarked: bool
) -> Callable[[str], WatermarkedIP]:
    """The per-slot IP factory for a fleet: paper designs or an import."""
    if design == "paper":
        return lambda ip_name: build_paper_ip(ip_name, watermarked=watermarked)
    path = resolve_imported_design(design)
    return lambda ip_name: build_imported_ip(
        path, ip_name, IMPORTED_KEYS[ip_name] if watermarked else None
    )


def build_device_fleet(
    power_model: Optional[PowerModel] = None,
    variation_model: Optional[VariationModel] = None,
    waveform: Optional[WaveformConfig] = None,
    seed: int = 2014,
    watermarked: bool = True,
    engine: str = "auto",
    prime_activity: bool = False,
    design: str = "paper",
) -> Tuple[Dict[str, Device], Dict[str, Device]]:
    """Manufacture the eight devices of the paper's experiment.

    Returns ``(refds, duts)``: four reference devices named after their
    IPs and four DUTs named ``DUT#1..4``.  Every device gets a fresh
    netlist and an independent process-variation draw (pass
    ``variation_model=None`` for the no-variation ablation).
    ``engine`` pins the simulation path of every device (see
    :class:`~repro.hdl.simulator.Simulator`).

    ``design`` selects the workload: ``"paper"`` builds the four
    hand-built counter IPs of Fig. 3; ``"imported:<path>"`` parses a
    structural Verilog circuit (e.g. the vendored corpus under
    ``benchmarks/netlists/``) and fills all four IP slots with it,
    watermarked under four distinct keys (:data:`IMPORTED_KEYS`) — the
    paper's same-FSM/different-key distinguishability case on
    third-party silicon.  Device and IP *names* stay the paper's, so
    campaigns, reports and sweeps work unchanged.

    Although each device owns a private netlist, the RefD and DUT built
    from the same IP are structurally identical, so the fleet-level
    activity cache (see :mod:`repro.acquisition.device`) simulates each
    of the four distinct netlists exactly once per cycle count.  With
    ``prime_activity=True`` those distinct netlists are simulated
    immediately — grouped by shape and executed in batched engine runs
    (:func:`~repro.acquisition.device.prime_fleet_activity`) — instead
    of lazily one by one on first use; the cached bytes are identical
    either way.
    """
    model = power_model if power_model is not None else PowerModel()
    rng = np.random.default_rng(seed)
    build = _ip_builder(design, watermarked)

    def manufacture(device_name: str, ip_name: str) -> Device:
        ip = build(ip_name)
        # Re-label the netlist copy with the physical device name.
        ip.netlist.name = device_name
        if variation_model is None:
            variation = DeviceVariation.nominal()
        else:
            component_names = [c.name for c in ip.netlist.components]
            variation = variation_model.sample(component_names, rng)
        return Device(
            name=device_name,
            ip=ip,
            power_model=model,
            variation=variation,
            waveform=waveform,
            default_cycles=PERIOD_CYCLES,
            engine=engine,
        )

    refds = {name: manufacture(name, name) for name in IP_SPECS}
    duts = {
        dut_name: manufacture(dut_name, ip_name)
        for dut_name, ip_name in DUT_CONTENTS.items()
    }
    if prime_activity:
        prime_fleet_activity((*refds.values(), *duts.values()))
    return refds, duts
