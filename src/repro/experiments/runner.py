"""Full verification campaigns (the paper's Section IV experiment).

A *campaign* measures the four reference devices (400 traces each) and
the four DUTs (10 000 traces each), runs the correlation computation
process for every RefD x DUT pair — sharing one ``A_RefD`` per row and
one DUT trace set per column, exactly as in the paper — and returns
the 16 correlation sets with all distinguisher verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.acquisition.bench import MeasurementBench
from repro.acquisition.device import prime_fleet_activity
from repro.acquisition.oscilloscope import ADCConfig, Oscilloscope
from repro.attacks.removal import apply_fleet_transform
from repro.experiments.artifacts import ArtifactCache, measurement_base_key
from repro.core.distinguishers import Distinguisher, PAPER_DISTINGUISHERS
from repro.core.process import ProcessParameters
from repro.core.verification import VerificationReport, WatermarkVerifier
from repro.experiments.designs import (
    DUT_CONTENTS,
    EXPECTED_MATCHES,
    build_device_fleet,
)
from repro.power.models import PowerModel
from repro.power.noise import NoiseModel
from repro.power.supply import WaveformConfig
from repro.power.variation import VariationModel

#: Presentation order of the DUT columns.
DUT_ORDER: Tuple[str, ...] = ("DUT#1", "DUT#2", "DUT#3", "DUT#4")

#: Presentation order of the RefD rows.
REF_ORDER: Tuple[str, ...] = ("IP_A", "IP_B", "IP_C", "IP_D")


@dataclass
class CampaignConfig:
    """Everything needed to run one campaign reproducibly.

    ``engine`` pins the netlist-simulation path of every manufactured
    device: ``"auto"`` (compiled with interpreted fallback),
    ``"compiled"`` or ``"interpreted"`` — see
    :class:`~repro.hdl.simulator.Simulator`.

    The fields split into three artifact tiers, each with a derived
    cache key (see :mod:`repro.experiments.artifacts`):

    * **fleet** — ``power_model``, ``variation``, ``waveform``,
      ``fleet_seed``, ``watermarked``, ``design``, ``engine`` determine
      the manufactured silicon
      (:func:`~repro.experiments.artifacts.fleet_key`);
    * **measurement** — plus ``noise``, ``adc``, ``measurement_seed``
      and the ``parameters.n1``/``n2`` trace ceilings, they determine
      the acquired trace matrices
      (:func:`~repro.experiments.artifacts.measurement_key`);
    * **analysis** — plus ``parameters.k``/``m``, ``analysis_seed``,
      ``single_reference`` and ``distinguishers``, they determine the
      full campaign outcome
      (:func:`~repro.experiments.artifacts.analysis_key`).

    Campaigns sharing a prefix of those tiers can share the matching
    artifacts byte-identically, which is what makes analysis-side
    scenario sweeps an order of magnitude cheaper.
    """

    parameters: ProcessParameters = field(default_factory=ProcessParameters)
    noise: NoiseModel = field(default_factory=NoiseModel)
    power_model: PowerModel = field(default_factory=PowerModel)
    waveform: Optional[WaveformConfig] = None
    variation: Optional[VariationModel] = field(default_factory=VariationModel)
    adc: Optional[ADCConfig] = field(default_factory=ADCConfig)
    distinguishers: Sequence[Distinguisher] = PAPER_DISTINGUISHERS
    fleet_seed: int = 2014
    measurement_seed: int = 42
    analysis_seed: int = 7
    watermarked: bool = True
    single_reference: bool = True
    engine: str = "auto"
    #: ``"paper"`` or ``"imported:<path>"`` — see
    #: :func:`~repro.experiments.designs.build_device_fleet`.
    design: str = "paper"


@dataclass
class CampaignOutcome:
    """All artefacts of one campaign."""

    config: CampaignConfig
    reports: Dict[str, VerificationReport]
    dut_order: Tuple[str, ...] = DUT_ORDER
    ref_order: Tuple[str, ...] = REF_ORDER

    @property
    def means(self) -> Dict[str, Dict[str, float]]:
        """Table I matrix: ``means[ref][dut]``."""
        return {ref: self.reports[ref].means for ref in self.ref_order}

    @property
    def variances(self) -> Dict[str, Dict[str, float]]:
        """Table II matrix: ``variances[ref][dut]``."""
        return {ref: self.reports[ref].variances for ref in self.ref_order}

    def correlation_sets(self, ref: str) -> Dict[str, np.ndarray]:
        """The four C sets of one RefD (one Fig. 4 sub-figure)."""
        return {
            dut: self.reports[ref].results[dut].coefficients
            for dut in self.dut_order
        }

    def verdict_matrix(self) -> Dict[str, Dict[str, str]]:
        """``verdicts[ref][distinguisher] = chosen DUT``."""
        return {
            ref: {v.distinguisher: v.chosen_dut for v in self.reports[ref].verdicts}
            for ref in self.ref_order
        }

    def accuracy(self, distinguisher_name: str) -> float:
        """Fraction of rows where a distinguisher found the right DUT."""
        correct = 0
        for ref in self.ref_order:
            verdict = self.reports[ref].verdict_of(distinguisher_name)
            if verdict.chosen_dut == EXPECTED_MATCHES[ref]:
                correct += 1
        return correct / len(self.ref_order)

    def confidence_distances(self, distinguisher_name: str) -> Dict[str, float]:
        """Per-row confidence distance of one distinguisher."""
        return {
            ref: self.reports[ref].verdict_of(distinguisher_name).confidence_percent
            for ref in self.ref_order
        }

    @property
    def all_correct(self) -> bool:
        """True when every distinguisher identifies every row correctly."""
        return all(
            self.accuracy(d.name) == 1.0 for d in self.config.distinguishers
        )


def manufacture_fleet(cfg: CampaignConfig):
    """Build the eight devices described by a campaign config."""
    return build_device_fleet(
        power_model=cfg.power_model,
        variation_model=cfg.variation,
        waveform=cfg.waveform,
        seed=cfg.fleet_seed,
        watermarked=cfg.watermarked,
        engine=cfg.engine,
        design=cfg.design,
    )


def build_campaign_fleet(cfg: CampaignConfig, fleet_tag: str = "none"):
    """Manufacture a campaign's fleet and apply its DUT transform.

    This is the one canonical way a ``(config, fleet_tag)`` pair
    becomes silicon — :func:`run_campaign` and the sweep executor's
    batch-pool prefetch both use it, so a prefetched fleet is
    guaranteed to be the same fleet the campaign would build itself.
    """
    refds, duts = manufacture_fleet(cfg)
    apply_fleet_transform(duts, fleet_tag)
    return refds, duts


def apply_config_overrides(
    config: CampaignConfig, overrides: Mapping[str, object]
) -> CampaignConfig:
    """Return a copy of ``config`` with dotted-path overrides applied.

    This is the scenario-level entry point the sweep subsystem uses to
    turn a flat axis assignment into a runnable config: top-level
    fields are named directly (``"watermarked"``, ``"engine"``,
    ``"measurement_seed"``) and fields of the nested dataclasses with
    one dot (``"noise.sigma"``, ``"parameters.n2"``, ``"adc.bits"``,
    ``"variation.component_sigma"``).  Setting a nullable nested field
    (``"adc"``, ``"variation"``, ``"waveform"``) to ``None`` disables
    it; overriding *into* a nested field that is currently ``None``
    starts from that dataclass's defaults.  Unknown paths raise
    ``KeyError`` so a typo in a sweep axis fails loudly instead of
    silently sweeping nothing.
    """
    nested_defaults = {
        "parameters": ProcessParameters,
        "noise": NoiseModel,
        "power_model": PowerModel,
        "waveform": WaveformConfig,
        "variation": VariationModel,
        "adc": ADCConfig,
    }
    top: Dict[str, object] = {}
    nested: Dict[str, Dict[str, object]] = {}
    valid_top = {f.name for f in CampaignConfig.__dataclass_fields__.values()}
    for path, value in overrides.items():
        head, dot, rest = path.partition(".")
        if head not in valid_top:
            raise KeyError(f"unknown campaign config field {path!r}")
        if not dot:
            top[head] = value
        else:
            if head not in nested_defaults:
                raise KeyError(f"field {head!r} has no sub-fields ({path!r})")
            if "." in rest:
                raise KeyError(f"override path {path!r} nests too deep")
            nested.setdefault(head, {})[rest] = value
    for head, fields in nested.items():
        if head in top:
            raise KeyError(
                f"cannot override both {head!r} and {head}.{next(iter(fields))!r}"
            )
        factory = nested_defaults[head]
        valid_sub = {f for f in factory.__dataclass_fields__}
        unknown = set(fields) - valid_sub
        if unknown:
            raise KeyError(f"unknown {head} field(s): {sorted(unknown)}")
        current = getattr(config, head)
        base = current if current is not None else factory()
        top[head] = replace(base, **fields)
    return replace(config, **top)


def run_campaign(
    config: Optional[CampaignConfig] = None,
    fleet=None,
    artifacts: Optional[ArtifactCache] = None,
    fleet_tag: str = "none",
    batch_pool=None,
) -> CampaignOutcome:
    """Run the paper's full 4x4 verification campaign.

    ``fleet`` optionally supplies pre-manufactured ``(refds, duts)``
    devices (e.g. from :func:`manufacture_fleet`), so repeated campaigns
    on the same chips reuse their cached deterministic waveforms instead
    of rebuilding and re-simulating the whole fleet.

    Acquisition is *keyed*: every device's noise stream is seeded from
    the config's measurement base key and the device name (see
    :mod:`repro.experiments.artifacts`), never from a shared sequential
    RNG, so trace sets do not depend on acquisition order and can be
    shared across campaigns.  Passing an ``artifacts`` cache reuses
    fleets and trace matrices across calls byte-identically to this
    unshared path; ``fleet_tag`` names the DUT transform the fleet
    carries (the sweep ``attack`` axis) so tampered artifacts never
    alias pristine ones.  With ``artifacts``, whole campaign outcomes
    are additionally memoised on the config's *analysis key*: a repeat
    call with an equal key returns the stored outcome without touching
    the fleet, the bench or any batch pool (equal keys guarantee
    byte-identical outcomes, so a memo hit is unobservable downstream).

    ``batch_pool`` routes the fleet's activity priming through a shared
    :class:`~repro.hdl.batch_pool.BatchPool`, so simulation lanes this
    campaign needs batch together with lanes other campaigns already
    submitted; the pool is flushed before acquisition starts, but only
    when this campaign's priming actually left lanes unresolved — a
    fleet whose activity a prefetch already flushed measures without
    forcing other campaigns' pending lanes to drain.
    """
    cfg = config if config is not None else CampaignConfig()
    if fleet is not None and artifacts is not None:
        # The trace cache keys on (config, fleet_tag) alone, so an
        # arbitrary caller-supplied fleet could poison it (or be
        # served traces of a different fleet).  Only a fleet that
        # came out of this cache for the same keys is provably
        # consistent.  Checked before the outcome memo so a foreign
        # fleet fails loudly even when a memoised outcome exists.
        try:
            cached = artifacts.fleet(cfg, fleet_tag)
        except KeyError:
            cached = None
        if cached is not fleet:
            raise ValueError(
                "run_campaign: an explicit fleet= can only be combined "
                "with artifacts= when it was obtained from "
                "artifacts.fleet(config, fleet_tag); pass fleet_tag "
                "and let run_campaign manufacture it instead"
            )
    if artifacts is not None:
        memoised = artifacts.outcome(cfg, fleet_tag)
        if memoised is not None:
            return memoised
    if fleet is not None:
        refds, duts = fleet
    else:
        if artifacts is not None:
            refds, duts = artifacts.fleet(
                cfg, fleet_tag, lambda: build_campaign_fleet(cfg, fleet_tag)
            )
        else:
            refds, duts = build_campaign_fleet(cfg, fleet_tag)
    # Batched activity priming: the fleet's distinct netlists simulate
    # grouped by shape in one vectorised engine run each, instead of
    # lazily one at a time when the first waveform is rendered.  Cached
    # fleets skip this in O(devices) dict lookups; trace bytes are
    # unchanged either way (the engine's batching invariant).  With a
    # batch pool the lanes are deferred instead and flushed together
    # with whatever other campaigns submitted.
    submitted = prime_fleet_activity(
        (*refds.values(), *duts.values()), pool=batch_pool
    )
    if batch_pool is not None and submitted:
        batch_pool.flush()
    p = cfg.parameters
    if artifacts is not None:
        def measure(device, n_traces):
            return artifacts.traces(cfg, device, n_traces, fleet_tag=fleet_tag)
    else:
        bench = MeasurementBench(
            Oscilloscope(cfg.noise, cfg.adc),
            key=measurement_base_key(cfg, fleet_tag),
        )
        measure = bench.measure
    t_duts = {name: measure(duts[name], p.n2) for name in DUT_ORDER}
    verifier = WatermarkVerifier(
        parameters=p,
        distinguishers=cfg.distinguishers,
        single_reference=cfg.single_reference,
    )
    analysis_rng = np.random.default_rng(cfg.analysis_seed)
    reports: Dict[str, VerificationReport] = {}
    for ref_name in REF_ORDER:
        t_ref = measure(refds[ref_name], p.n1)
        reports[ref_name] = verifier.identify(t_ref, t_duts, rng=analysis_rng)
    outcome = CampaignOutcome(config=cfg, reports=reports)
    if artifacts is not None:
        artifacts.remember_outcome(cfg, fleet_tag, outcome)
    return outcome


def repeated_accuracy(
    base_config: Optional[CampaignConfig] = None,
    n_repeats: int = 5,
    distinguisher_names: Sequence[str] = ("higher-mean", "lower-variance"),
    artifacts: Optional[ArtifactCache] = None,
) -> Dict[str, float]:
    """Identification accuracy over repeated campaigns (E10).

    Re-seeds measurement and analysis per repeat while keeping the same
    manufactured fleet, i.e. repeats the lab session on the same chips:
    the devices are built once (through ``artifacts`` when given, so a
    whole study — or several studies on the same base config — shares
    one fleet and its simulated waveforms) and passed to every
    :func:`run_campaign`.  Each repeat's measurement seed differs, so
    trace acquisition is per-repeat by design; only fleet-tier work is
    shared.
    """
    if n_repeats <= 0:
        raise ValueError("n_repeats must be positive")
    cfg = base_config if base_config is not None else CampaignConfig()
    if artifacts is not None:
        fleet = artifacts.fleet(cfg, "none", lambda: manufacture_fleet(cfg))
    else:
        fleet = manufacture_fleet(cfg)
    totals = {name: 0.0 for name in distinguisher_names}
    for repeat in range(n_repeats):
        repeat_cfg = replace(
            cfg,
            measurement_seed=cfg.measurement_seed + 1000 * (repeat + 1),
            analysis_seed=cfg.analysis_seed + 1000 * (repeat + 1),
        )
        outcome = run_campaign(repeat_cfg, fleet=fleet, artifacts=artifacts)
        for name in distinguisher_names:
            totals[name] += outcome.accuracy(name)
    return {name: total / n_repeats for name, total in totals.items()}


__all__ = [
    "CampaignConfig",
    "CampaignOutcome",
    "apply_config_overrides",
    "build_campaign_fleet",
    "manufacture_fleet",
    "run_campaign",
    "repeated_accuracy",
    "DUT_ORDER",
    "REF_ORDER",
    "DUT_CONTENTS",
    "EXPECTED_MATCHES",
]
