"""I/O and clock-distribution components.

Output pads drive off-chip capacitance an order of magnitude larger
than internal nodes, so the 8-bit output ``H`` of the leakage component
is a loud, key-dependent contributor to the power trace.  The clock
tree contributes a large, data-independent pulse every cycle — the
common-mode component shared by every device, which is why even
unrelated IPs show non-zero correlation in the paper's Fig. 4.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hdl.component import (
    ActivityEvent,
    CombinationalComponent,
    Component,
    KIND_CLOCK,
    KIND_IO,
)
from repro.hdl.wires import Wire


class OutputPort(CombinationalComponent):
    """Output pads mirroring an internal wire to the outside world."""

    def __init__(self, name: str, source: Wire):
        super().__init__(name)
        self.source = source

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.source,)

    def evaluate(self) -> None:
        # Pads simply follow their source wire; no internal wire to drive.
        return None

    def activity(self) -> List[ActivityEvent]:
        return [ActivityEvent(self.name, KIND_IO, float(self.source.toggles()))]

    def activity_kinds(self):
        return (KIND_IO,)


class InputPort(CombinationalComponent):
    """Input pads driving an internal wire from an external stimulus.

    The stimulus is a Python callable of the cycle index; the paper's
    designs are input-independent, so the default stimulus is constant.
    """

    def __init__(self, name: str, target: Wire, stimulus=None):
        super().__init__(name)
        self.target = target
        self.stimulus = stimulus if stimulus is not None else (lambda cycle: 0)
        self._cycle = 0

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.target,)

    def reset(self) -> None:
        self._cycle = 0

    def advance_cycle(self) -> None:
        """Move to the next stimulus cycle (called by the simulator)."""
        self._cycle += 1

    def evaluate(self) -> None:
        self.target.drive(self.stimulus(self._cycle))

    def activity(self) -> List[ActivityEvent]:
        return [ActivityEvent(self.name, KIND_IO, float(self.target.toggles()))]

    def activity_kinds(self):
        return (KIND_IO,)


class ClockTree(Component):
    """The clock-distribution network.

    Every cycle the clock tree charges and discharges its full buffer
    capacitance regardless of data, contributing ``load`` units of
    activity.  ``load`` scales with how many flip-flops the design
    clocks.
    """

    def __init__(self, name: str, load: float):
        super().__init__(name)
        if load < 0:
            raise ValueError(f"{name}: clock load must be non-negative")
        self.load = load

    def activity(self) -> List[ActivityEvent]:
        return [ActivityEvent(self.name, KIND_CLOCK, float(self.load))]

    def activity_kinds(self):
        return (KIND_CLOCK,)
