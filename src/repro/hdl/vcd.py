"""Value-change-dump (VCD) export of simulation runs.

Dumps the values of selected wires over a simulation into the standard
VCD format readable by GTKWave and every other waveform viewer —
indispensable when debugging a watermarked netlist.  The recorder
re-runs the netlist with the same semantics as
:class:`~repro.hdl.simulator.Simulator` and snapshots the wires after
each settled cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hdl.io import InputPort
from repro.hdl.netlist import Netlist

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _vcd_identifier(index: int) -> str:
    """Short unique identifier for signal ``index`` (base-94 digits)."""
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = []
    while True:
        digits.append(_ID_CHARS[index % len(_ID_CHARS)])
        index //= len(_ID_CHARS)
        if index == 0:
            break
    return "".join(digits)


def _binary(value: int, width: int) -> str:
    return format(value, f"0{width}b")


def record_vcd(
    netlist: Netlist,
    cycles: int,
    wire_names: Optional[Sequence[str]] = None,
    timescale: str = "1ns",
    clock_period: int = 10,
) -> str:
    """Simulate ``cycles`` clock periods and return the VCD text.

    ``wire_names`` selects the dumped wires (default: all).  Each cycle
    occupies ``clock_period`` time units; values change on the cycle
    boundary.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    netlist.validate()
    names = list(wire_names) if wire_names is not None else sorted(netlist.wires)
    for name in names:
        if name not in netlist.wires:
            raise KeyError(f"no wire named {name!r} in netlist {netlist.name!r}")
    wires = [netlist.wires[name] for name in names]
    identifiers = {name: _vcd_identifier(i) for i, name in enumerate(names)}

    header: List[str] = [
        "$date repro.hdl.vcd $end",
        f"$timescale {timescale} $end",
        f"$scope module {netlist.name} $end",
    ]
    for name, wire in zip(names, wires):
        header.append(
            f"$var wire {wire.width} {identifiers[name]} {name} $end"
        )
    header.append("$upscope $end")
    header.append("$enddefinitions $end")

    netlist.reset()
    body: List[str] = ["#0", "$dumpvars"]
    last_values: Dict[str, int] = {}
    for name, wire in zip(names, wires):
        body.append(f"b{_binary(wire.value, wire.width)} {identifiers[name]}")
        last_values[name] = wire.value
    body.append("$end")

    comb_order = netlist.combinational_order()
    sequential = netlist.sequential_components
    input_ports = [c for c in netlist.components if isinstance(c, InputPort)]

    for cycle in range(cycles):
        for wire in netlist.wires.values():
            wire.latch_previous()
        for register in sequential:
            register.capture()
        for register in sequential:
            register.commit()
        for port in input_ports:
            port.advance_cycle()
        for component in comb_order:
            component.evaluate()

        changes: List[str] = []
        for name, wire in zip(names, wires):
            if wire.value != last_values[name]:
                changes.append(
                    f"b{_binary(wire.value, wire.width)} {identifiers[name]}"
                )
                last_values[name] = wire.value
        if changes:
            body.append(f"#{(cycle + 1) * clock_period}")
            body.extend(changes)

    body.append(f"#{(cycles + 1) * clock_period}")
    return "\n".join(header + body) + "\n"


def write_vcd(
    netlist: Netlist,
    cycles: int,
    path: str,
    wire_names: Optional[Sequence[str]] = None,
) -> None:
    """Simulate and write the VCD to ``path``."""
    text = record_vcd(netlist, cycles, wire_names)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(text)
