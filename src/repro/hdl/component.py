"""Base classes for netlist components.

The substrate distinguishes combinational components (outputs are a
pure function of the inputs, re-evaluated every cycle) from sequential
components (state elements updated at the clock edge).  Every component
reports its per-cycle switching activity as a list of
:class:`ActivityEvent` records, tagged with an *activity kind* that the
power model later maps to a weight (registers, combinational logic,
RAM ports and I/O pads have very different switched capacitance on a
real die).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.hdl.wires import Wire

#: Activity kinds understood by the power model.
KIND_REGISTER = "register"
KIND_COMB = "comb"
KIND_RAM = "ram"
KIND_IO = "io"
KIND_CLOCK = "clock"

ACTIVITY_KINDS = (KIND_REGISTER, KIND_COMB, KIND_RAM, KIND_IO, KIND_CLOCK)


@dataclass(frozen=True)
class ActivityEvent:
    """One switching-activity contribution for the current cycle.

    ``amount`` is a (possibly fractional) toggle count — e.g. the
    Hamming distance of a register bank between consecutive cycles, or
    a glitch-model estimate for a combinational block.
    """

    component: str
    kind: str
    amount: float

    def __post_init__(self) -> None:
        if self.kind not in ACTIVITY_KINDS:
            raise ValueError(f"unknown activity kind {self.kind!r}")
        if self.amount < 0:
            raise ValueError(f"activity amount must be non-negative, got {self.amount}")


class Component:
    """Common behaviour for all netlist components."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("component name must be non-empty")
        self.name = name
        #: Bumped by :meth:`invalidate_compiled` whenever the component
        #: mutates structure or tables after construction; compiled
        #: programs check the netlist-wide sum before executing.
        self._compile_generation = 0

    def invalidate_compiled(self) -> None:
        """Mark any compiled program derived from this component stale.

        Call after mutating anything a compiled program bakes in
        (lookup tables, transition entries, reset values, wire
        connectivity).  Execution through a stale
        :class:`~repro.hdl.engine.CompiledNetlist` then raises
        :class:`~repro.hdl.engine.CompileError` instead of silently
        running the old program; re-compiling (or letting the
        :class:`~repro.hdl.simulator.Simulator` refresh itself) picks
        up the new state.
        """
        self._compile_generation += 1

    @property
    def input_wires(self) -> Sequence[Wire]:
        """Wires this component reads; used for topological ordering."""
        return ()

    @property
    def output_wires(self) -> Sequence[Wire]:
        """Wires this component drives; used for topological ordering."""
        return ()

    def reset(self) -> None:
        """Return the component to its power-on state."""

    def activity(self) -> List[ActivityEvent]:
        """Switching activity contributed during the current cycle."""
        return []

    def activity_kinds(self) -> Tuple[str, ...]:
        """Static structure of this component's activity channels.

        One entry per :class:`ActivityEvent` the component reports each
        cycle, in report order.  The compiled engine uses this to build
        the channel-index map once, without executing :meth:`activity`;
        the default derives it from a live :meth:`activity` call, which
        is correct for any component whose event list has a fixed shape.
        """
        return tuple(event.kind for event in self.activity())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CombinationalComponent(Component):
    """A component whose outputs are a pure function of its inputs."""

    def evaluate(self) -> None:
        """Recompute output wires from input wires."""
        raise NotImplementedError


class SequentialComponent(Component):
    """A clocked component with internal state.

    The simulator calls :meth:`capture` after all combinational logic
    has settled (sampling the D inputs) and then :meth:`commit` to
    expose the new state, modelling a single synchronous clock edge.
    """

    def capture(self) -> None:
        """Sample inputs at the clock edge (do not expose new state yet)."""
        raise NotImplementedError

    def commit(self) -> None:
        """Expose the state captured at the last clock edge."""
        raise NotImplementedError
