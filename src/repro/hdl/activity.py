"""Switching-activity traces recorded by the simulator.

An :class:`ActivityTrace` is a ``(n_cycles, n_channels)`` matrix of
toggle counts plus channel metadata ``(component name, activity kind)``.
It is the interface between the logic substrate and the power model:
on a real FPGA the oscilloscope integrates exactly these switching
events through the chip's capacitances and the power-delivery network.

The compiled engine (:mod:`repro.hdl.engine`) fixes the channel-index
map at compile time and fills whole matrix columns with vectorised
Hamming weights, so identical netlists always produce identical
channel tuples — which is what lets the fleet-level activity cache in
:mod:`repro.acquisition.device` share one trace object across many
devices.  Whether a trace came from the interpreted oracle, a scalar
compiled run or one lane of a batched
:func:`~repro.hdl.engine.run_batch` execution is unobservable by
construction: all three paths produce byte-identical matrices and
channel tuples, so anything keyed on trace content (activity caches,
artifact stores, sweep digests) may mix them freely.  Consumers must
treat traces as immutable; every accessor below returns a fresh array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.hdl.component import ACTIVITY_KINDS


@dataclass(frozen=True)
class Channel:
    """Identity of one activity channel."""

    component: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ACTIVITY_KINDS:
            raise ValueError(f"unknown activity kind {self.kind!r}")


class ActivityTrace:
    """Per-cycle, per-channel switching activity of one simulation run."""

    def __init__(self, channels: Sequence[Channel], matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"activity matrix must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] != len(channels):
            raise ValueError(
                f"matrix has {matrix.shape[1]} columns but "
                f"{len(channels)} channels were declared"
            )
        if np.any(matrix < 0):
            raise ValueError("activity counts must be non-negative")
        self.channels: Tuple[Channel, ...] = tuple(channels)
        self.matrix = matrix

    @property
    def n_cycles(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_channels(self) -> int:
        return self.matrix.shape[1]

    def channel_index(self, component: str) -> int:
        """Index of the (unique) channel belonging to ``component``."""
        for index, channel in enumerate(self.channels):
            if channel.component == component:
                return index
        raise KeyError(f"no activity channel for component {component!r}")

    def component_series(self, component: str) -> np.ndarray:
        """Per-cycle activity of one component."""
        return self.matrix[:, self.channel_index(component)].copy()

    def kind_series(self, kind: str) -> np.ndarray:
        """Per-cycle activity summed over all channels of one kind."""
        if kind not in ACTIVITY_KINDS:
            raise ValueError(f"unknown activity kind {kind!r}")
        columns = [i for i, c in enumerate(self.channels) if c.kind == kind]
        if not columns:
            return np.zeros(self.n_cycles)
        return self.matrix[:, columns].sum(axis=1)

    def total_series(self) -> np.ndarray:
        """Per-cycle activity summed over every channel (unweighted)."""
        return self.matrix.sum(axis=1)

    def weighted_series(self, weights: Sequence[float]) -> np.ndarray:
        """Per-cycle activity with one weight per channel."""
        weight_vector = np.asarray(weights, dtype=float)
        if weight_vector.shape != (self.n_channels,):
            raise ValueError(
                f"expected {self.n_channels} weights, got {weight_vector.shape}"
            )
        return self.matrix @ weight_vector

    def kinds(self) -> List[str]:
        """Distinct activity kinds present, in channel order."""
        seen: List[str] = []
        for channel in self.channels:
            if channel.kind not in seen:
                seen.append(channel.kind)
        return seen

    def __repr__(self) -> str:
        return f"ActivityTrace(cycles={self.n_cycles}, channels={self.n_channels})"
