"""Memory blocks: the synchronous ROM holding the AES SBox.

The paper implements the substitution table "in memory" with a 2^8-bit
footprint.  :class:`SyncROM` models an asynchronous-read ROM (the
registered output ``H`` of the leakage component is a separate
:class:`~repro.hdl.register.DRegister` in the netlist, as in Fig. 3 of
the paper).

RAM/ROM power on FPGAs is dominated by the address decoder and the
bit-line precharge, so the activity model charges:

* the address-bus toggles (decoder switching),
* the data-output toggles (bit lines and sense amplifiers),
* a constant per-access precharge term.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hdl.component import ActivityEvent, CombinationalComponent, KIND_RAM
from repro.hdl.wires import Wire, hamming_distance, mask


class SyncROM(CombinationalComponent):
    """A read-only memory with combinational read."""

    def __init__(
        self,
        name: str,
        address: Wire,
        data: Wire,
        contents: Sequence[int],
        precharge_activity: float = 1.0,
    ):
        super().__init__(name)
        expected_entries = 1 << address.width
        if len(contents) != expected_entries:
            raise ValueError(
                f"{name}: ROM needs {expected_entries} entries for a "
                f"{address.width}-bit address, got {len(contents)}"
            )
        data_mask = mask(data.width)
        for index, word in enumerate(contents):
            if not 0 <= word <= data_mask:
                raise ValueError(
                    f"{name}: entry {index} = {word} does not fit in "
                    f"{data.width} bits"
                )
        if precharge_activity < 0:
            raise ValueError(f"{name}: precharge activity must be non-negative")
        self.address = address
        self.data = data
        self.contents = tuple(contents)
        self.precharge_activity = precharge_activity

    @property
    def input_wires(self) -> Sequence[Wire]:
        return (self.address,)

    @property
    def output_wires(self) -> Sequence[Wire]:
        return (self.data,)

    def evaluate(self) -> None:
        self.data.drive(self.contents[self.address.value])

    def activity(self) -> List[ActivityEvent]:
        decoder_toggles = hamming_distance(self.address.value, self.address.previous)
        bitline_toggles = self.data.toggles()
        amount = decoder_toggles + bitline_toggles + self.precharge_activity
        return [ActivityEvent(self.name, KIND_RAM, float(amount))]

    def activity_kinds(self):
        return (KIND_RAM,)
