"""Structural Verilog export (the write half of the HDL frontend).

The netlists in this library are behavioural Python objects, but a
downstream user of the watermarking scheme ultimately wants RTL they
can synthesise onto the FPGA the paper used.  This module emits
synthesisable Verilog-2001 for every component type the substrate
provides; the generated module has a clock, an active-high synchronous
reset and the leakage component's pads as outputs.

The export is structural and deliberately boring: one ``always`` block
per register, one ``assign`` per combinational block, a ``case`` table
for ROMs and transition tables.  Component names ride in trailing
``// <name>`` comments and clock-tree loads in ``// repro:`` pragma
comments, which makes the emitted text *round-trippable*:
:func:`repro.hdl.verilog_parse.parse_verilog` reads this exact subset
back into a validated :class:`~repro.hdl.netlist.Netlist`, and for
every paper design ``parse_verilog(export_verilog(n))`` simulates
bit-identically to ``n`` (state and activity) on all three engine
tiers — the invariant pinned in ``tests/test_verilog_parse.py``.
Running the text through a real tool (Icarus, Verilator, vendor flows)
still works; the constructs used are the plainest possible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.component import Component
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister


class VerilogExportError(Exception):
    """A component has no Verilog translation."""


def _identifier(name: str) -> str:
    """Sanitise a wire/component name into a Verilog identifier."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_anon"


class _IdentifierScope:
    """Collision-free name → identifier mapping for one module.

    Sanitisation is lossy (``a.b`` and ``a_b`` both clean to ``a_b``),
    which used to silently alias two distinct wires in the emitted
    text.  The scope detects the collision and uniquifies
    deterministically in first-use order (``a_b``, ``a_b_2``, ...), so
    equal names always map to equal identifiers and distinct names
    never collide.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, str] = {}
        self._taken: set = set()

    def __call__(self, name: str) -> str:
        mapped = self._by_name.get(name)
        if mapped is not None:
            return mapped
        base = _identifier(name)
        candidate = base
        suffix = 1
        while candidate in self._taken:
            suffix += 1
            candidate = f"{base}_{suffix}"
        self._by_name[name] = candidate
        self._taken.add(candidate)
        return candidate


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _emit_register(component: DRegister, ident: _IdentifierScope) -> List[str]:
    d = ident(component.d.name)
    q = ident(component.q.name)
    return [
        f"  always @(posedge clk) begin // {component.name}",
        "    if (rst)",
        f"      {q} <= {component.width}'d{component.reset_value};",
        "    else",
        f"      {q} <= {d};",
        "  end",
    ]


def _emit_case_table(
    selector: str, target: str, table: Dict[int, int], width: int, name: str
) -> List[str]:
    lines = [f"  always @(*) begin // {name}", f"    case ({selector})"]
    for key in sorted(table):
        lines.append(f"      {width}'d{key}: {target} = {width}'d{table[key]};")
    lines.append(f"      default: {target} = {width}'d0;")
    lines.append("    endcase")
    lines.append("  end")
    return lines


def _emit_rom(component: SyncROM, ident: _IdentifierScope) -> List[str]:
    address = ident(component.address.name)
    data = ident(component.data.name)
    data_width = component.data.width
    addr_width = component.address.width
    lines = [f"  always @(*) begin // {component.name} (ROM)", f"    case ({address})"]
    for index, word in enumerate(component.contents):
        lines.append(
            f"      {addr_width}'d{index}: {data} = "
            f"{data_width}'h{word:0{(data_width + 3) // 4}x};"
        )
    lines.append(f"      default: {data} = {data_width}'d0;")
    lines.append("    endcase")
    lines.append("  end")
    return lines


def _emit_component(component: Component, ident: _IdentifierScope) -> List[str]:
    if isinstance(component, DRegister):
        return _emit_register(component, ident)
    if isinstance(component, Constant):
        out = ident(component.output.name)
        return [
            f"  assign {out} = {component.output.width}'d{component.value}; "
            f"// {component.name}"
        ]
    if isinstance(component, XorArray):
        out = ident(component.output.name)
        a = ident(component.a.name)
        b = ident(component.b.name)
        return [f"  assign {out} = {a} ^ {b}; // {component.name}"]
    if isinstance(component, Incrementer):
        out = ident(component.output.name)
        a = ident(component.a.name)
        return [
            f"  assign {out} = {a} + {component.a.width}'d1; // {component.name}"
        ]
    if isinstance(component, BinaryToGray):
        out = ident(component.output.name)
        a = ident(component.a.name)
        return [f"  assign {out} = {a} ^ ({a} >> 1); // {component.name}"]
    if isinstance(component, GrayToBinary):
        out = ident(component.output.name)
        a = ident(component.a.name)
        width = component.a.width
        terms = " ^ ".join(f"({a} >> {shift})" for shift in range(width))
        return [f"  assign {out} = {terms}; // {component.name}"]
    if isinstance(component, Mux2):
        out = ident(component.output.name)
        return [
            f"  assign {out} = {ident(component.select.name)} ? "
            f"{ident(component.b.name)} : {ident(component.a.name)}; "
            f"// {component.name}"
        ]
    if isinstance(component, TransitionTable):
        return _emit_case_table(
            ident(component.state.name),
            ident(component.next_state.name),
            component.table,
            component.state.width,
            component.name,
        )
    if isinstance(component, SyncROM):
        return _emit_rom(component, ident)
    if isinstance(component, LookupLogic):
        # A generic Python function has no structural translation;
        # tabulate it when it has a single input of tractable width.
        if len(component.input_wires) == 1 and component.input_wires[0].width <= 16:
            wire = component.input_wires[0]
            table = {
                value: component.function(value) for value in range(1 << wire.width)
            }
            return _emit_case_table(
                ident(wire.name),
                ident(component.output.name),
                table,
                wire.width,
                component.name,
            )
        raise VerilogExportError(
            f"LookupLogic {component.name!r} is not tabulatable "
            "(multiple inputs or input wider than 16 bits)"
        )
    if isinstance(component, ClockTree):
        # No structural equivalent; a pragma comment carries the load so
        # the import frontend can reconstruct the component (and keep
        # the activity-channel order) on a round-trip.
        return [f"  // repro: clocktree {component.name} load={component.load!r}"]
    if isinstance(component, (OutputPort, InputPort)):
        return []  # handled at the port level
    raise VerilogExportError(
        f"no Verilog translation for component type {type(component).__name__}"
    )


def export_verilog(netlist: Netlist, module_name: Optional[str] = None) -> str:
    """Emit one synthesisable Verilog module for a netlist."""
    netlist.validate()
    name = _identifier(module_name if module_name is not None else netlist.name)
    ident = _IdentifierScope()

    registers = [c for c in netlist.components if isinstance(c, DRegister)]
    reg_wires = {id(c.q) for c in registers}
    output_ports = [c for c in netlist.components if isinstance(c, OutputPort)]
    input_ports = [c for c in netlist.components if isinstance(c, InputPort)]

    lines: List[str] = [
        f"// Generated by repro.hdl.verilog from netlist {netlist.name!r}",
        f"module {name} (",
    ]
    port_decls = ["  input  wire clk", "  input  wire rst"]
    for port in input_ports:
        port_decls.append(
            f"  input  wire {_range(port.target.width)}{ident(port.name + '_in')}"
        )
    for port in output_ports:
        port_decls.append(
            f"  output wire {_range(port.source.width)}"
            f"{ident(port.name + '_out')}"
        )
    lines.append(",\n".join(port_decls))
    lines.append(");")
    lines.append("")

    # Wire declarations: regs for register outputs and case-assigned
    # wires, plain wires for assign targets.
    case_targets = set()
    for component in netlist.components:
        if isinstance(component, (TransitionTable, SyncROM)):
            case_targets.add(id(component.output_wires[0]))
        if isinstance(component, LookupLogic):
            case_targets.add(id(component.output))
    for wire in netlist.wires.values():
        kind = "reg " if id(wire) in reg_wires or id(wire) in case_targets else "wire"
        lines.append(f"  {kind} {_range(wire.width)}{ident(wire.name)};")
    lines.append("")

    for port in input_ports:
        lines.append(
            f"  assign {ident(port.target.name)} = {ident(port.name + '_in')};"
        )
    if input_ports:
        lines.append("")
    for component in netlist.components:
        emitted = _emit_component(component, ident)
        if emitted:
            lines.extend(emitted)
            lines.append("")

    for port in output_ports:
        lines.append(
            f"  assign {ident(port.name + '_out')} = {ident(port.source.name)};"
        )
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def export_testbench(
    netlist: Netlist,
    module_name: Optional[str] = None,
    cycles: int = 256,
    clock_period: int = 10,
) -> str:
    """Emit a self-checking-free smoke testbench for the module.

    The testbench instantiates the exported module, drives the clock
    and a two-cycle reset, runs ``cycles`` clock periods and dumps a
    VCD — enough to eyeball the design in any Verilog simulator
    (Icarus, Verilator, the vendor tools).
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if clock_period <= 1:
        raise ValueError("clock_period must exceed 1")
    netlist.validate()
    name = _identifier(module_name if module_name is not None else netlist.name)
    # Same first-use order as export_verilog's port section, so the
    # testbench pin identifiers match the module's uniquified ports.
    ident = _IdentifierScope()
    output_ports = [c for c in netlist.components if isinstance(c, OutputPort)]
    input_ports = [c for c in netlist.components if isinstance(c, InputPort)]

    lines = [
        f"// Smoke testbench for {name}, generated by repro.hdl.verilog",
        "`timescale 1ns/1ps",
        f"module {name}_tb;",
        "  reg clk = 1'b0;",
        "  reg rst = 1'b1;",
    ]
    for port in input_ports:
        lines.append(
            f"  reg {_range(port.target.width)}{ident(port.name + '_in')} = 0;"
        )
    for port in output_ports:
        lines.append(
            f"  wire {_range(port.source.width)}{ident(port.name + '_out')};"
        )
    connections = ["    .clk(clk)", "    .rst(rst)"]
    for port in input_ports:
        pin = ident(port.name + "_in")
        connections.append(f"    .{pin}({pin})")
    for port in output_ports:
        pin = ident(port.name + "_out")
        connections.append(f"    .{pin}({pin})")
    lines.append(f"  {name} dut (")
    lines.append(",\n".join(connections))
    lines.append("  );")
    lines.append("")
    lines.append(f"  always #{clock_period // 2} clk = ~clk;")
    lines.append("")
    lines.append("  initial begin")
    lines.append(f'    $dumpfile("{name}_tb.vcd");')
    lines.append(f"    $dumpvars(0, {name}_tb);")
    lines.append(f"    repeat (2) @(posedge clk);")
    lines.append("    rst = 1'b0;")
    lines.append(f"    repeat ({cycles}) @(posedge clk);")
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)
