"""Structural Verilog export.

The netlists in this library are behavioural Python objects, but a
downstream user of the watermarking scheme ultimately wants RTL they
can synthesise onto the FPGA the paper used.  This module emits
synthesisable Verilog-2001 for every component type the substrate
provides; the generated module has a clock, an active-high synchronous
reset and the leakage component's pads as outputs.

The export is structural and deliberately boring: one ``always`` block
per register, one ``assign`` per combinational block, a ``case`` table
for ROMs and transition tables.  The test suite cross-checks the
emitted text, not a simulator — running it through a real tool is left
to the user, but the constructs used are the plainest possible.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.component import Component
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister


class VerilogExportError(Exception):
    """A component has no Verilog translation."""


def _identifier(name: str) -> str:
    """Sanitise a wire/component name into a Verilog identifier."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_anon"


def _range(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _emit_register(component: DRegister) -> List[str]:
    d = _identifier(component.d.name)
    q = _identifier(component.q.name)
    return [
        f"  always @(posedge clk) begin // {component.name}",
        "    if (rst)",
        f"      {q} <= {component.width}'d{component.reset_value};",
        "    else",
        f"      {q} <= {d};",
        "  end",
    ]


def _emit_case_table(
    selector: str, target: str, table: Dict[int, int], width: int, name: str
) -> List[str]:
    lines = [f"  always @(*) begin // {name}", f"    case ({selector})"]
    for key in sorted(table):
        lines.append(f"      {width}'d{key}: {target} = {width}'d{table[key]};")
    lines.append(f"      default: {target} = {width}'d0;")
    lines.append("    endcase")
    lines.append("  end")
    return lines


def _emit_rom(component: SyncROM) -> List[str]:
    address = _identifier(component.address.name)
    data = _identifier(component.data.name)
    data_width = component.data.width
    addr_width = component.address.width
    lines = [f"  always @(*) begin // {component.name} (ROM)", f"    case ({address})"]
    for index, word in enumerate(component.contents):
        lines.append(
            f"      {addr_width}'d{index}: {data} = "
            f"{data_width}'h{word:0{(data_width + 3) // 4}x};"
        )
    lines.append(f"      default: {data} = {data_width}'d0;")
    lines.append("    endcase")
    lines.append("  end")
    return lines


def _emit_component(component: Component) -> List[str]:
    if isinstance(component, DRegister):
        return _emit_register(component)
    if isinstance(component, Constant):
        out = _identifier(component.output.name)
        return [
            f"  assign {out} = {component.output.width}'d{component.value}; "
            f"// {component.name}"
        ]
    if isinstance(component, XorArray):
        out = _identifier(component.output.name)
        a = _identifier(component.a.name)
        b = _identifier(component.b.name)
        return [f"  assign {out} = {a} ^ {b}; // {component.name}"]
    if isinstance(component, Incrementer):
        out = _identifier(component.output.name)
        a = _identifier(component.a.name)
        return [
            f"  assign {out} = {a} + {component.a.width}'d1; // {component.name}"
        ]
    if isinstance(component, BinaryToGray):
        out = _identifier(component.output.name)
        a = _identifier(component.a.name)
        return [f"  assign {out} = {a} ^ ({a} >> 1); // {component.name}"]
    if isinstance(component, GrayToBinary):
        out = _identifier(component.output.name)
        a = _identifier(component.a.name)
        width = component.a.width
        terms = " ^ ".join(f"({a} >> {shift})" for shift in range(width))
        return [f"  assign {out} = {terms}; // {component.name}"]
    if isinstance(component, Mux2):
        out = _identifier(component.output.name)
        return [
            f"  assign {out} = {_identifier(component.select.name)} ? "
            f"{_identifier(component.b.name)} : {_identifier(component.a.name)}; "
            f"// {component.name}"
        ]
    if isinstance(component, TransitionTable):
        return _emit_case_table(
            _identifier(component.state.name),
            _identifier(component.next_state.name),
            component.table,
            component.state.width,
            component.name,
        )
    if isinstance(component, SyncROM):
        return _emit_rom(component)
    if isinstance(component, LookupLogic):
        # A generic Python function has no structural translation;
        # tabulate it when it has a single input of tractable width.
        if len(component.input_wires) == 1 and component.input_wires[0].width <= 16:
            wire = component.input_wires[0]
            table = {
                value: component.function(value) for value in range(1 << wire.width)
            }
            return _emit_case_table(
                _identifier(wire.name),
                _identifier(component.output.name),
                table,
                wire.width,
                component.name,
            )
        raise VerilogExportError(
            f"LookupLogic {component.name!r} is not tabulatable "
            "(multiple inputs or input wider than 16 bits)"
        )
    if isinstance(component, (ClockTree, OutputPort, InputPort)):
        return []  # handled at the port level / implicit
    raise VerilogExportError(
        f"no Verilog translation for component type {type(component).__name__}"
    )


def export_verilog(netlist: Netlist, module_name: str = None) -> str:
    """Emit one synthesisable Verilog module for a netlist."""
    netlist.validate()
    name = _identifier(module_name if module_name is not None else netlist.name)

    registers = [c for c in netlist.components if isinstance(c, DRegister)]
    reg_wires = {id(c.q) for c in registers}
    comb_driven = set()
    for component in netlist.components:
        if not isinstance(component, DRegister):
            for wire in component.output_wires:
                comb_driven.add(id(wire))
    output_ports = [c for c in netlist.components if isinstance(c, OutputPort)]
    input_ports = [c for c in netlist.components if isinstance(c, InputPort)]

    ports = ["clk", "rst"]
    for port in input_ports:
        ports.append(_identifier(f"{port.name}_in"))
    for port in output_ports:
        ports.append(_identifier(f"{port.name}_out"))

    lines: List[str] = [
        f"// Generated by repro.hdl.verilog from netlist {netlist.name!r}",
        f"module {name} (",
    ]
    port_decls = ["  input  wire clk", "  input  wire rst"]
    for port in input_ports:
        port_decls.append(
            f"  input  wire {_range(port.target.width)}{_identifier(port.name + '_in')}"
        )
    for port in output_ports:
        port_decls.append(
            f"  output wire {_range(port.source.width)}"
            f"{_identifier(port.name + '_out')}"
        )
    lines.append(",\n".join(port_decls))
    lines.append(");")
    lines.append("")

    # Wire declarations: regs for register outputs and case-assigned
    # wires, plain wires for assign targets.
    case_targets = set()
    for component in netlist.components:
        if isinstance(component, (TransitionTable, SyncROM)):
            case_targets.add(id(component.output_wires[0]))
        if isinstance(component, LookupLogic):
            case_targets.add(id(component.output))
    for wire in netlist.wires.values():
        kind = "reg " if id(wire) in reg_wires or id(wire) in case_targets else "wire"
        lines.append(f"  {kind} {_range(wire.width)}{_identifier(wire.name)};")
    lines.append("")

    for port in input_ports:
        lines.append(
            f"  assign {_identifier(port.target.name)} = "
            f"{_identifier(port.name + '_in')};"
        )
    if input_ports:
        lines.append("")
    for component in netlist.components:
        emitted = _emit_component(component)
        if emitted:
            lines.extend(emitted)
            lines.append("")

    for port in output_ports:
        lines.append(
            f"  assign {_identifier(port.name + '_out')} = "
            f"{_identifier(port.source.name)};"
        )
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def export_testbench(
    netlist: Netlist,
    module_name: str = None,
    cycles: int = 256,
    clock_period: int = 10,
) -> str:
    """Emit a self-checking-free smoke testbench for the module.

    The testbench instantiates the exported module, drives the clock
    and a two-cycle reset, runs ``cycles`` clock periods and dumps a
    VCD — enough to eyeball the design in any Verilog simulator
    (Icarus, Verilator, the vendor tools).
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if clock_period <= 1:
        raise ValueError("clock_period must exceed 1")
    netlist.validate()
    name = _identifier(module_name if module_name is not None else netlist.name)
    output_ports = [c for c in netlist.components if isinstance(c, OutputPort)]
    input_ports = [c for c in netlist.components if isinstance(c, InputPort)]

    lines = [
        f"// Smoke testbench for {name}, generated by repro.hdl.verilog",
        "`timescale 1ns/1ps",
        f"module {name}_tb;",
        "  reg clk = 1'b0;",
        "  reg rst = 1'b1;",
    ]
    for port in input_ports:
        lines.append(
            f"  reg {_range(port.target.width)}"
            f"{_identifier(port.name + '_in')} = 0;"
        )
    for port in output_ports:
        lines.append(
            f"  wire {_range(port.source.width)}{_identifier(port.name + '_out')};"
        )
    connections = ["    .clk(clk)", "    .rst(rst)"]
    for port in input_ports:
        pin = _identifier(port.name + "_in")
        connections.append(f"    .{pin}({pin})")
    for port in output_ports:
        pin = _identifier(port.name + "_out")
        connections.append(f"    .{pin}({pin})")
    lines.append(f"  {name} dut (")
    lines.append(",\n".join(connections))
    lines.append("  );")
    lines.append("")
    lines.append(f"  always #{clock_period // 2} clk = ~clk;")
    lines.append("")
    lines.append("  initial begin")
    lines.append(f'    $dumpfile("{name}_tb.vcd");')
    lines.append(f"    $dumpvars(0, {name}_tb);")
    lines.append(f"    repeat (2) @(posedge clk);")
    lines.append("    rst = 1'b0;")
    lines.append(f"    repeat ({cycles}) @(posedge clk);")
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)
