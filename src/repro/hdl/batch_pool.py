"""Cross-campaign batched execution: a shared pool of simulation requests.

:func:`~repro.hdl.engine.run_batch` (PR 4) executes N shape-compatible
netlists in one generated step loop, but every caller so far batches
only *its own* lanes: :func:`~repro.acquisition.device.prime_fleet_activity`
groups one fleet, one campaign at a time.  A scenario sweep runs many
campaigns back to back, so shape-compatible lanes from *different*
scenarios still execute in separate engine runs.

:class:`BatchPool` closes that gap.  It collects pending
``(simulator, cycles)`` requests from any number of callers —
campaigns, scenarios, whole sweep chunks — and defers execution until
a *flush*: one :func:`~repro.hdl.simulator.simulate_batch` call that
groups every pending lane by the engine's shape key **across campaign
boundaries** and executes each shape group in a single batched run
(unbatchable lanes fall back to the scalar path inside the same
flush).  Callers get a :class:`BatchFuture` back; resolving a pending
future forces a flush, so nothing ever deadlocks on an unflushed pool.

Flushes are size- and byte-budgeted (:class:`BatchPoolOptions`): a
submission that pushes the pool past ``max_lanes`` pending requests or
past ``max_bytes`` of estimated recorded-value tensors flushes
immediately, which bounds the memory of one batched execution no
matter how many scenarios feed the pool.

Callers decide *when* to drain, and the sweep executor exploits that
to overlap flushing with acquisition: a prefetch flushes only the
first scenario's lanes so its campaign starts measuring at once,
leaves the rest of the wave pending, and the first campaign whose
priming finds unresolved lanes drains the accumulated wave in one
cross-campaign flush (see
:func:`~repro.sweeps.executor._prefetch_into_pool`).  Because batch
boundaries never change trace bytes, that scheduling freedom is free.

**Invariant — pooling never changes trace bytes.**  The pool is pure
deferral plus grouping on top of :func:`simulate_batch`, whose results
are byte-identical to calling ``simulator.run`` in a loop (the
engine's batching invariant).  Pool on or off, batch boundaries moved
by budget flushes, lanes interleaved from many campaigns: every
consumer observes identical :class:`~repro.hdl.activity.ActivityTrace`
bytes, which is why sweep stores keep byte-identical digests for any
pool configuration (``tests/test_batch_pool.py``).

Error handling is all-or-nothing per flush: if any lane of a flush
raises (e.g. a transition table without an entry for a reached state),
the error propagates out of :meth:`BatchPool.flush` *and* is recorded
on every future of that flush, so a caller that polls its future later
sees the same exception instead of a silent gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.hdl.activity import ActivityTrace
from repro.hdl.simulator import Simulator, simulate_batch

#: Default cap on pending requests before a submission auto-flushes.
DEFAULT_MAX_LANES = 256

#: Default budget (bytes) of estimated recorded wire-value tensors a
#: single flush may execute: 256 MiB keeps even a wide pooled sweep
#: chunk comfortably inside a laptop-sized heap.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class BatchPoolOptions:
    """Picklable pool configuration (travels in sweep-worker payloads).

    ``max_lanes`` bounds how many pending requests accumulate before a
    submission triggers a flush; ``max_bytes`` bounds the estimated
    memory of the recorded value tensors of one flush.  Both budgets
    only move flush boundaries — results are byte-identical for any
    setting.
    """

    max_lanes: int = DEFAULT_MAX_LANES
    max_bytes: int = DEFAULT_MAX_BYTES

    def __post_init__(self) -> None:
        if self.max_lanes <= 0:
            raise ValueError("max_lanes must be positive")
        if self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive")


@dataclass
class BatchPoolStats:
    """Submission/flush accounting of one :class:`BatchPool`."""

    submitted: int = 0
    deduped: int = 0
    flushes: int = 0
    auto_flushes: int = 0
    flushed_lanes: int = 0


class BatchFuture:
    """Handle to one pooled simulation request.

    Resolves when the owning pool flushes; :meth:`result` on a pending
    future forces that flush.  ``add_done_callback`` registers a
    ``fn(trace)`` hook run on successful resolution (immediately when
    already resolved) — the fleet-activity layer uses it to install
    pooled traces into its caches the moment they exist.
    """

    __slots__ = ("_pool", "_trace", "_error", "_callbacks")

    def __init__(self, pool: "BatchPool"):
        self._pool = pool
        self._trace: Optional[ActivityTrace] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[[ActivityTrace], None]] = []

    def done(self) -> bool:
        """True once the request resolved (successfully or not)."""
        return self._trace is not None or self._error is not None

    def add_done_callback(self, fn: Callable[[ActivityTrace], None]) -> None:
        if self._trace is not None:
            fn(self._trace)
        elif self._error is None:
            self._callbacks.append(fn)

    def result(self) -> ActivityTrace:
        """The simulated activity trace (flushes the pool if pending)."""
        if not self.done():
            self._pool.flush()
        if self._error is not None:
            raise self._error
        assert self._trace is not None
        return self._trace

    def _resolve(self, trace: ActivityTrace) -> None:
        self._trace = trace
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(trace)

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._callbacks = []


class BatchPool:
    """Collects simulation requests and flushes them in shared batches.

    One pool instance is meant to span many campaigns: the sweep
    executor holds one per run (inline mode) or one per worker chunk
    (multiprocess mode) and threads it through
    :func:`~repro.experiments.runner.run_campaign` down to
    :func:`~repro.acquisition.device.prime_fleet_activity`.  All
    submissions simulate from reset — exactly what every activity /
    waveform consumer in the acquisition chain requests.
    """

    def __init__(self, options: Optional[BatchPoolOptions] = None):
        self.options = options if options is not None else BatchPoolOptions()
        self.stats = BatchPoolStats()
        self._pending: List[Tuple[Simulator, int, BatchFuture]] = []
        self._by_key: Dict[object, BatchFuture] = {}
        self._pending_bytes = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        """Estimated recorded-tensor bytes of the pending requests."""
        return self._pending_bytes

    @staticmethod
    def _estimate_bytes(simulator: Simulator, cycles: int) -> int:
        """Rough size of one lane's recorded wire-value matrix.

        The batched engine records ``(cycles + 1, n_wires)`` uint64
        values per lane; this deliberately ignores memoised early
        stops, so the budget errs on the safe (flush-earlier) side.
        """
        n_wires = max(len(simulator.netlist.wires), 1)
        return (cycles + 1) * n_wires * 8

    def submit(
        self,
        simulator: Simulator,
        cycles: int,
        key: Optional[object] = None,
    ) -> BatchFuture:
        """Enqueue one from-reset simulation request.

        ``key`` (optional) dedupes within the current flush window: a
        second submission with the same key — typically another
        campaign priming the same ``(structure, cycles)`` entry before
        the pool flushed — returns the first request's future instead
        of queueing a redundant lane.  Auto-flushes when the pending
        set exceeds the lane or byte budget.
        """
        cycles = int(cycles)
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if key is not None:
            existing = self._by_key.get(key)
            if existing is not None:
                self.stats.deduped += 1
                return existing
        future = BatchFuture(self)
        self._pending.append((simulator, cycles, future))
        self._pending_bytes += self._estimate_bytes(simulator, cycles)
        if key is not None:
            self._by_key[key] = future
        self.stats.submitted += 1
        if (
            len(self._pending) >= self.options.max_lanes
            or self._pending_bytes > self.options.max_bytes
        ):
            self.stats.auto_flushes += 1
            self.flush()
        return future

    def flush(self) -> int:
        """Execute every pending request in shared shape-grouped batches.

        Returns the number of lanes executed.  On any lane failure the
        whole flush fails: every pending future records the exception
        and it propagates to the caller.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        self._by_key.clear()
        self._pending_bytes = 0
        self.stats.flushes += 1
        self.stats.flushed_lanes += len(pending)
        simulators = [entry[0] for entry in pending]
        cycles = [entry[1] for entry in pending]
        try:
            traces = simulate_batch(simulators, cycles, reset=True)
        except BaseException as error:
            for _simulator, _cycles, future in pending:
                future._fail(error)
            raise
        for (_simulator, _cycles, future), trace in zip(pending, traces):
            future._resolve(trace)
        return len(pending)


__all__ = [
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_LANES",
    "BatchFuture",
    "BatchPool",
    "BatchPoolOptions",
    "BatchPoolStats",
]
