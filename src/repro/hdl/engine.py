"""Compiled netlist simulation engine (lower once, execute fast).

The interpreted simulation loop walks every wire and component object
once per clock cycle and allocates fresh ``ActivityEvent``/``Channel``
objects per cycle just to bucket toggle counts.  The compiled engine
instead *lowers* a validated :class:`~repro.hdl.netlist.Netlist` once
and then executes a flat program:

1. **Lowering** (:func:`compile_netlist`) — every wire gets a dense
   index and every component is translated into straight-line Python
   statements over local integer variables: ROMs, transition tables and
   (small) lookup logic become tuple indexing, Gray decode becomes an
   unrolled shift/XOR ladder, register capture/commit becomes a block of
   simultaneous assignments.  The statements are assembled in the
   netlist's topological order into one specialised step loop, compiled
   a single time with :func:`exec`.
2. **Execution** — the generated runner advances the whole design one
   clock per iteration, appending one settled wire-value row per cycle.
   Netlists without input ports are pure functions of their register
   state, so the runner also memoises rows: as soon as the design
   re-enters a previously seen state the remaining rows are tiled with
   NumPy instead of stepped.
3. **Activity** — switching activity is computed *after* the run as
   vectorised Hamming weights over the ``(cycles + 1, n_wires)`` value
   matrix, written column-by-column into the ``(cycles, n_channels)``
   activity matrix.  The channel-index map is computed once at compile
   time; no per-cycle objects are allocated.

The compiled output is bit-identical to the interpreted oracle
(``tests/test_engine.py`` proves it for every paper design).  Lowering
additionally yields a *structural fingerprint* — a digest of the wire
table, component graph and all lowered truth tables — which
:mod:`repro.acquisition.device` uses to share activity traces across a
fleet of devices manufactured from the same IP.

Netlists containing constructs the lowering pass cannot prove
equivalent (custom component classes, wires outside the netlist,
extremely wide buses) raise :class:`CompileError`; the
:class:`~repro.hdl.simulator.Simulator` front-end then falls back to
the interpreted reference engine automatically.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hdl.activity import ActivityTrace, Channel
from repro.hdl.combinational import (
    BinaryToGray,
    Constant,
    GrayToBinary,
    Incrementer,
    LookupLogic,
    Mux2,
    TransitionTable,
    XorArray,
)
from repro.hdl.io import ClockTree, InputPort, OutputPort
from repro.hdl.memory import SyncROM
from repro.hdl.netlist import Netlist
from repro.hdl.register import DRegister
from repro.hdl.wires import Wire, mask

#: Lookup logic whose concatenated input bus is at most this wide is
#: exhaustively enumerated into a flat table at compile time.
MAX_TABLE_BITS = 16

#: Widest bus the int64-based activity vectorisation supports.
MAX_WIRE_WIDTH = 63

#: Runs at least this long use the state-memoising runner; shorter runs
#: skip the per-cycle dict bookkeeping (a design's period is rarely
#: shorter than a few hundred cycles, so short runs cannot amortise it).
MEMO_MIN_CYCLES = 512


class CompileError(Exception):
    """The netlist contains a construct the lowering pass cannot prove
    equivalent to the interpreted semantics."""


#: Process-wide cache of generated step programs keyed on the
#: structural fingerprint.  Two netlists with the same fingerprint
#: lower to byte-identical source over identical wire indices and
#: value-equal bound constants, so the exec'd ``_settle`` / ``_run`` /
#: ``_run_memo`` functions can be shared: a fleet of N devices
#: manufactured from the same IP compiles its program exactly once.
_PROGRAM_CACHE: "OrderedDict[str, Tuple[str, Callable, Callable, Callable]]" = (
    OrderedDict()
)

#: Upper bound on distinct cached programs (LRU eviction).
PROGRAM_CACHE_MAX = 128


def clear_program_cache() -> None:
    """Drop every shared compiled program (mainly for tests)."""
    _PROGRAM_CACHE.clear()


def program_cache_size() -> int:
    """Number of distinct netlist structures with a cached program."""
    return len(_PROGRAM_CACHE)


if hasattr(np, "bitwise_count"):
    def _popcount(values: np.ndarray) -> np.ndarray:
        return np.bitwise_count(values)
else:  # pragma: no cover - NumPy < 2.0
    def _popcount(values: np.ndarray) -> np.ndarray:
        x = values.astype(np.uint64)
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (x * np.uint64(0x0101010101010101)) >> np.uint64(56)


class _Lowering:
    """Builds the generated source, namespace and metadata for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.wires: List[Wire] = list(netlist.wires.values())
        self.index: Dict[int, int] = {id(w): i for i, w in enumerate(self.wires)}
        for wire in self.wires:
            if wire.width > MAX_WIRE_WIDTH:
                raise CompileError(
                    f"wire {wire.name!r} is {wire.width} bits wide; the "
                    f"compiled engine supports at most {MAX_WIRE_WIDTH}"
                )
        self.namespace: Dict[str, object] = {}
        self.fingerprintable = True
        self.records: List[tuple] = [
            ("wires", tuple((w.name, w.width, w._initial) for w in self.wires))
        ]
        self.registers: List[DRegister] = []
        self.ports: List[InputPort] = []
        self.channels: List[Channel] = []
        self.activity_specs: List[tuple] = []
        self._lookup_codegen: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._counter = 0

    def wire_index(self, wire: Wire) -> int:
        key = id(wire)
        if key not in self.index:
            raise CompileError(
                f"component references wire {wire.name!r} that is not "
                f"registered in netlist {self.netlist.name!r}"
            )
        return self.index[key]

    def bind(self, prefix: str, value: object) -> str:
        """Place a constant object into the exec namespace."""
        name = f"_{prefix}{self._counter}"
        self._counter += 1
        self.namespace[name] = value
        return name

    def lower(self) -> None:
        """Index wires, lower components, derive channels + fingerprint.

        Source assembly (:meth:`generate_program`) is deferred until an
        execution is actually requested: a fleet-cache hit only needs
        the fingerprint, not a runnable program.
        """
        for component in self.netlist.components:
            self._lower_component(component)

    # -- per-component lowering -------------------------------------------

    def _lower_component(self, component) -> None:
        kind = type(component)
        if kind is DRegister:
            self._lower_register(component)
        elif kind is Constant:
            self.records.append(
                ("Constant", component.name, self.wire_index(component.output),
                 component.value)
            )
        elif kind is XorArray:
            a, b = self.wire_index(component.a), self.wire_index(component.b)
            out = self.wire_index(component.output)
            self.records.append(("XorArray", component.name, a, b, out))
            self._channel(component, ("out", out))
        elif kind is Incrementer:
            a = self.wire_index(component.a)
            out = self.wire_index(component.output)
            self.records.append(("Incrementer", component.name, a, out))
            self._channel(component, ("inc", a, out, component.a.width))
        elif kind is BinaryToGray:
            a = self.wire_index(component.a)
            out = self.wire_index(component.output)
            self.records.append(("BinaryToGray", component.name, a, out))
            self._channel(component, ("in_out", a, out))
        elif kind is GrayToBinary:
            a = self.wire_index(component.a)
            out = self.wire_index(component.output)
            self.records.append(("GrayToBinary", component.name, a, out))
            self._channel(component, ("in_out", a, out))
        elif kind is Mux2:
            s = self.wire_index(component.select)
            a, b = self.wire_index(component.a), self.wire_index(component.b)
            out = self.wire_index(component.output)
            self.records.append(("Mux2", component.name, s, a, b, out))
            self._channel(component, ("out", out))
        elif kind is LookupLogic:
            self._lower_lookup(component)
        elif kind is TransitionTable:
            self._lower_transition_table(component)
        elif kind is SyncROM:
            addr = self.wire_index(component.address)
            data = self.wire_index(component.data)
            self.records.append(
                ("SyncROM", component.name, addr, data, component.contents,
                 component.precharge_activity)
            )
            self._channel(
                component, ("rom", addr, data, component.precharge_activity)
            )
        elif kind is InputPort:
            target = self.wire_index(component.target)
            self.ports.append(component)
            # Stimulus callables have no canonical description, so a
            # netlist with input ports is never fingerprintable.
            self.fingerprintable = False
            self._channel(component, ("io", target))
        elif kind is OutputPort:
            source = self.wire_index(component.source)
            self.records.append(("OutputPort", component.name, source))
            self._channel(component, ("io", source))
        elif kind is ClockTree:
            self.records.append(("ClockTree", component.name, component.load))
            self._channel(component, ("clock", component.load))
        else:
            raise CompileError(
                f"component {component.name!r} has unsupported type "
                f"{kind.__name__!r}"
            )

    def _channel(self, component, spec: tuple) -> None:
        kinds = component.activity_kinds()
        if len(kinds) != 1:  # pragma: no cover - all stock types emit one
            raise CompileError(
                f"component {component.name!r} reports {len(kinds)} activity "
                "channels; the compiled engine lowers exactly one"
            )
        self.channels.append(Channel(component.name, kinds[0]))
        self.activity_specs.append(spec)

    def _lower_register(self, register: DRegister) -> None:
        d = self.wire_index(register.d)
        q = self.wire_index(register.q)
        self.registers.append(register)
        self.records.append(
            ("DRegister", register.name, d, q, register.reset_value)
        )
        self._channel(register, ("reg", q))

    def _lower_lookup(self, logic: LookupLogic) -> None:
        in_idx = tuple(self.wire_index(w) for w in logic.input_wires)
        out = self.wire_index(logic.output)
        table = self._tablefy(logic)
        if table is not None:
            self.records.append(
                ("LookupLogic", logic.name, in_idx, out, logic.glitch_factor,
                 table)
            )
        else:
            self.fingerprintable = False
        self._channel(logic, ("lut", in_idx, out, logic.glitch_factor))
        self._lookup_codegen[id(logic)] = table

    def _tablefy(self, logic: LookupLogic) -> Optional[Tuple[int, ...]]:
        """Exhaustively enumerate a lookup function into a flat table.

        Returns ``None`` when the input bus is too wide or the callable
        raises / returns out-of-range values somewhere in the domain (a
        partial function only defined on reachable codes); the lowered
        program then keeps calling the original function per cycle.
        """
        widths = [w.width for w in logic.input_wires]
        total = sum(widths)
        if total > MAX_TABLE_BITS:
            return None
        out_mask = mask(logic.output.width)
        table: List[int] = []
        try:
            for packed in range(1 << total):
                values = []
                shift = total
                for width in widths:
                    shift -= width
                    values.append((packed >> shift) & mask(width))
                result = logic.function(*values)
                result_int = int(result)
                if result_int != result or not 0 <= result_int <= out_mask:
                    return None
                table.append(result_int)
        except Exception:
            return None
        return tuple(table)

    def _lower_transition_table(self, component: TransitionTable) -> None:
        state = self.wire_index(component.state)
        nxt = self.wire_index(component.next_state)
        next_mask = mask(component.next_state.width)
        for code, target in component.table.items():
            if not 0 <= target <= next_mask:
                raise CompileError(
                    f"{component.name}: transition target {target} does not "
                    f"fit in {component.next_state.width} bits"
                )
            if code < 0:
                raise CompileError(
                    f"{component.name}: negative state code {code}"
                )
        self.records.append(
            ("TransitionTable", component.name, state, nxt,
             tuple(sorted(component.table.items())))
        )
        self._channel(component, ("tt", state, nxt))

    # -- source assembly ---------------------------------------------------

    def _comb_statement(self, component, stim_expr: str) -> List[str]:
        """Statements settling one combinational component."""
        w = lambda i: f"w{i}"  # noqa: E731 - tiny local shorthand
        kind = type(component)
        if kind is Constant:
            return [f"{w(self.wire_index(component.output))} = {component.value}"]
        if kind is XorArray:
            return [
                f"{w(self.wire_index(component.output))} = "
                f"{w(self.wire_index(component.a))} ^ {w(self.wire_index(component.b))}"
            ]
        if kind is Incrementer:
            return [
                f"{w(self.wire_index(component.output))} = "
                f"({w(self.wire_index(component.a))} + 1) & {mask(component.a.width)}"
            ]
        if kind is BinaryToGray:
            a = w(self.wire_index(component.a))
            return [f"{w(self.wire_index(component.output))} = {a} ^ ({a} >> 1)"]
        if kind is GrayToBinary:
            lines = [f"_x = {w(self.wire_index(component.a))}"]
            shift = 1
            while shift < component.a.width:
                lines.append(f"_x ^= _x >> {shift}")
                shift <<= 1
            lines.append(f"{w(self.wire_index(component.output))} = _x")
            return lines
        if kind is Mux2:
            return [
                f"{w(self.wire_index(component.output))} = "
                f"{w(self.wire_index(component.b))} if {w(self.wire_index(component.select))} "
                f"else {w(self.wire_index(component.a))}"
            ]
        if kind is LookupLogic:
            return self._lookup_statement(component)
        if kind is TransitionTable:
            return self._transition_statement(component)
        if kind is SyncROM:
            name = self.bind("T", component.contents)
            return [
                f"{w(self.wire_index(component.data))} = "
                f"{name}[{w(self.wire_index(component.address))}]"
            ]
        if kind is InputPort:
            name = self.bind("S", component.stimulus)
            target = component.target
            out = w(self.wire_index(target))
            return [
                f"{out} = {name}({stim_expr})",
                f"if not 0 <= {out} <= {mask(target.width)}: "
                f"raise ValueError('wire %r: value %s does not fit in "
                f"{target.width} bits' % ({target.name!r}, {out}))",
            ]
        if kind is OutputPort:
            return []
        raise CompileError(  # pragma: no cover - guarded in _lower_component
            f"no statement lowering for {kind.__name__}"
        )

    def _lookup_statement(self, logic: LookupLogic) -> List[str]:
        w = lambda i: f"w{i}"  # noqa: E731
        out_idx = self.wire_index(logic.output)
        table = self._lookup_codegen[id(logic)]
        in_idx = [self.wire_index(wire) for wire in logic.input_wires]
        if table is not None:
            name = self.bind("T", table)
            widths = [wire.width for wire in logic.input_wires]
            shift = sum(widths)
            parts = []
            for idx, width in zip(in_idx, widths):
                shift -= width
                parts.append(f"({w(idx)} << {shift})" if shift else w(idx))
            return [f"{w(out_idx)} = {name}[{' | '.join(parts)}]"]
        name = self.bind("F", logic.function)
        args = ", ".join(w(i) for i in in_idx)
        out = w(out_idx)
        out_wire = logic.output
        return [
            f"{out} = {name}({args})",
            f"if not 0 <= {out} <= {mask(out_wire.width)}: "
            f"raise ValueError('wire %r: value %s does not fit in "
            f"{out_wire.width} bits' % ({out_wire.name!r}, {out}))",
        ]

    def _transition_statement(self, component: TransitionTable) -> List[str]:
        w = lambda i: f"w{i}"  # noqa: E731
        state = w(self.wire_index(component.state))
        out = w(self.wire_index(component.next_state))
        name = self.bind("D", dict(component.table))
        return [
            f"{out} = {name}.get({state}, -1)",
            f"if {out} < 0: raise KeyError('%s: state code %s has no "
            f"transition entry' % ({component.name!r}, format({state}, '#x')))",
        ]

    def generate_program(self) -> None:
        """Assemble and exec ``_settle`` / ``_run`` / ``_run_memo``."""
        order = self.netlist.combinational_order()
        n = len(self.wires)
        names = [f"w{i}" for i in range(n)]
        unpack = ", ".join(names) + ("," if names else "")
        row = "(" + ", ".join(names) + ("," if names else "") + ")"

        port_slot = {id(port): i for i, port in enumerate(self.ports)}
        settle_body: List[str] = []
        loop_body: List[str] = []
        for component in order:
            settle_body.extend(self._comb_statement(component, "0"))
            # Constants stay in the loop body too: the interpreted oracle
            # drives them every cycle, which matters for the first cycle
            # of a never-reset netlist (previous value is the power-on
            # initial, not the constant).
            if type(component) is InputPort:
                stim_expr = f"_t + 1 + _off[{port_slot[id(component)]}]"
            else:
                stim_expr = "0"
            loop_body.extend(self._comb_statement(component, stim_expr))

        capture = [
            f"_c{i} = w{self.wire_index(reg.d)}"
            for i, reg in enumerate(self.registers)
        ]
        commit = [
            f"w{self.wire_index(reg.q)} = _c{i}"
            for i, reg in enumerate(self.registers)
        ]

        def indent(lines: Sequence[str], level: int) -> str:
            pad = "    " * level
            return "\n".join(pad + line for line in lines) if lines else ""

        step = "\n".join(
            part for part in (
                indent(capture, 2), indent(commit, 2), indent(loop_body, 2)
            ) if part
        )
        settle = indent(settle_body, 1) or "    pass"
        unpack_line = f"    {unpack} = _v\n" if names else ""
        unpack_run = f"    {unpack} = _init\n" if names else ""

        source = (
            f"def _settle(_v):\n"
            f"{unpack_line}"
            f"{settle}\n"
            f"    return {row}\n"
            f"\n"
            f"def _run(_cycles, _init, _off):\n"
            f"    _rows = [_init]\n"
            f"    _ap = _rows.append\n"
            f"{unpack_run}"
            f"    for _t in range(_cycles):\n"
            f"{step}\n"
            f"        _ap({row})\n"
            f"    return _rows, None\n"
            f"\n"
            f"def _run_memo(_cycles, _init, _off):\n"
            f"    _rows = [_init]\n"
            f"    _ap = _rows.append\n"
            f"    _seen = {{_init: 0}}\n"
            f"{unpack_run}"
            f"    for _t in range(_cycles):\n"
            f"{step}\n"
            f"        _r = {row}\n"
            f"        _j = _seen.get(_r)\n"
            f"        if _j is not None:\n"
            f"            return _rows, _j\n"
            f"        _seen[_r] = len(_rows)\n"
            f"        _ap(_r)\n"
            f"    return _rows, None\n"
        )
        self.source = source
        exec(compile(source, f"<compiled:{self.netlist.name}>", "exec"),
             self.namespace)

    def fingerprint(self) -> Optional[str]:
        if not self.fingerprintable:
            return None
        digest = hashlib.sha256(repr(tuple(self.records)).encode())
        return digest.hexdigest()


class CompiledNetlist:
    """A netlist lowered to a flat, table-driven program.

    Produced by :func:`compile_netlist`; exposes the same ``run`` /
    ``wire_sequence`` interface as :class:`InterpretedEngine` and keeps
    the owning :class:`~repro.hdl.netlist.Netlist` object's state in
    sync after every run, so compiled and interpreted runs can be
    interleaved freely (``reset=False`` continues where either left off).
    """

    name = "compiled"

    def __init__(self, netlist: Netlist, lowering: _Lowering):
        self.netlist = netlist
        self.channels: Tuple[Channel, ...] = tuple(lowering.channels)
        self.structural_key: Optional[str] = lowering.fingerprint()
        self._lowering: Optional[_Lowering] = lowering
        self._wires = lowering.wires
        self._index = lowering.index
        self._registers = lowering.registers
        self._ports = lowering.ports
        self._specs = lowering.activity_specs
        self._settle = None
        self._run = None
        self._run_memo = None
        self._memo_ok = not lowering.ports
        #: True when :meth:`_ensure_program` found the step program in
        #: the process-wide cache instead of generating it.
        self.program_shared = False

    def _ensure_program(self) -> None:
        """Attach the step program on first actual execution.

        Fingerprintable netlists consult the process-wide program cache
        first: a fleet of structurally identical netlists generates and
        ``exec``-compiles the program once and shares the functions
        (they are pure in their arguments, so sharing is safe).
        """
        if self._run is not None:
            return
        key = self.structural_key
        if key is not None:
            cached = _PROGRAM_CACHE.get(key)
            if cached is not None:
                _PROGRAM_CACHE.move_to_end(key)
                self.source, self._settle, self._run, self._run_memo = cached
                self.program_shared = True
                self._lowering = None
                return
        lowering = self._lowering
        lowering.generate_program()
        self.source: str = lowering.source
        self._settle = lowering.namespace["_settle"]
        self._run = lowering.namespace["_run"]
        self._run_memo = lowering.namespace["_run_memo"]
        self._lowering = None
        if key is not None:
            _PROGRAM_CACHE[key] = (
                self.source, self._settle, self._run, self._run_memo
            )
            while len(_PROGRAM_CACHE) > PROGRAM_CACHE_MAX:
                _PROGRAM_CACHE.popitem(last=False)

    # -- execution ---------------------------------------------------------

    def _baseline(self, reset: bool) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Initial settled row + per-port stimulus offsets."""
        if reset:
            values = [wire._initial for wire in self._wires]
            for register in self._registers:
                values[self._index[id(register.q)]] = register.reset_value
            return self._settle(tuple(values)), (0,) * len(self._ports)
        return (
            tuple(wire.value for wire in self._wires),
            tuple(port._cycle for port in self._ports),
        )

    def _simulate(self, cycles: int, reset: bool) -> np.ndarray:
        """Value matrix ``(cycles + 1, n_wires)``: row 0 is the baseline."""
        self._ensure_program()
        init, offsets = self._baseline(reset)
        runner = (
            self._run_memo
            if self._memo_ok and cycles >= MEMO_MIN_CYCLES
            else self._run
        )
        rows, repeat = runner(cycles, init, offsets)
        base = np.array(rows, dtype=np.uint64)
        if base.ndim == 1:  # zero-wire netlist
            base = base.reshape(len(rows), 0)
        if repeat is None:
            values = base
        else:
            # rows[len(rows)] would equal rows[repeat]: the design
            # re-entered a previous state.  Tile the periodic suffix.
            period = len(rows) - repeat
            missing = cycles + 1 - len(rows)
            tiled = base[repeat + (np.arange(missing) % period)]
            values = np.concatenate([base, tiled], axis=0)
        self._write_back(values, offsets, cycles)
        return values

    def _write_back(
        self, values: np.ndarray, offsets: Tuple[int, ...], cycles: int
    ) -> None:
        """Mirror the run's final state onto the netlist objects."""
        last = values[-1]
        prev = values[-2] if len(values) > 1 else values[-1]
        for i, wire in enumerate(self._wires):
            wire.value = int(last[i])
            wire.previous = int(prev[i])
        for register in self._registers:
            q = self._index[id(register.q)]
            register._captured = int(last[q])
            register._last_toggles = int(last[q] ^ prev[q]).bit_count()
        for port, offset in zip(self._ports, offsets):
            port._cycle = offset + cycles

    # -- activity ----------------------------------------------------------

    def _activity_matrix(self, values: np.ndarray, cycles: int) -> np.ndarray:
        current = values[1:]
        previous = values[:-1]
        hd_cache: Dict[int, np.ndarray] = {}

        def hd(wire: int) -> np.ndarray:
            column = hd_cache.get(wire)
            if column is None:
                column = _popcount(current[:, wire] ^ previous[:, wire]).astype(
                    np.float64
                )
                hd_cache[wire] = column
            return column

        matrix = np.empty((cycles, len(self._specs)), dtype=np.float64)
        for column, spec in enumerate(self._specs):
            op = spec[0]
            if op == "reg" or op == "out":
                matrix[:, column] = hd(spec[1])
            elif op == "in_out":
                matrix[:, column] = hd(spec[1]) + hd(spec[2])
            elif op == "inc":
                _, a, out, width = spec
                value = current[:, a]
                ripple = np.minimum(
                    _popcount(value ^ (value + np.uint64(1))), width
                ).astype(np.float64)
                matrix[:, column] = hd(out) + 2.0 * ripple
            elif op == "lut":
                _, inputs, out, glitch_factor = spec
                toggles = np.zeros(cycles) if not inputs else sum(
                    hd(i) for i in inputs
                )
                matrix[:, column] = hd(out) + glitch_factor * toggles
            elif op == "tt":
                matrix[:, column] = hd(spec[2]) + 0.5 * hd(spec[1])
            elif op == "rom":
                _, addr, data, precharge = spec
                matrix[:, column] = hd(addr) + hd(data) + precharge
            elif op == "io":
                matrix[:, column] = hd(spec[1])
            elif op == "clock":
                matrix[:, column] = spec[1]
            else:  # pragma: no cover - specs are produced in-module
                raise CompileError(f"unknown activity spec {op!r}")
        return matrix

    # -- public API --------------------------------------------------------

    def run(self, cycles: int, reset: bool = True) -> ActivityTrace:
        """Simulate ``cycles`` clock periods and return the activity."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        values = self._simulate(cycles, reset)
        return ActivityTrace(self.channels, self._activity_matrix(values, cycles))

    def wire_sequence(self, wire: Wire, cycles: int) -> List[int]:
        """Settled values of one wire after each clock edge (with reset)."""
        index = self._index.get(id(wire))
        if index is None:
            raise KeyError(
                f"wire {wire.name!r} is not part of netlist {self.netlist.name!r}"
            )
        values = self._simulate(max(cycles, 0), reset=True)
        return [int(v) for v in values[1:, index]]


class InterpretedEngine:
    """The original object-walking simulation loop, kept as the oracle.

    One shared cycle generator backs both activity recording and wire
    sampling, so the two code paths cannot drift apart.
    """

    name = "interpreted"
    structural_key: Optional[str] = None

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._input_ports = [
            c for c in netlist.components if isinstance(c, InputPort)
        ]

    def _discover_channels(self) -> List[Channel]:
        """One activity channel per component that reports activity."""
        channels: List[Channel] = []
        for component in self.netlist.components:
            for event in component.activity():
                channels.append(Channel(event.component, event.kind))
        return channels

    def _advance(self, cycles: int):
        """Drive the netlist one settled clock period per iteration."""
        comb_order = self.netlist.combinational_order()
        sequential = self.netlist.sequential_components
        wires = list(self.netlist.wires.values())
        for cycle in range(cycles):
            for wire in wires:
                wire.latch_previous()
            for register in sequential:
                register.capture()
            for register in sequential:
                register.commit()
            for port in self._input_ports:
                port.advance_cycle()
            for component in comb_order:
                component.evaluate()
            yield cycle

    def run(self, cycles: int, reset: bool = True) -> ActivityTrace:
        """Simulate ``cycles`` clock periods and return the activity."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        if reset:
            self.netlist.reset()
        channels = self._discover_channels()
        index_of: Dict[Channel, int] = {c: i for i, c in enumerate(channels)}
        matrix = np.zeros((cycles, len(channels)))
        components = self.netlist.components
        for cycle in self._advance(cycles):
            for component in components:
                for event in component.activity():
                    channel = Channel(event.component, event.kind)
                    matrix[cycle, index_of[channel]] += event.amount
        return ActivityTrace(channels, matrix)

    def wire_sequence(self, wire: Wire, cycles: int) -> List[int]:
        """Settled values of one wire after each clock edge (with reset)."""
        self.netlist.reset()
        return [wire.value for _ in self._advance(cycles)]


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Lower a validated netlist into a :class:`CompiledNetlist`.

    Raises :class:`CompileError` when the netlist contains constructs
    the lowering pass cannot prove equivalent (custom component types,
    foreign wires, buses wider than :data:`MAX_WIRE_WIDTH`).
    """
    netlist.validate()
    lowering = _Lowering(netlist)
    lowering.lower()
    return CompiledNetlist(netlist, lowering)


__all__ = [
    "CompileError",
    "CompiledNetlist",
    "InterpretedEngine",
    "compile_netlist",
    "clear_program_cache",
    "program_cache_size",
    "MAX_TABLE_BITS",
    "MAX_WIRE_WIDTH",
    "MEMO_MIN_CYCLES",
    "PROGRAM_CACHE_MAX",
]
